#!/usr/bin/env bash
# CI entry point: full test suite + a short parallel-generation smoke.
#
# 1. Runs the tier-1 suite (unit/property/integration tests).
# 2. Smokes bench_table4_trawling at tiny scale with 2 worker processes
#    and only the GPT model rows, exercising the multiprocess D&C-GEN
#    backend end-to-end (~30 s warm; the first run trains the tiny
#    checkpoints into .cache/lab and takes a few minutes).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

python -m pytest -x -q

REPRO_BENCH_SCALE=tiny \
REPRO_BENCH_WORKERS=2 \
REPRO_BENCH_TRAWLING_MODELS="PagPassGPT,PagPassGPT-D&C" \
python -m pytest benchmarks/bench_table4_trawling.py --benchmark-only -x -q
