#!/usr/bin/env bash
# CI entry point: full test suite + perf, parallel-generation and
# crash-resume smokes.
#
# 1. Runs the tier-1 suite (unit/property/integration tests).
# 1b. Perf smoke: generation throughput bench on a tiny model, emitting
#    the BENCH_throughput.json artifact.  Gates only on deterministic
#    counters (model calls / primed positions vs the planned budget —
#    catching de-dedup regressions), never on wall-clock.
# 2. Smokes bench_table4_trawling at tiny scale with 2 worker processes
#    and only the GPT model rows, exercising the multiprocess D&C-GEN
#    backend end-to-end (~30 s warm; the first run trains the tiny
#    checkpoints into .cache/lab and takes a few minutes).
# 3. Crash-resume smoke: trains a tiny checkpoint, runs a 2-worker
#    D&C-GEN campaign that is killed after 3 journaled batches
#    (REPRO_FAULT), resumes it, and diffs the result against a clean
#    uninterrupted run — the streams must be byte-identical.
# 4. Telemetry smoke: a telemetry-enabled 2-worker campaign whose merged
#    summary must pass `repro telemetry summarize --check` (fleet guess
#    count == planned total, zero unaccounted task failures, prompt-cache
#    hits == planned dedup savings).
# 5. Ordered smoke (ISSUE 6): a best-first campaign on the same tiny
#    checkpoint is crashed at a journaled frontier snapshot, resumed,
#    diffed byte-for-byte against the uninterrupted stream, and its
#    telemetry must pass `summarize --check`.
# 6. Compiled-backend smoke (ISSUE 8): reruns the 2-worker campaign with
#    `--backend compiled` and demands the byte-identical stream, then
#    gates the compiled tiny bench.  Soft-skipped (with a visible
#    notice) when no C compiler is on PATH.
# 7. Observability smoke (ISSUE 10): a traced+profiled 2-worker campaign
#    must stay byte-identical, pass `summarize --check`, and export to a
#    single connected chrome-trace tree (`export --check`); the overhead
#    bench records traced-vs-untraced cost into
#    BENCH_telemetry_overhead.json (stream-identity gated, wall-clock
#    recorded only); a live `repro serve` is scraped for Prometheus
#    exposition and rendered once by `repro top` before its SIGTERM
#    drain.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

python -m pytest -x -q

# Perf smoke (deterministic): fails if D&C-GEN's physical model-call or
# primed-position counts exceed the planned execute budget.
python benchmarks/bench_throughput.py --scale tiny --check
test -s BENCH_throughput.json

REPRO_BENCH_SCALE=tiny \
REPRO_BENCH_WORKERS=2 \
REPRO_BENCH_TRAWLING_MODELS="PagPassGPT,PagPassGPT-D&C" \
python -m pytest benchmarks/bench_table4_trawling.py --benchmark-only -x -q

# ----------------------------------------------------------------------
# Crash-resume smoke (ISSUE 2): interrupted campaign == clean campaign.
# ----------------------------------------------------------------------
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

python -m repro.cli synth --site rockyou --entries 2000 --out "$SMOKE_DIR/leak.txt"
python -m repro.cli clean --input "$SMOKE_DIR/leak.txt" --out "$SMOKE_DIR/cleaned.txt"
python -m repro.cli train --input "$SMOKE_DIR/cleaned.txt" --out "$SMOKE_DIR/model.npz" \
    --dim 32 --layers 1 --heads 2 --epochs 1 --batch-size 128

GEN_ARGS=(generate --checkpoint "$SMOKE_DIR/model.npz" -n 1500
          --dcgen --threshold 32 --workers 2 --seed 5)

python -m repro.cli "${GEN_ARGS[@]}" --out "$SMOKE_DIR/clean_run.txt"

# Interrupted run: crash after 3 journaled leaf batches...
if REPRO_FAULT=crash:leaf_batch:3 \
   python -m repro.cli "${GEN_ARGS[@]}" --out "$SMOKE_DIR/resumed.txt" \
       --journal "$SMOKE_DIR/run.jsonl"; then
    echo "crash-resume smoke: injected crash did not fire" >&2
    exit 1
fi
test -s "$SMOKE_DIR/run.jsonl"  # journaled progress survived the crash

# Integrity gate (ISSUE 7): the crash left artifacts behind — the
# verifier must pass them (repairing a torn journal tail if the kill
# landed mid-write) before the resume leg is allowed to trust them.
python -m repro.cli verify "$SMOKE_DIR/run.jsonl" "$SMOKE_DIR/model.npz" --repair
echo "verify smoke: crash artifacts pass integrity verification"

# ...then resume and demand the byte-identical stream.
python -m repro.cli "${GEN_ARGS[@]}" --out "$SMOKE_DIR/resumed.txt" \
    --journal "$SMOKE_DIR/run.jsonl" --resume
diff "$SMOKE_DIR/clean_run.txt" "$SMOKE_DIR/resumed.txt"
echo "crash-resume smoke: interrupted+resumed run is byte-identical"

# ----------------------------------------------------------------------
# Telemetry smoke (ISSUE 5): traced campaign passes its invariant gate.
# ----------------------------------------------------------------------
python -m repro.cli "${GEN_ARGS[@]}" --out "$SMOKE_DIR/traced.txt" \
    --telemetry "$SMOKE_DIR/tele"
diff "$SMOKE_DIR/clean_run.txt" "$SMOKE_DIR/traced.txt"  # telemetry never alters the stream
test -s "$SMOKE_DIR/tele/telemetry.jsonl"
test -s "$SMOKE_DIR/tele/campaign-summary.json"
ls "$SMOKE_DIR"/tele/telemetry-worker-*.jsonl > /dev/null  # per-worker traces exist
python -m repro.cli telemetry summarize "$SMOKE_DIR/tele" --check
echo "telemetry smoke: merged campaign summary passes deterministic invariants"

# ----------------------------------------------------------------------
# Ordered smoke (ISSUE 6): best-first campaign, crash at a frontier
# snapshot, resume, byte-identical stream + telemetry invariants.
# ----------------------------------------------------------------------
# Snapshot cadence matters here: a frontier snapshot journals the whole
# heap (fsync'd), so every-round snapshots would dominate the wall-clock.
ORD_ARGS=(generate --checkpoint "$SMOKE_DIR/model.npz" -n 120
          --strategy ordered --beam-width 64 --max-frontier 5000
          --snapshot-every 20)

python -m repro.cli "${ORD_ARGS[@]}" --out "$SMOKE_DIR/ordered_clean.txt" \
    --telemetry "$SMOKE_DIR/ordered-tele"
python -m repro.cli telemetry summarize "$SMOKE_DIR/ordered-tele" --check

# Interrupted run: crash before the 4th frontier snapshot...
if REPRO_FAULT=crash:frontier:3 \
   python -m repro.cli "${ORD_ARGS[@]}" --out "$SMOKE_DIR/ordered_resumed.txt" \
       --journal "$SMOKE_DIR/ordered.jsonl"; then
    echo "ordered smoke: injected crash did not fire" >&2
    exit 1
fi
test -s "$SMOKE_DIR/ordered.jsonl"  # journaled snapshots survived the crash

# ...then resume and demand the byte-identical ordered stream.
python -m repro.cli "${ORD_ARGS[@]}" --out "$SMOKE_DIR/ordered_resumed.txt" \
    --journal "$SMOKE_DIR/ordered.jsonl" --resume
diff "$SMOKE_DIR/ordered_clean.txt" "$SMOKE_DIR/ordered_resumed.txt"
echo "ordered smoke: crashed+resumed best-first stream is byte-identical"

# ----------------------------------------------------------------------
# Compiled-backend smoke (ISSUE 8): the fused C decode kernels must emit
# the byte-identical stream, and the compiled bench gates must hold
# (backend really active, stream == numpy reference).  Soft-skip when
# the container has no C compiler — the numpy fallback path is already
# covered by the suite above.
# ----------------------------------------------------------------------
if command -v "${CC:-cc}" > /dev/null; then
    python -m repro.cli "${GEN_ARGS[@]}" --backend compiled \
        --out "$SMOKE_DIR/compiled_run.txt" --telemetry "$SMOKE_DIR/compiled-tele"
    diff "$SMOKE_DIR/clean_run.txt" "$SMOKE_DIR/compiled_run.txt"
    python -m repro.cli telemetry summarize "$SMOKE_DIR/compiled-tele" --check
    python benchmarks/bench_throughput.py --scale tiny --check --backend compiled
    echo "compiled smoke: C backend stream is byte-identical and bench gates pass"
else
    echo "compiled smoke: SKIPPED — no C compiler ('${CC:-cc}') on PATH" >&2
fi

# ----------------------------------------------------------------------
# Chaos smoke (ISSUE 7): fixed-seed randomized fault schedule.  Each case
# runs golden -> fault -> (repair if corrupted) -> resume and demands a
# byte-identical stream plus `telemetry summarize --check`.  Fixed seed
# keeps the schedule (and runtime, ~30 s) reproducible across CI runs.
# ----------------------------------------------------------------------
python -m repro.cli chaos --workdir "$SMOKE_DIR/chaos" \
    --checkpoint "$SMOKE_DIR/model.npz" \
    --seed 0 --per-strategy 1 --strategies dcgen,sampled --workers 1 -n 400
test -s "$SMOKE_DIR/chaos/chaos-report.json"
echo "chaos smoke: seeded fault schedule holds the byte-identical-resume invariant"

# ----------------------------------------------------------------------
# Server soak smoke (ISSUE 9): guessing as a service under chaos.  A
# fixed-seed soak drives a live campaign server with concurrent client
# threads, one armed worker-crash fault, and a SIGTERM drain mid-run;
# a recovered server over the same state dir must finish every accepted
# request with a byte-identical stream (zero lost, zero duplicated) and
# a clean per-job `telemetry summarize --check`, or a typed failure.
# ----------------------------------------------------------------------
python -m repro.cli chaos --server --workdir "$SMOKE_DIR/soak" \
    --checkpoint "$SMOKE_DIR/model.npz" \
    --seed 0 --requests 4 --clients 2 -n 200
test -s "$SMOKE_DIR/soak/soak-report.json"
echo "server soak smoke: accepted requests survive crash+drain byte-identically"

# And the operator path end-to-end: a real `repro serve` process must
# come up, stay alive, and exit 0 on a SIGTERM graceful drain.
python -m repro.cli serve --checkpoint "$SMOKE_DIR/model.npz" \
    --state-dir "$SMOKE_DIR/server-state" --port 0 --fleet 1 &
SERVER_PID=$!
sleep 3
kill -0 "$SERVER_PID" || { echo "serve smoke: server died at startup" >&2; exit 1; }
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
test -s "$SMOKE_DIR/server-state/requests.journal.jsonl"
echo "serve smoke: SIGTERM drain exits 0"

# ----------------------------------------------------------------------
# Observability smoke (ISSUE 10): tracing + profiling + exposition.
# ----------------------------------------------------------------------
# A traced AND profiled 2-worker campaign still emits the byte-identical
# stream, its merged summary passes --check, the folded profile is
# non-empty, and the exported chrome-trace is one connected tree
# spanning the parent and worker pids.
python -m repro.cli "${GEN_ARGS[@]}" --out "$SMOKE_DIR/profiled.txt" \
    --telemetry "$SMOKE_DIR/obs-tele" --profile "$SMOKE_DIR/profile.folded"
diff "$SMOKE_DIR/clean_run.txt" "$SMOKE_DIR/profiled.txt"
test -s "$SMOKE_DIR/profile.folded"
python -m repro.cli telemetry summarize "$SMOKE_DIR/obs-tele" --check
python -m repro.cli telemetry export "$SMOKE_DIR/obs-tele" \
    --format chrome-trace --out "$SMOKE_DIR/trace.json" --check
test -s "$SMOKE_DIR/trace.json"
echo "observability smoke: traced+profiled campaign byte-identical, trace tree connected"

# Overhead bench: records traced / traced+profiled cost next to the
# untraced baseline and hard-gates on stream identity.  Wall-clock
# overhead is recorded, not gated, at tiny scale (too noisy for CI);
# the committed standard-scale artifact carries the <=5% result.
python benchmarks/bench_telemetry_overhead.py --scale tiny --repeats 2 \
    --out "$SMOKE_DIR/BENCH_telemetry_overhead.json"
test -s "$SMOKE_DIR/BENCH_telemetry_overhead.json"
echo "observability smoke: telemetry overhead recorded, streams identical"

# Prometheus exposition + repro top against a live server.  The
# ephemeral port is parsed from the serve banner; the scrape uses
# stdlib urllib (curl is not guaranteed in the container).
python -m repro.cli serve --checkpoint "$SMOKE_DIR/model.npz" \
    --state-dir "$SMOKE_DIR/obs-server-state" --port 0 --fleet 1 \
    2> "$SMOKE_DIR/serve.log" &
SERVER_PID=$!
for _ in $(seq 1 50); do
    grep -q "serving on" "$SMOKE_DIR/serve.log" && break
    kill -0 "$SERVER_PID" || { cat "$SMOKE_DIR/serve.log" >&2; exit 1; }
    sleep 0.2
done
PORT=$(sed -n 's|.*serving on http://[^:]*:\([0-9]*\).*|\1|p' "$SMOKE_DIR/serve.log" | head -1)
test -n "$PORT" || { echo "observability smoke: no port in serve banner" >&2; exit 1; }
python - "$PORT" <<'PY'
import sys
from urllib.request import urlopen

port = sys.argv[1]
with urlopen(f"http://127.0.0.1:{port}/metrics?format=prometheus", timeout=10) as r:
    assert r.headers["Content-Type"].startswith("text/plain; version=0.0.4"), r.headers
    text = r.read().decode()
assert "# TYPE" in text and "repro_" in text, text[:400]
with urlopen(f"http://127.0.0.1:{port}/metrics", timeout=10) as r:
    assert r.headers["Content-Type"].startswith("application/json")
print("prometheus exposition scrape ok")
PY
python -m repro.cli top --url "http://127.0.0.1:$PORT" --once | grep -q "state: serving"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
echo "observability smoke: prometheus scrape + repro top ok, drain clean"
