#!/usr/bin/env bash
# Final artefact assembly: fill EXPERIMENTS.md from bench results and
# capture the canonical test/bench outputs at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

python benchmarks/collect_results.py --scale "${REPRO_BENCH_SCALE:-small}"
python -m pytest tests/ 2>&1 | tee test_output.txt
tail -5 test_output.txt
