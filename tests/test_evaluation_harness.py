"""ModelLab tests: data memoisation, model caching, scales."""

import numpy as np
import pytest

from repro.evaluation import SCALES, LabScale, ModelLab


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"tiny", "small", "full"}
        for scale in SCALES.values():
            assert set(scale.site_entries) == {"rockyou", "linkedin", "phpbb", "myspace", "yahoo"}
            assert scale.guess_budgets == tuple(sorted(scale.guess_budgets))


@pytest.fixture(scope="module")
def lab(tmp_path_factory):
    return ModelLab(scale="tiny", cache_dir=tmp_path_factory.mktemp("lab-cache"), seed=0)


class TestSiteData:
    def test_memoised(self, lab):
        assert lab.site_data("rockyou") is lab.site_data("rockyou")

    def test_splits_disjoint(self, lab):
        data = lab.site_data("phpbb")
        assert not set(data.splits.train) & set(data.splits.test)
        assert data.test_set == frozenset(data.splits.test)

    def test_eval_corpus_covers_whole_site(self, lab):
        data = lab.site_data("myspace")
        corpus = lab.eval_corpus("myspace")
        assert len(corpus) == len(data.splits.train) + len(data.splits.val) + len(data.splits.test)


class TestModelCaching:
    def test_gpt_checkpoint_roundtrip(self, lab, tmp_path_factory):
        model = lab.pagpassgpt("rockyou")
        assert model.is_fitted
        # A second lab with the same cache dir must load, not retrain.
        lab2 = ModelLab(scale="tiny", cache_dir=lab.cache_dir, seed=0)
        loaded = lab2.pagpassgpt("rockyou")
        assert loaded.is_fitted
        assert loaded.pattern_probs == model.pattern_probs
        a = dict(model.model.named_parameters())
        b = dict(loaded.model.named_parameters())
        for name in a:
            assert np.allclose(a[name].data, b[name].data)

    def test_in_process_memoisation(self, lab):
        assert lab.pagpassgpt("rockyou") is lab.pagpassgpt("rockyou")
        assert lab.baseline("pcfg") is lab.baseline("pcfg")

    def test_dc_wrapper_shares_base(self, lab):
        dc = lab.pagpassgpt_dc("rockyou")
        assert dc.base is lab.pagpassgpt("rockyou")
        assert dc.dc_config.threshold == lab.scale.dc_threshold

    def test_unknown_baseline_rejected(self, lab):
        with pytest.raises(KeyError):
            lab.baseline("hashcat")

    def test_different_scale_different_cache_key(self, lab):
        other = ModelLab(
            scale=LabScale(name="other", site_entries={"rockyou": 999,
                "linkedin": 1, "phpbb": 1, "myspace": 1, "yahoo": 1}),
            cache_dir=lab.cache_dir,
        )
        assert other._cache_path("pagpassgpt", "rockyou") != lab._cache_path("pagpassgpt", "rockyou")

    def test_no_cache_dir_means_no_path(self):
        lab = ModelLab(scale="tiny")
        assert lab._cache_path("pagpassgpt", "rockyou") is None
