"""Chrome-trace export and the single-connected-tree check.

Two layers: :func:`check_trace_tree` over hand-built span lists (every
failure mode pinned: duplicate ids, zero/multiple roots, cycles), and
the full exporter over *real* campaign telemetry directories — a traced
1-worker and 2-worker D&C-GEN run must export to one connected tree
whose flow arrows bridge the parent and worker pids.
"""

from __future__ import annotations

import json

from repro import telemetry
from repro.telemetry.context import make_span_id
from repro.telemetry.export import build_chrome_trace, check_trace_tree, load_spans

from tests.test_telemetry_campaign import SEED, TOTAL, _generator


def _span(span_id, parent_id=None, name="s", stream="telemetry.jsonl"):
    return {"span_id": span_id, "parent_id": parent_id, "name": name,
            "stream": stream, "pid": span_id >> 40, "ts": 1.0, "duration_s": 0.5}


# ----------------------------------------------------------------------
# check_trace_tree on synthetic shapes
# ----------------------------------------------------------------------

class TestCheckTraceTree:
    def test_single_root_chain_passes(self):
        a, b, c = (make_span_id(10, i) for i in range(3))
        assert check_trace_tree([_span(a), _span(b, a), _span(c, b)]) == []

    def test_cross_pid_tree_passes(self):
        root = make_span_id(10, 0)
        w1, w2 = make_span_id(11, 0), make_span_id(12, 0)
        assert check_trace_tree([_span(root), _span(w1, root), _span(w2, root)]) == []

    def test_external_parent_counts_as_root(self):
        """A job directory whose root hangs under a server request span
        (absent from the export) is still one connected tree."""
        upstream = make_span_id(1, 7)  # never exported
        a = make_span_id(10, 0)
        assert check_trace_tree([_span(a, upstream), _span(make_span_id(10, 1), a)]) == []

    def test_empty_fails(self):
        assert check_trace_tree([]) == ["no spans found"]

    def test_duplicate_ids_fail(self):
        dup = make_span_id(10, 0)
        failures = check_trace_tree([_span(dup), _span(dup, stream="telemetry-worker-0.jsonl")])
        assert any("duplicate span id" in f for f in failures)

    def test_two_roots_fail(self):
        failures = check_trace_tree([_span(make_span_id(10, 0)), _span(make_span_id(11, 0))])
        assert any("expected exactly 1 root" in f for f in failures)

    def test_cycle_fails(self):
        a, b = make_span_id(10, 0), make_span_id(10, 1)
        failures = check_trace_tree([_span(a, b), _span(b, a)])
        assert any("cycle" in f for f in failures)


# ----------------------------------------------------------------------
# Real campaigns export to one connected tree
# ----------------------------------------------------------------------

def _run_campaign(directory, workers):
    gen = _generator(workers=workers)
    with telemetry.session(directory, run_id="export"):
        gen.generate(TOTAL, seed=SEED)


def test_serial_campaign_exports_connected_tree(tmp_path):
    _run_campaign(tmp_path, workers=1)
    assert check_trace_tree(load_spans(tmp_path)) == []


def test_two_worker_campaign_exports_connected_tree(tmp_path):
    _run_campaign(tmp_path, workers=2)
    spans = load_spans(tmp_path)
    assert check_trace_tree(spans) == []
    assert len({s["pid"] for s in spans}) >= 2, "worker spans missing"


def test_chrome_trace_shape_and_flows(tmp_path):
    _run_campaign(tmp_path, workers=2)
    trace = build_chrome_trace(tmp_path)
    events = trace["traceEvents"]

    slices = [e for e in events if e["ph"] == "X"]
    assert slices and all(e["dur"] >= 0 and e["ts"] >= 0 for e in slices)
    pids = {e["pid"] for e in slices}
    assert len(pids) >= 2

    # Cross-pid edges appear as bound s/f flow pairs.
    starts = {e["id"] for e in events if e["ph"] == "s"}
    finishes = {e["id"] for e in events if e["ph"] == "f"}
    assert starts and starts == finishes

    # Every track is named.
    named = {e["pid"] for e in events if e["ph"] == "M"
             and e["name"] == "process_name"}
    assert pids <= named
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "parent" in names
    assert any(n.startswith("worker") for n in names)


def test_export_writes_loadable_json(tmp_path):
    _run_campaign(tmp_path / "tele", workers=1)
    out = tmp_path / "trace.json"
    path, trace, failures = telemetry.export_chrome_trace(
        tmp_path / "tele", out, check=True
    )
    assert path == out and failures == []
    loaded = json.loads(out.read_text())
    assert loaded["traceEvents"]
    assert loaded["otherData"]["spans"] == trace["otherData"]["spans"] > 0


def test_export_check_catches_orphaned_worker_stream(tmp_path):
    """A worker stream whose parent stream is lost must fail --check."""
    _run_campaign(tmp_path, workers=2)
    (tmp_path / "telemetry.jsonl").unlink()  # lose the parent stream
    failures = check_trace_tree(load_spans(tmp_path))
    assert failures, "a lost parent stream should break tree connectivity"
