"""Sampler tests: temperature, truncation, constrained/masked sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.generation import (
    SamplerConfig,
    choose_constrained,
    constrained_distribution,
    logits_to_probs,
    sample,
    sample_constrained,
)
from repro.generation.sampler import sample_masked


class TestSamplerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplerConfig(temperature=0)
        with pytest.raises(ValueError):
            SamplerConfig(top_k=-1)
        with pytest.raises(ValueError):
            SamplerConfig(top_p=0.0)
        with pytest.raises(ValueError):
            SamplerConfig(top_p=1.5)


class TestLogitsToProbs:
    def test_rows_are_distributions(self, rng):
        logits = rng.normal(size=(4, 9)).astype(np.float32)
        probs = logits_to_probs(logits)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-6)
        assert (probs >= 0).all()

    def test_low_temperature_sharpens(self, rng):
        logits = rng.normal(size=(1, 9)).astype(np.float32)
        hot = logits_to_probs(logits, SamplerConfig(temperature=2.0))
        cold = logits_to_probs(logits, SamplerConfig(temperature=0.2))
        assert cold.max() > hot.max()
        assert hot.argmax() == cold.argmax()

    def test_top_k_zeroes_tail(self, rng):
        logits = rng.normal(size=(3, 10)).astype(np.float32)
        probs = logits_to_probs(logits, SamplerConfig(top_k=3))
        assert ((probs > 0).sum(axis=-1) <= 3).all()
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-6)

    def test_top_p_keeps_minimum_one(self):
        logits = np.array([[10.0, 0.0, -10.0]], dtype=np.float32)
        probs = logits_to_probs(logits, SamplerConfig(top_p=0.01))
        assert (probs > 0).sum() == 1
        assert probs[0, 0] == pytest.approx(1.0)

    def test_top_p_mass_threshold(self):
        logits = np.log(np.array([[0.5, 0.3, 0.15, 0.05]], dtype=np.float32))
        probs = logits_to_probs(logits, SamplerConfig(top_p=0.8))
        # 0.5 + 0.3 reaches 0.8 -> keep exactly the first two.
        assert (probs > 0).sum() == 2


class TestSampling:
    def test_deterministic_given_rng_seed(self, rng):
        logits = np.random.default_rng(1).normal(size=(5, 8)).astype(np.float32)
        a = sample(logits, np.random.default_rng(42))
        b = sample(logits, np.random.default_rng(42))
        assert (a == b).all()

    def test_respects_distribution(self):
        # One token has ~all the mass.
        logits = np.zeros((200, 4), dtype=np.float32)
        logits[:, 2] = 20.0
        out = sample(logits, np.random.default_rng(0))
        assert (out == 2).all()

    def test_empirical_frequencies(self):
        logits = np.log(np.tile(np.array([0.7, 0.2, 0.1], dtype=np.float32), (8000, 1)))
        out = sample(logits, np.random.default_rng(0))
        freq = np.bincount(out, minlength=3) / len(out)
        assert freq[0] == pytest.approx(0.7, abs=0.03)
        assert freq[2] == pytest.approx(0.1, abs=0.02)


class TestConstrained:
    def test_only_allowed_ids_returned(self, rng):
        logits = rng.normal(size=(100, 20)).astype(np.float32)
        allowed = np.array([3, 7, 11])
        out = sample_constrained(logits, allowed, np.random.default_rng(0))
        assert set(out.tolist()) <= {3, 7, 11}

    def test_distribution_renormalised(self, rng):
        logits = rng.normal(size=(4, 10)).astype(np.float32)
        allowed = np.array([0, 5])
        dist = constrained_distribution(logits, allowed)
        assert dist.shape == (4, 2)
        assert np.allclose(dist.sum(axis=-1), 1.0, atol=1e-6)
        # Relative odds preserved: p0/p5 == softmax ratio of raw logits.
        raw = np.exp(logits[:, 0] - logits[:, 5])
        assert np.allclose(dist[:, 0] / dist[:, 1], raw, rtol=1e-4)


class TestChooseConstrained:
    def test_matches_sample_constrained_for_same_rng_stream(self, rng):
        """choose_constrained is sample_constrained with the draws made
        explicit — feeding it the draws an rng would have produced must
        give the same tokens."""
        logits = rng.normal(size=(16, 20)).astype(np.float32)
        allowed = np.array([1, 4, 9, 13])
        via_rng = sample_constrained(logits, allowed, np.random.default_rng(3))
        draws = np.random.default_rng(3).random((16, 1))[:, 0]
        via_draws = choose_constrained(logits, allowed, draws)
        assert (via_rng == via_draws).all()

    def test_only_allowed_ids_returned(self, rng):
        logits = rng.normal(size=(50, 20)).astype(np.float32)
        allowed = np.array([3, 7, 11])
        out = choose_constrained(logits, allowed, np.random.default_rng(1).random(50))
        assert set(out.tolist()) <= {3, 7, 11}

    def test_row_independence(self, rng):
        """A row's choice depends only on its own logits and draw — the
        property that makes batch packing irrelevant to D&C-GEN output."""
        logits = rng.normal(size=(8, 12)).astype(np.float32)
        allowed = np.arange(12)
        draws = np.random.default_rng(2).random(8)
        whole = choose_constrained(logits, allowed, draws)
        parts = np.concatenate(
            [
                choose_constrained(logits[i : i + 3], allowed, draws[i : i + 3])
                for i in range(0, 8, 3)
            ]
        )
        assert (whole == parts).all()


class TestMasked:
    def test_per_row_masks(self, rng):
        logits = rng.normal(size=(3, 6)).astype(np.float32)
        mask = np.zeros((3, 6), dtype=bool)
        mask[0, [0, 1]] = True
        mask[1, [4]] = True
        mask[2, [2, 3, 5]] = True
        out = sample_masked(logits, mask, np.random.default_rng(0))
        assert out[0] in (0, 1)
        assert out[1] == 4
        assert out[2] in (2, 3, 5)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            sample_masked(rng.normal(size=(2, 4)), np.ones((2, 5), dtype=bool), rng)

    def test_empty_row_raises(self, rng):
        logits = rng.normal(size=(2, 4)).astype(np.float32)
        mask = np.ones((2, 4), dtype=bool)
        mask[1] = False
        with pytest.raises(ValueError):
            sample_masked(logits, mask, rng)


@settings(max_examples=60, deadline=None)
@given(arrays(np.float32, (3, 8), elements=st.floats(-20, 20, width=32)))
def test_probs_always_valid(logits):
    for cfg in (SamplerConfig(), SamplerConfig(top_k=4), SamplerConfig(top_p=0.7), SamplerConfig(temperature=0.3)):
        probs = logits_to_probs(logits, cfg)
        assert np.isfinite(probs).all()
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-4)


class TestCumulativeRoundingEdgeCase:
    """Float error can leave the final cumulative sum below a draw.

    With 12 equal float32 probabilities the cumulative sum tops out at
    0.9999999 < 1.0; a uniform draw above it made every ``draws <
    cumulative`` comparison False, and ``argmax`` silently returned
    index 0 — the *most* probable token instead of the last one.  The
    samplers clamp the final cumulative entry to 1.0 so such draws map
    to the last token, as exact arithmetic would.
    """

    K = 12  # uniform float32 distribution whose cumsum peaks below 1.0

    def _adversarial_draw(self):
        logits = np.zeros((1, self.K), dtype=np.float32)
        cumulative = np.cumsum(logits_to_probs(logits), axis=-1)
        top = float(cumulative[0, -1])
        assert top < 1.0, "precondition: rounding must leave cumsum below 1"
        return (top + 1.0) / 2.0  # strictly between cumsum[-1] and 1.0

    def test_choose_constrained_returns_last_allowed(self):
        draw = self._adversarial_draw()
        logits = np.zeros((1, self.K + 3), dtype=np.float32)
        allowed = np.arange(3, 3 + self.K)
        chosen = choose_constrained(logits, allowed, np.array([[draw]]))
        assert chosen[0] == allowed[-1]

    def test_sample_rows_returns_last_token(self):
        draw = self._adversarial_draw()

        class FixedRng:
            def random(self, shape):
                return np.full(shape, draw)

        logits = np.zeros((1, self.K), dtype=np.float32)
        mask = np.ones((1, self.K), dtype=bool)
        chosen = sample_masked(logits, mask, FixedRng())
        assert chosen[0] == self.K - 1

    def test_ordinary_draws_unaffected(self, rng):
        logits = rng.normal(size=(64, self.K + 5)).astype(np.float32)
        allowed = np.arange(2, 2 + self.K)
        draws = rng.random((64, 1))
        chosen = choose_constrained(logits, allowed, draws)
        assert np.isin(chosen, allowed).all()
