"""Dataloader and trainer tests, including crash-safe resume."""

import numpy as np
import pytest

from repro.nn import CheckpointError, GPT2Config, GPT2Model
from repro.runtime import FAULT_ENV, InjectedFault, RunJournal, corrupt_file
from repro.training import (
    BatchLoader,
    TrainConfig,
    Trainer,
    load_training_state,
    save_training_state,
)


class TestBatchLoader:
    def test_covers_all_rows(self):
        ids = np.arange(25).reshape(25, 1)
        loader = BatchLoader(ids, batch_size=4, shuffle=True, seed=0)
        seen = np.concatenate(list(loader)).ravel()
        assert sorted(seen) == list(range(25))

    def test_batch_count(self):
        loader = BatchLoader(np.zeros((25, 3)), batch_size=4)
        assert len(loader) == 7

    def test_no_shuffle_preserves_order(self):
        ids = np.arange(10).reshape(10, 1)
        loader = BatchLoader(ids, batch_size=3, shuffle=False)
        first = next(iter(loader))
        assert list(first.ravel()) == [0, 1, 2]

    def test_epochs_reshuffle(self):
        ids = np.arange(50).reshape(50, 1)
        loader = BatchLoader(ids, batch_size=50, shuffle=True, seed=0)
        e1 = next(iter(loader)).ravel().tolist()
        e2 = next(iter(loader)).ravel().tolist()
        assert e1 != e2

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchLoader(np.zeros(5), batch_size=2)
        with pytest.raises(ValueError):
            BatchLoader(np.zeros((5, 2)), batch_size=0)


@pytest.fixture(scope="module")
def toy_ids():
    """Sequences with strong structure the model can learn quickly."""
    rng = np.random.default_rng(0)
    base = np.tile(np.arange(8), (64, 1))  # always 0 1 2 3 4 5 6 7
    return base + rng.integers(0, 2, size=(64, 1))  # two variants


class TestTrainer:
    def test_loss_decreases(self, toy_ids):
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        trainer = Trainer(model, pad_id=9, config=TrainConfig(epochs=8, batch_size=16, lr=3e-3))
        history = trainer.fit(toy_ids)
        assert history.train_loss[-1] < history.train_loss[0] * 0.75

    def test_validation_tracked(self, toy_ids):
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        trainer = Trainer(model, pad_id=9, config=TrainConfig(epochs=3, batch_size=16, lr=3e-3))
        history = trainer.fit(toy_ids[:48], val_ids=toy_ids[48:])
        assert len(history.val_loss) == 3
        assert history.best_epoch >= 0
        assert history.best_val_loss == min(history.val_loss)

    def test_early_stopping(self, toy_ids):
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        # lr=0 -> no improvement -> stops after patience epochs.
        trainer = Trainer(
            model,
            pad_id=9,
            config=TrainConfig(epochs=10, batch_size=16, lr=0.0, early_stop_patience=2),
        )
        history = trainer.fit(toy_ids[:48], val_ids=toy_ids[48:])
        assert history.stopped_early
        assert len(history.val_loss) < 10

    def test_evaluate_requires_data(self, toy_ids):
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        trainer = Trainer(model, pad_id=9)
        with pytest.raises(ValueError):
            trainer.evaluate(np.zeros((0, 8), dtype=np.int64))

    def test_model_left_in_eval_mode(self, toy_ids):
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.1)
        )
        trainer = Trainer(model, pad_id=9, config=TrainConfig(epochs=1, batch_size=16))
        trainer.fit(toy_ids)
        assert not model.training

    def test_log_fn_called(self, toy_ids):
        messages = []
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        trainer = Trainer(
            model, pad_id=9, config=TrainConfig(epochs=2, batch_size=32), log_fn=messages.append
        )
        trainer.fit(toy_ids)
        assert len(messages) == 2


def _make_trainer(config, seed=0, dropout=0.1, log_fn=None):
    model = GPT2Model(
        GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=dropout),
        seed=seed,
    )
    return model, Trainer(model, pad_id=9, config=config, log_fn=log_fn)


def _params(model):
    return {name: p.data.copy() for name, p in model.named_parameters()}


class TestEarlyStopBestRestore:
    def test_best_weights_restored_on_early_stop(self, toy_ids):
        """A scripted val curve: improves twice, then degrades forever."""
        config = TrainConfig(epochs=10, batch_size=16, lr=3e-3, early_stop_patience=2)
        model, trainer = _make_trainer(config, dropout=0.0)

        snapshots = []
        script = iter([3.0, 2.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0])

        def fake_evaluate(ids, batch_size=None):
            snapshots.append(_params(model))
            return next(script)

        trainer.evaluate = fake_evaluate
        messages = []
        trainer.log_fn = messages.append
        history = trainer.fit(toy_ids[:48], val_ids=toy_ids[48:])

        assert history.stopped_early
        assert history.restored_best
        assert history.best_epoch == 1
        # Live weights equal the epoch-1 snapshot, not the last epoch's.
        for name, value in _params(model).items():
            assert np.array_equal(value, snapshots[1][name])
        assert any("restored best epoch 1" in m for m in messages)

    def test_no_restore_when_run_completes(self, toy_ids):
        config = TrainConfig(epochs=3, batch_size=16, lr=3e-3, early_stop_patience=5)
        model, trainer = _make_trainer(config, dropout=0.0)
        history = trainer.fit(toy_ids[:48], val_ids=toy_ids[48:])
        assert not history.stopped_early
        assert not history.restored_best


class TestTrainingStateRoundtrip:
    def test_state_file_roundtrip(self, toy_ids, tmp_path):
        config = TrainConfig(epochs=3, batch_size=16, lr=3e-3, seed=5)
        model, trainer = _make_trainer(config)
        path = tmp_path / "state.npz"
        trainer.fit(toy_ids[:48], val_ids=toy_ids[48:], checkpoint_path=path)
        arrays, meta = load_training_state(path)
        assert meta["epoch"] == 3
        assert set(arrays["model"]) == {n for n, _ in model.named_parameters()}
        assert len(arrays["optim_m"]) == len(list(model.parameters()))

    def test_corrupt_state_raises_checkpoint_error(self, toy_ids, tmp_path):
        config = TrainConfig(epochs=1, batch_size=16)
        _, trainer = _make_trainer(config)
        path = tmp_path / "state.npz"
        trainer.fit(toy_ids, checkpoint_path=path)
        corrupt_file(path)
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_training_state(path)

    def test_wrong_kind_raises(self, tmp_path):
        from repro.nn import save_checkpoint

        config = TrainConfig(epochs=1)
        model, _ = _make_trainer(config)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path, meta={"kind": "PagPassGPT"})
        with pytest.raises(CheckpointError, match="not a training state"):
            load_training_state(path)

    def test_resume_config_mismatch_raises(self, toy_ids, tmp_path):
        path = tmp_path / "state.npz"
        _, trainer = _make_trainer(TrainConfig(epochs=2, batch_size=16))
        trainer.fit(toy_ids, checkpoint_path=path)
        _, other = _make_trainer(TrainConfig(epochs=7, batch_size=16))
        with pytest.raises(CheckpointError, match="total_steps"):
            other.fit(toy_ids, resume_from=path)


class TestCrashResume:
    CONFIG = dict(epochs=5, batch_size=16, lr=3e-3, seed=3)

    def test_interrupted_training_resumes_bit_identically(self, toy_ids, tmp_path, monkeypatch):
        """crash after 3 epochs -> resume -> same weights and losses."""
        train, val = toy_ids[:48], toy_ids[48:]

        # Uninterrupted reference run (dropout on: rng state must survive).
        ref_model, ref_trainer = _make_trainer(TrainConfig(**self.CONFIG), dropout=0.1)
        ref_history = ref_trainer.fit(train, val_ids=val)

        path = tmp_path / "state.npz"
        crash_model, crash_trainer = _make_trainer(TrainConfig(**self.CONFIG), dropout=0.1)
        monkeypatch.setenv(FAULT_ENV, "crash:epoch:3")
        with pytest.raises(InjectedFault):
            crash_trainer.fit(train, val_ids=val, checkpoint_path=path)
        monkeypatch.delenv(FAULT_ENV)

        _, meta = load_training_state(path)
        assert meta["epoch"] == 3  # the crashed epoch was not checkpointed

        resume_model, resume_trainer = _make_trainer(TrainConfig(**self.CONFIG), dropout=0.1)
        history = resume_trainer.fit(
            train, val_ids=val, checkpoint_path=path, resume_from=path
        )

        assert history.train_loss == pytest.approx(ref_history.train_loss, abs=1e-12)
        assert history.val_loss == pytest.approx(ref_history.val_loss, abs=1e-12)
        ref = _params(ref_model)
        for name, value in _params(resume_model).items():
            assert np.array_equal(value, ref[name]), f"weight drift in {name}"

    def test_journal_records_epochs(self, toy_ids, tmp_path):
        path = tmp_path / "state.npz"
        journal_path = tmp_path / "train.journal.jsonl"
        _, trainer = _make_trainer(TrainConfig(epochs=2, batch_size=16))
        journal = RunJournal.create(journal_path, {"kind": "train"})
        trainer.fit(toy_ids, checkpoint_path=path, journal=journal)
        journal.close()
        reopened = RunJournal.open(journal_path)
        done = reopened.completed("epoch")
        assert set(done) == {0, 1}
        assert done[1]["checkpoint_digest"]
        reopened.close()
