"""Dataloader and trainer tests."""

import numpy as np
import pytest

from repro.nn import GPT2Config, GPT2Model
from repro.training import BatchLoader, TrainConfig, Trainer


class TestBatchLoader:
    def test_covers_all_rows(self):
        ids = np.arange(25).reshape(25, 1)
        loader = BatchLoader(ids, batch_size=4, shuffle=True, seed=0)
        seen = np.concatenate(list(loader)).ravel()
        assert sorted(seen) == list(range(25))

    def test_batch_count(self):
        loader = BatchLoader(np.zeros((25, 3)), batch_size=4)
        assert len(loader) == 7

    def test_no_shuffle_preserves_order(self):
        ids = np.arange(10).reshape(10, 1)
        loader = BatchLoader(ids, batch_size=3, shuffle=False)
        first = next(iter(loader))
        assert list(first.ravel()) == [0, 1, 2]

    def test_epochs_reshuffle(self):
        ids = np.arange(50).reshape(50, 1)
        loader = BatchLoader(ids, batch_size=50, shuffle=True, seed=0)
        e1 = next(iter(loader)).ravel().tolist()
        e2 = next(iter(loader)).ravel().tolist()
        assert e1 != e2

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchLoader(np.zeros(5), batch_size=2)
        with pytest.raises(ValueError):
            BatchLoader(np.zeros((5, 2)), batch_size=0)


@pytest.fixture(scope="module")
def toy_ids():
    """Sequences with strong structure the model can learn quickly."""
    rng = np.random.default_rng(0)
    base = np.tile(np.arange(8), (64, 1))  # always 0 1 2 3 4 5 6 7
    return base + rng.integers(0, 2, size=(64, 1))  # two variants


class TestTrainer:
    def test_loss_decreases(self, toy_ids):
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        trainer = Trainer(model, pad_id=9, config=TrainConfig(epochs=8, batch_size=16, lr=3e-3))
        history = trainer.fit(toy_ids)
        assert history.train_loss[-1] < history.train_loss[0] * 0.75

    def test_validation_tracked(self, toy_ids):
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        trainer = Trainer(model, pad_id=9, config=TrainConfig(epochs=3, batch_size=16, lr=3e-3))
        history = trainer.fit(toy_ids[:48], val_ids=toy_ids[48:])
        assert len(history.val_loss) == 3
        assert history.best_epoch >= 0
        assert history.best_val_loss == min(history.val_loss)

    def test_early_stopping(self, toy_ids):
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        # lr=0 -> no improvement -> stops after patience epochs.
        trainer = Trainer(
            model,
            pad_id=9,
            config=TrainConfig(epochs=10, batch_size=16, lr=0.0, early_stop_patience=2),
        )
        history = trainer.fit(toy_ids[:48], val_ids=toy_ids[48:])
        assert history.stopped_early
        assert len(history.val_loss) < 10

    def test_evaluate_requires_data(self, toy_ids):
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        trainer = Trainer(model, pad_id=9)
        with pytest.raises(ValueError):
            trainer.evaluate(np.zeros((0, 8), dtype=np.int64))

    def test_model_left_in_eval_mode(self, toy_ids):
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.1)
        )
        trainer = Trainer(model, pad_id=9, config=TrainConfig(epochs=1, batch_size=16))
        trainer.fit(toy_ids)
        assert not model.training

    def test_log_fn_called(self, toy_ids):
        messages = []
        model = GPT2Model(
            GPT2Config(vocab_size=10, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        trainer = Trainer(
            model, pad_id=9, config=TrainConfig(epochs=2, batch_size=32), log_fn=messages.append
        )
        trainer.fit(toy_ids)
        assert len(messages) == 2
