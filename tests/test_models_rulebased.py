"""Rule-based (Hashcat-family) model tests."""

import pytest

from repro.datasets import build_corpus
from repro.models import RuleBasedModel


@pytest.fixture(scope="module")
def fitted():
    corpus = build_corpus(
        ["password1", "password123", "monkey!", "monkey12", "dragon99",
         "Dragon!", "love", "loveyou2", "xy12", "summer2010"]
    )
    return RuleBasedModel(max_words=100).fit(corpus)


class TestFit:
    def test_wordlist_by_frequency(self, fitted):
        # "password" x2, "monkey" x2, "dragon" x2, "love" appears in
        # love/loveyou -> "password" must be first or tied-first.
        assert fitted.wordlist[0] in ("password", "monkey", "dragon")
        assert "password" in fitted.wordlist
        assert "summer" in fitted.wordlist

    def test_short_runs_excluded(self, fitted):
        assert "xy" not in fitted.wordlist

    def test_lowercased(self, fitted):
        assert all(w == w.lower() for w in fitted.wordlist)

    def test_validation(self):
        with pytest.raises(ValueError):
            RuleBasedModel(max_words=0)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            RuleBasedModel().generate(3)


class TestGeneration:
    def test_deterministic_and_duplicate_free(self, fitted):
        a = fitted.generate(300)
        b = fitted.generate(300)
        assert a == b
        assert len(set(a)) == len(a)

    def test_head_contains_bare_words(self, fitted):
        head = fitted.generate(20)
        assert "password" in head
        assert "monkey" in head or "dragon" in head

    def test_manglings_appear(self, fitted):
        guesses = set(fitted.generate(2_000))
        assert "Password" in guesses        # capitalize
        assert "PASSWORD" in guesses        # upper
        assert "p@$$w0rd" in guesses        # leet
        assert "password1" in guesses       # append
        assert "drowssap" in guesses        # reverse

    def test_length_bounds_respected(self, fitted):
        assert all(4 <= len(g) <= 12 for g in fitted.generate(3_000))

    def test_exhaustion_is_graceful(self, fitted):
        everything = fitted.generate(10**6)
        assert len(everything) <= fitted.max_guesses
        assert len(set(everything)) == len(everything)

    def test_closed_world_weakness(self, fitted):
        """The §II-B1 critique: every guess derives from a seen word via
        one of the known transforms + appends."""
        from repro.models.rulebased import TRANSFORMS, _APPENDS

        expansions = {
            t(w) + a for w in fitted.wordlist for t in TRANSFORMS for a in _APPENDS
        }
        for guess in fitted.generate(500):
            assert guess in expansions, guess
