"""Distributed trace identity: ids, headers, and cross-process uniqueness.

The span-id scheme is the foundation the whole export/`--check` story
stands on: ids derived from ``(pid, counter)`` can never collide across
a parent and its forked workers, unlike the previous per-process
``itertools.count()`` which restarted at 0 in every worker.  The merge
test at the bottom is the regression test for that bug: a real 2-worker
campaign's merged streams must contain globally-unique span ids that
all carry the parent's trace id.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry.context import (
    SPAN_COUNTER_BITS,
    TraceContext,
    make_span_id,
    new_trace_id,
    split_span_id,
)

from tests.test_telemetry_campaign import SEED, THRESHOLD, TOTAL, _generator


# ----------------------------------------------------------------------
# Span ids
# ----------------------------------------------------------------------

class TestSpanIds:
    def test_roundtrip(self):
        for pid, counter in ((1, 0), (4194304, 7), (31337, (1 << SPAN_COUNTER_BITS) - 1)):
            assert split_span_id(make_span_id(pid, counter)) == (pid, counter)

    def test_distinct_pids_never_collide(self):
        ids = {make_span_id(pid, counter) for pid in (100, 101, 4194303)
               for counter in range(50)}
        assert len(ids) == 3 * 50

    def test_fits_in_63_bits(self):
        """JSON numbers survive exactly up to 2^53; ints to 2^63 in every
        parser we rely on — the id must stay clear of the sign bit."""
        assert make_span_id(4194304, (1 << SPAN_COUNTER_BITS) - 1) < (1 << 63)

    def test_deterministic_within_process(self):
        assert make_span_id(42, 3) == make_span_id(42, 3)


# ----------------------------------------------------------------------
# TraceContext
# ----------------------------------------------------------------------

class TestTraceContext:
    def test_new_mints_32_hex_chars(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 32
        int(ctx.trace_id, 16)  # raises if not hex
        assert ctx.parent_span_id is None

    def test_trace_ids_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64

    def test_dict_roundtrip(self):
        ctx = TraceContext(trace_id="ab" * 16, parent_span_id=make_span_id(7, 3))
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_dict_roundtrip_without_parent(self):
        ctx = TraceContext(trace_id="cd" * 16)
        assert "span_id" not in ctx.to_dict()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    @pytest.mark.parametrize("payload", [None, {}, {"span_id": 3}, {"trace_id": ""},
                                         {"trace_id": 7}, "not-a-dict", []])
    def test_malformed_dict_is_none(self, payload):
        assert TraceContext.from_dict(payload) is None

    def test_traceparent_roundtrip(self):
        ctx = TraceContext(trace_id="0af7651916cd43dd8448eb211c80319c",
                           parent_span_id=make_span_id(9, 5))
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    def test_traceparent_format(self):
        ctx = TraceContext(trace_id="ab" * 16, parent_span_id=255)
        header = ctx.to_traceparent()
        version, trace_id, parent, flags = header.split("-")
        assert (version, flags) == ("00", "01")
        assert trace_id == ctx.trace_id
        assert parent == f"{255:016x}"

    def test_traceparent_explicit_span_overrides(self):
        ctx = TraceContext(trace_id="ab" * 16, parent_span_id=1)
        assert f"{77:016x}" in ctx.to_traceparent(span_id=77)

    @pytest.mark.parametrize("header", [
        None, "", "garbage", "00-short-0000000000000001-01",
        "00-" + "g" * 32 + "-0000000000000001-01",
        "0af7651916cd43dd8448eb211c80319c",  # bare trace id, no structure
    ])
    def test_invalid_traceparent_is_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_all_zero_parent_means_no_parent(self):
        header = "00-" + "ab" * 16 + "-" + "0" * 16 + "-01"
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.parent_span_id is None


# ----------------------------------------------------------------------
# The merge test: a real 2-worker campaign (the satellite regression)
# ----------------------------------------------------------------------

def test_two_worker_campaign_span_ids_globally_unique(tmp_path):
    """Merged parent+worker streams: every span id unique, one trace id.

    Before ids became pid-derived, every process counted spans from 0,
    so any parent span collided with the first worker span of the same
    index — and the merged tree was garbage.
    """
    gen = _generator(workers=2)
    with telemetry.session(tmp_path, run_id="merge") as sess:
        trace_id = sess.trace_id
        gen.generate(TOTAL, seed=SEED)

    spans = telemetry.load_spans(tmp_path)
    streams = {s["stream"] for s in spans}
    assert len(streams) >= 2, "expected parent + worker streams"

    ids = [s["span_id"] for s in spans]
    assert len(ids) == len(set(ids)), "span ids collided across processes"

    # Every span id embeds the pid of the stream that emitted it.
    for span in spans:
        assert split_span_id(span["span_id"])[0] == span["pid"]

    # Every stream declared the same trace id as the parent session.
    for path in telemetry.campaign_files(tmp_path):
        declared = [e["fields"]["trace_id"] for e in telemetry.read_events(path)
                    if e["event"] == "trace_context"]
        assert declared and set(declared) == {trace_id}, path.name
