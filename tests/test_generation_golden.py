"""Golden-stream regression: optimisations must not change a single byte.

The committed fixture ``tests/golden/streams.json`` was produced by
``tests/goldens.py`` *before* the inference fast path landed; these tests
assert the current code reproduces it exactly — for serial and parallel
execution, several batch widths, and journaled resume.  A failure here
means an "optimisation" changed what the generators sample.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.generation import DCGenConfig, DCGenerator, plan_digest
from repro.nn.backend import compiler_available
from repro.runtime import faults
from repro.runtime.faults import InjectedFault

from tests.goldens import GOLDEN_PATH, SPEC, build_model, generate_ordered_stream


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def _dcgen_stream(workers: int, gen_batch: int, journal=None, resume=False):
    model = build_model()
    dc = SPEC["dcgen"]
    gen = DCGenerator(
        model,
        DCGenConfig(threshold=dc["threshold"], gen_batch=gen_batch, workers=workers),
    )
    stream = gen.generate(dc["total"], seed=dc["seed"], journal=journal, resume=resume)
    return stream, plan_digest(gen.leaf_tasks)


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("gen_batch", [37, 256])
def test_dcgen_stream_byte_identical(golden, workers, gen_batch):
    stream, digest = _dcgen_stream(workers, gen_batch)
    assert digest == golden["plan_digest"]
    assert stream == golden["dcgen"]
    assert hashlib.sha256("\n".join(stream).encode()).hexdigest() == golden["dcgen_sha256"]


@pytest.mark.parametrize("workers", [1, 2])
def test_free_stream_byte_identical(golden, workers):
    model = build_model()
    stream = model.generate(SPEC["free"]["n"], seed=SPEC["free"]["seed"], workers=workers)
    assert stream == golden["free"]
    assert hashlib.sha256("\n".join(stream).encode()).hexdigest() == golden["free_sha256"]


def test_journaled_resume_validates_plan_digest(golden, tmp_path):
    """A journaled run resumes against the same plan digest and stream."""
    journal = tmp_path / "run.jsonl"
    first, digest = _dcgen_stream(1, 256, journal=journal)
    assert digest == golden["plan_digest"]
    header = json.loads(journal.read_text().splitlines()[0])
    assert header["payload"]["plan"] == golden["plan_digest"]
    # Resume replays the journaled batches and must emit the same bytes.
    resumed, _ = _dcgen_stream(1, 256, journal=journal, resume=True)
    assert resumed == first == golden["dcgen"]


@pytest.mark.parametrize("snapshot_every", [1, 4])
def test_ordered_stream_byte_identical(golden, snapshot_every):
    """The best-first stream is deterministic for any journal cadence."""
    stream = generate_ordered_stream(snapshot_every=snapshot_every)
    assert stream == golden["ordered"]
    digest = hashlib.sha256("\n".join(stream).encode()).hexdigest()
    assert digest == golden["ordered_sha256"]


@pytest.mark.parametrize("snapshot_every", [2, 5])
def test_ordered_crash_resume_byte_identical(golden, snapshot_every, tmp_path, monkeypatch):
    """A crashed-and-resumed ordered campaign reproduces the golden bytes.

    Two snapshot intervals exercise different crash points in the
    enumeration; both must splice back into the identical stream.
    """
    journal = tmp_path / "run.jsonl"
    monkeypatch.setenv(faults.FAULT_ENV, "crash:frontier:2")
    faults.reset()
    with pytest.raises(InjectedFault):
        generate_ordered_stream(snapshot_every=snapshot_every, journal=journal)
    monkeypatch.delenv(faults.FAULT_ENV)
    faults.reset()
    assert journal.exists()
    snapshots = len(journal.read_text().splitlines()) - 1  # minus header
    assert snapshots == 2  # the fault fired after exactly two clean writes
    resumed = generate_ordered_stream(
        snapshot_every=snapshot_every, journal=journal, resume=True
    )
    assert resumed == golden["ordered"]


def test_fixture_self_consistent(golden):
    assert golden["spec"] == SPEC  # fixture was built from the current spec
    for key in ("dcgen", "free", "ordered"):
        digest = hashlib.sha256("\n".join(golden[key]).encode()).hexdigest()
        assert digest == golden[f"{key}_sha256"]


@pytest.mark.skipif(not compiler_available(), reason="no C compiler available")
class TestCompiledBackendGolden:
    """The compiled decode backend is held to the same fixture bytes.

    ``REPRO_BACKEND=compiled`` swaps the seq==1 decode kernel for the
    fused C path (``repro.nn.backend``); every strategy must still emit
    the identical golden stream, serial and multi-process (forked
    workers inherit the loaded kernel library copy-on-write).
    """

    @pytest.fixture(autouse=True)
    def _compiled_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "compiled")

    @pytest.mark.parametrize("workers", [1, 2])
    def test_dcgen_stream_byte_identical(self, golden, workers):
        model = build_model()
        assert model.inference.backend_name == "compiled", "backend fell back"
        dc = SPEC["dcgen"]
        gen = DCGenerator(model, DCGenConfig(threshold=dc["threshold"], workers=workers))
        stream = gen.generate(dc["total"], seed=dc["seed"])
        assert stream == golden["dcgen"]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_free_stream_byte_identical(self, golden, workers):
        model = build_model()
        assert model.inference.backend_name == "compiled", "backend fell back"
        stream = model.generate(SPEC["free"]["n"], seed=SPEC["free"]["seed"], workers=workers)
        assert stream == golden["free"]

    def test_ordered_stream_byte_identical(self, golden):
        stream = generate_ordered_stream(snapshot_every=4)
        assert stream == golden["ordered"]
