"""Sampling profiler: samples land, spans attribute, nothing perturbs.

The last test is the acceptance criterion for the observability PR:
running the *golden* D&C-GEN + ordered campaigns under full tracing AND
an armed 1 ms profiler must reproduce the committed fixture streams
byte-for-byte, for workers 1 and 2.
"""

from __future__ import annotations

import hashlib
import json
import signal
import threading
import time

import pytest

from repro import telemetry
from repro.generation import DCGenConfig, DCGenerator
from repro.telemetry.profiler import ProfilerError, SamplingProfiler

from tests.goldens import GOLDEN_PATH, SPEC, build_model, generate_ordered_stream


def _busy(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i * i for i in range(500))


# ----------------------------------------------------------------------
# Core sampling behaviour
# ----------------------------------------------------------------------

def test_samples_a_busy_loop():
    profiler = SamplingProfiler(interval=0.001)
    with profiler:
        _busy(0.15)
    assert profiler.sample_count > 10
    folded = profiler.folded()
    assert folded
    line = folded.splitlines()[0]
    stack, count = line.rsplit(" ", 1)
    assert int(count) >= 1
    assert stack.startswith("span:")
    # Our own busy loop is on the sampled stack.
    assert "_busy" in folded

def test_span_attribution(tmp_path):
    profiler = SamplingProfiler(interval=0.001)
    with telemetry.session(tmp_path, run_id="prof"):
        with profiler:
            with telemetry.trace("hot.phase"):
                _busy(0.12)
    assert profiler.span_samples.get("hot.phase", 0) > 0
    assert any(stack.startswith("span:hot.phase;") for stack in profiler.samples)
    top = profiler.top_spans(1)
    assert top and top[0][0] == "hot.phase"

def test_profile_event_lands_in_session(tmp_path):
    with telemetry.session(tmp_path, run_id="prof"):
        with SamplingProfiler(interval=0.001):
            _busy(0.05)
    events = telemetry.read_events(tmp_path / "telemetry.jsonl")
    profiles = [e["fields"] for e in events if e["event"] == "profile"]
    assert len(profiles) == 1
    assert profiles[0]["samples"] > 0
    assert profiles[0]["interval_s"] == 0.001
    # ...and the determinism view drops it entirely.
    assert not [e for e in telemetry.stable_events(events) if e["event"] == "profile"]

def test_write_folded_file(tmp_path):
    profiler = SamplingProfiler(interval=0.001)
    with profiler:
        _busy(0.05)
    out = profiler.write(tmp_path / "profile.folded")
    text = out.read_text()
    assert text.endswith("\n")
    for line in text.splitlines():
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1 and stack


# ----------------------------------------------------------------------
# Lifecycle guards
# ----------------------------------------------------------------------

def test_handler_restored_after_stop():
    before = signal.getsignal(signal.SIGALRM)
    profiler = SamplingProfiler(interval=0.001)
    profiler.start()
    assert signal.getsignal(signal.SIGALRM) != before
    profiler.stop()
    assert signal.getsignal(signal.SIGALRM) == before
    assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

def test_double_start_refused():
    profiler = SamplingProfiler(interval=0.001)
    profiler.start()
    try:
        with pytest.raises(ProfilerError):
            profiler.start()
    finally:
        profiler.stop()

def test_stop_without_start_is_noop():
    SamplingProfiler().stop()

def test_gil_keeper_runs_only_while_profiling():
    # The keeper guarantees a second GIL taker for the lifetime of the
    # profiler (drop_gil forced-switch liveness) and must not leak.
    profiler = SamplingProfiler(interval=0.001)
    profiler.start()
    try:
        keeper = profiler._keeper
        assert keeper is not None and keeper.is_alive() and keeper.daemon
        # Keeper stacks never pollute samples (filtered by ident).
        time.sleep(0.05)
    finally:
        profiler.stop()
    assert profiler._keeper is None
    assert not keeper.is_alive()
    assert not any("_keep_gil_moving" in stack for stack in profiler.samples)

def test_non_main_thread_start_refused():
    caught = []

    def attempt():
        try:
            SamplingProfiler().start()
        except ProfilerError as exc:
            caught.append(exc)

    thread = threading.Thread(target=attempt)
    thread.start()
    thread.join()
    assert len(caught) == 1

def test_bad_interval_refused():
    with pytest.raises(ValueError):
        SamplingProfiler(interval=0.0)


# ----------------------------------------------------------------------
# Acceptance: tracing + profiling never change a sampled byte
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2])
def test_golden_streams_byte_identical_under_tracing_and_profiling(tmp_path, workers):
    golden = json.loads(GOLDEN_PATH.read_text())
    dc = SPEC["dcgen"]
    with telemetry.session(tmp_path / "dcgen", run_id="golden-profiled"):
        with SamplingProfiler(interval=0.001):
            model = build_model()
            gen = DCGenerator(
                model, DCGenConfig(threshold=dc["threshold"], workers=workers)
            )
            dcgen_stream = gen.generate(dc["total"], seed=dc["seed"])
    with telemetry.session(tmp_path / "ordered", run_id="golden-profiled"):
        with SamplingProfiler(interval=0.001):
            ordered_stream = generate_ordered_stream()
    digest = hashlib.sha256("\n".join(dcgen_stream).encode()).hexdigest()
    assert digest == golden["dcgen_sha256"], f"dcgen diverged (workers={workers})"
    digest = hashlib.sha256("\n".join(ordered_stream).encode()).hexdigest()
    assert digest == golden["ordered_sha256"], f"ordered diverged (workers={workers})"
    # Each traced directory is itself a valid, connected trace.
    for sub in ("dcgen", "ordered"):
        assert telemetry.check_trace_tree(telemetry.load_spans(tmp_path / sub)) == []
