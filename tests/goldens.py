"""Golden-stream fixtures for the inference fast path.

The D&C-GEN and free-generation guess streams are part of the repo's
compatibility contract: perf work on the inference path (KV priming,
decode kernels, batching) must never change a single sampled byte.  This
module pins that contract to committed fixtures:

* :func:`build_model` constructs the deterministic reference model
  (fixed-seed random weights — sampling equivalence must hold for any
  next-token distribution, so training is unnecessary);
* :func:`generate_streams` produces the reference streams through the
  *public* generation API only, so the exact same script reproduces the
  goldens at any commit;
* running ``PYTHONPATH=src python tests/goldens.py`` regenerates
  ``tests/golden/streams.json``.  Only regenerate after a change that is
  *meant* to alter sampling (e.g. a new sampler), never for a pure
  optimisation — the whole point is that optimisations keep these bytes.

``tests/test_generation_golden.py`` asserts current code reproduces the
committed fixture for workers 1/2 and several ``gen_batch`` widths.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "golden" / "streams.json"

#: Reference campaign parameters.  Scale is chosen so the full golden
#: suite (4 D&C-GEN runs + 2 free runs) stays test-suite friendly while
#: still covering thousands of sampled positions.
SPEC = {
    "model": {"dim": 64, "n_layers": 2, "n_heads": 4, "seed": 0},
    "pattern_probs": {"L4N2": 0.4, "N6": 0.3, "L3S1N2": 0.2, "L8": 0.1},
    "dcgen": {"total": 1500, "seed": 11, "threshold": 48},
    "free": {"n": 700, "seed": 13},
    "ordered": {"n": 120, "beam_width": 32, "max_frontier": 5000},
}


def build_model():
    """The fixed reference model: deterministic weights, hand-made S_p."""
    from repro.models import PagPassGPT
    from repro.nn import GPT2Config

    spec = SPEC["model"]
    model = PagPassGPT(
        model_config=GPT2Config(
            vocab_size=135,
            block_size=32,
            dim=spec["dim"],
            n_layers=spec["n_layers"],
            n_heads=spec["n_heads"],
            dropout=0.0,
        ),
        seed=spec["seed"],
    )
    model._fitted = True
    model.pattern_probs = dict(SPEC["pattern_probs"])
    return model


def ordered_config(snapshot_every: int = 4):
    """The reference ordered-enumeration config.

    ``snapshot_every`` is deliberately NOT part of :data:`SPEC`: journal
    cadence must never change the emitted bytes, and the golden resume
    tests exploit that by crashing runs at several intervals.
    """
    from repro.generation import OrderedConfig

    spec = SPEC["ordered"]
    return OrderedConfig(
        beam_width=spec["beam_width"],
        max_frontier=spec["max_frontier"],
        snapshot_every=snapshot_every,
    )


def generate_ordered_stream(snapshot_every: int = 4, journal=None, resume=False):
    """Reference ordered stream via the public generation API."""
    from repro.generation import OrderedGenerator

    gen = OrderedGenerator.for_patterns(
        build_model(), config=ordered_config(snapshot_every)
    )
    return gen.generate(SPEC["ordered"]["n"], journal=journal, resume=resume)


def generate_streams(workers: int = 1, gen_batch: int | None = None) -> dict:
    """Reference D&C-GEN + free + ordered streams via the public API."""
    from repro.generation import DCGenConfig, DCGenerator, plan_digest
    from repro.generation.sampler import GEN_BATCH

    model = build_model()
    dc = SPEC["dcgen"]
    config = DCGenConfig(
        threshold=dc["threshold"],
        gen_batch=gen_batch or GEN_BATCH,
        workers=workers,
    )
    gen = DCGenerator(model, config)
    dcgen_stream = gen.generate(dc["total"], seed=dc["seed"])
    digest = plan_digest(gen.leaf_tasks)
    free_stream = model.generate(SPEC["free"]["n"], seed=SPEC["free"]["seed"], workers=workers)
    ordered_stream = generate_ordered_stream()
    return {
        "spec": SPEC,
        "plan_digest": digest,
        "dcgen": dcgen_stream,
        "dcgen_sha256": hashlib.sha256("\n".join(dcgen_stream).encode()).hexdigest(),
        "free": free_stream,
        "free_sha256": hashlib.sha256("\n".join(free_stream).encode()).hexdigest(),
        "ordered": ordered_stream,
        "ordered_sha256": hashlib.sha256("\n".join(ordered_stream).encode()).hexdigest(),
    }


def main() -> None:
    streams = generate_streams()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(streams, indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    print(f"  dcgen:   {len(streams['dcgen'])} guesses, sha {streams['dcgen_sha256'][:16]}")
    print(f"  free:    {len(streams['free'])} guesses, sha {streams['free_sha256'][:16]}")
    print(f"  ordered: {len(streams['ordered'])} guesses, sha {streams['ordered_sha256'][:16]}")
    print(f"  plan digest: {streams['plan_digest']}")


if __name__ == "__main__":
    main()
