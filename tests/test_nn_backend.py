"""Compiled decode backend: per-op equivalence, fused parity, caching, fallback.

Three layers of guarantees, mirroring how the backend is built:

* **Per-op** — each rendered C primitive (pairwise sum, layernorm, GELU
  halves, softmax halves, the inline attention kernels, BLAS-delegated
  matmul) reproduces its numpy counterpart: bit-exact on the float32
  domains the step kernel actually uses, ≤1e-6 relative elsewhere.
* **Fused** — full decode-step rollouts through ``CompiledStepBackend``
  are bit-identical to ``GPT2Inference._step_numpy``, including the KV
  cache contents, across model shapes that exercise both attention
  paths (inline kernels and per-slice cblas) and both head layouts
  (tied/transposed and untied).
* **Infrastructure** — kernel-cache reuse across instances (in-memory
  and on-disk), and graceful numpy fallback when the compiler is
  masked: warning, ``backend.fallbacks`` counter, ``backend_fallback``
  telemetry event, campaign still runs.
"""

import ctypes
import json

import numpy as np
import pytest

from repro.nn import backend as bk
from repro.nn.backend import compiled as compiled_mod
from repro.nn import inference as inference_mod
from repro.nn.inference import GPT2Inference, KVCache, _gelu, _layer_norm
from repro.nn.transformer import GPT2Config, GPT2Model
from repro.telemetry.metrics import get_registry
from repro.telemetry.tracing import session as telemetry_session
from repro.telemetry.logger import read_events

needs_cc = pytest.mark.skipif(not bk.compiler_available(), reason="no C compiler available")


def _f32(*shape, rng, scale=1.0):
    return (rng.standard_normal(shape) * scale).astype(np.float32)


def _ptr(arr):
    return ctypes.c_void_p(arr.ctypes.data)


@pytest.fixture(scope="module")
def oplib(tmp_path_factory):
    """The standalone per-op kernel library, BLAS pointers bound."""
    if not bk.compiler_available():
        pytest.skip("no C compiler available")
    blas = bk.find_blas()
    lib = bk.build_library(bk.render_op_test_source(blas_int64=blas.ilp64), tag="ops")
    lib.repro_set_blas(ctypes.c_void_p(blas.sgemm), ctypes.c_void_p(blas.sgemv))
    lib.repro_sum.restype = ctypes.c_float
    # explicit argtypes so the float scalar is passed single-precision
    lib.repro_softmax_prep.argtypes = [ctypes.c_void_p, ctypes.c_int64, ctypes.c_float]
    return lib


def _tiny_model(**overrides):
    cfg = dict(
        vocab_size=61, block_size=16, dim=32, n_layers=2, n_heads=2, dropout=0.0
    )
    cfg.update(overrides)
    return GPT2Model(GPT2Config(**cfg), seed=7)


# ----------------------------------------------------------------------
# Op graph structure
# ----------------------------------------------------------------------


class TestGraph:
    def test_segment_count_and_host_interleave(self):
        shape = bk.StepShape(64, 2, 4, 32, 135, head_transposed=True)
        program = bk.fuse_segments(bk.build_step_graph(shape))
        segments = [p for p in program if isinstance(p, bk.Segment)]
        hosts = [p for p in program if isinstance(p, bk.HostOp)]
        assert len(segments) == 2 * 2 + 1
        assert [h.func for h in hosts] == ["exp", "tanh"] * 2
        # strict alternation: seg, host, seg, host, ..., seg
        kinds = ["seg" if isinstance(p, bk.Segment) else "host" for p in program]
        assert kinds == ["seg", "host"] * (len(hosts)) + ["seg"]

    def test_graph_covers_reference_ops(self):
        shape = bk.StepShape(64, 3, 4, 32, 135, head_transposed=False)
        ops = bk.build_step_graph(shape)
        per_layer = [op.kind for op in ops if op.layer == 1]
        assert per_layer.count("layernorm") == 2
        assert per_layer.count("matmul") == 4
        assert ops[0].kind == "embed" and ops[-1].kind == "head"

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            bk.StepShape(30, 2, 4, 32, 135, head_transposed=False).validate()
        with pytest.raises(ValueError):
            bk.requested_backend("metal")

    def test_requested_backend_resolution(self, monkeypatch):
        monkeypatch.delenv(bk.BACKEND_ENV, raising=False)
        assert bk.requested_backend() == "numpy"
        monkeypatch.setenv(bk.BACKEND_ENV, "compiled")
        assert bk.requested_backend() == "compiled"
        assert bk.requested_backend("numpy") == "numpy"  # explicit wins


# ----------------------------------------------------------------------
# Per-op equivalence
# ----------------------------------------------------------------------


@needs_cc
class TestPerOp:
    @pytest.mark.parametrize("n", [1, 2, 5, 7, 8, 9, 17, 31, 48, 64, 128, 129, 333, 1000])
    def test_sum_matches_numpy_pairwise_exactly(self, oplib, n):
        rng = np.random.default_rng(n)
        a = _f32(n, rng=rng)
        got = np.float32(oplib.repro_sum(_ptr(a), ctypes.c_int64(n)))
        assert got.tobytes() == np.float32(a.sum()).tobytes()

    @pytest.mark.parametrize("dim", [8, 16, 64, 96, 128, 200])
    @pytest.mark.parametrize("rows", [1, 7])
    def test_layer_norm_exact(self, oplib, dim, rows):
        rng = np.random.default_rng(dim * rows)
        x, w, b = _f32(rows, dim, rng=rng), _f32(dim, rng=rng), _f32(dim, rng=rng)
        out = np.empty_like(x)
        oplib.repro_layer_norm(
            _ptr(x), _ptr(w), _ptr(b), _ptr(out), ctypes.c_int64(rows), ctypes.c_int64(dim)
        )
        assert out.tobytes() == _layer_norm(x, w, b).astype(np.float32).tobytes()

    def test_gelu_halves_with_host_tanh_exact(self, oplib):
        rng = np.random.default_rng(3)
        x = _f32(1024, rng=rng, scale=2.0)
        t = np.empty_like(x)
        oplib.repro_gelu_inner(_ptr(x), _ptr(t), ctypes.c_int64(x.size))
        np.tanh(t, out=t)  # the host op, exactly as the backend runs it
        oplib.repro_gelu_outer(_ptr(x), _ptr(t), ctypes.c_int64(x.size))
        assert t.tobytes() == _gelu(x).astype(np.float32).tobytes()

    @pytest.mark.parametrize("n", [1, 2, 3, 9, 31])
    def test_softmax_halves_exact(self, oplib, n):
        rng = np.random.default_rng(n)
        s = _f32(n, rng=rng, scale=3.0)
        kscale = np.float32(4.0)
        ref = s.copy()
        ref /= kscale
        ref -= ref.max()
        np.exp(ref, out=ref)
        ref /= ref.sum()
        oplib.repro_softmax_prep(_ptr(s), ctypes.c_int64(n), ctypes.c_float(kscale))
        np.exp(s, out=s)  # host op
        oplib.repro_softmax_norm(_ptr(s), ctypes.c_int64(n))
        assert s.tobytes() == ref.tobytes()

    @pytest.mark.parametrize("hd", [16, 32, 64])
    @pytest.mark.parametrize("n", [2, 3, 5, 17, 33, 48])
    def test_attention_kernels_exact_on_validated_domain(self, oplib, hd, n):
        rng = np.random.default_rng(hd + n)
        q, K, V = _f32(hd, rng=rng), _f32(n, hd, rng=rng), _f32(n, hd, rng=rng)
        s = _f32(n, rng=rng)
        got_scores = np.empty(n, dtype=np.float32)
        got_mix = np.empty(hd, dtype=np.float32)
        oplib.repro_gemvt(_ptr(q), _ptr(K), _ptr(got_scores), ctypes.c_long(n), ctypes.c_long(hd))
        oplib.repro_gemvn(_ptr(s), _ptr(V), _ptr(got_mix), ctypes.c_long(n), ctypes.c_long(hd))
        # reference: the stacked 4-D matmuls the numpy step kernel issues
        ref_scores = (q[None, None, None] @ K[None, None].swapaxes(-1, -2)).ravel()
        ref_mix = (s[None, None, None] @ V[None, None]).ravel()
        assert got_scores.tobytes() == ref_scores.astype(np.float32).tobytes()
        assert got_mix.tobytes() == ref_mix.astype(np.float32).tobytes()

    @pytest.mark.parametrize("hd", [16, 64])
    def test_single_position_attention_washes_out_exactly(self, oplib, hd):
        """stop==1 (first decode into an empty cache) needs no gemvt
        exactness: softmax over one element is exactly 1.0 whatever the
        score, and ``fmaf(1, v, 0) == v`` makes the mix exact."""
        rng = np.random.default_rng(hd)
        s = _f32(1, rng=rng, scale=5.0)
        oplib.repro_softmax_prep(_ptr(s), ctypes.c_int64(1), ctypes.c_float(np.float32(4.0)))
        np.exp(s, out=s)
        oplib.repro_softmax_norm(_ptr(s), ctypes.c_int64(1))
        assert s[0] == np.float32(1.0)
        v = _f32(1, hd, rng=rng)
        out = np.empty(hd, dtype=np.float32)
        oplib.repro_gemvn(_ptr(s), _ptr(v), _ptr(out), ctypes.c_long(1), ctypes.c_long(hd))
        assert out.tobytes() == v.tobytes()

    @pytest.mark.parametrize("hd", [8, 24, 40])
    def test_attention_kernels_close_on_random_shapes(self, oplib, hd):
        rng = np.random.default_rng(hd)
        n = 37
        q, K = _f32(hd, rng=rng), _f32(n, hd, rng=rng)
        got = np.empty(n, dtype=np.float32)
        oplib.repro_gemvt(_ptr(q), _ptr(K), _ptr(got), ctypes.c_long(n), ctypes.c_long(hd))
        ref = K.astype(np.float64) @ q.astype(np.float64)
        np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-6)

    @pytest.mark.parametrize("mkn", [(1, 64, 135), (4, 64, 192), (37, 256, 64)])
    def test_matmul_delegation_exact(self, oplib, mkn):
        m, k, n = mkn
        rng = np.random.default_rng(m + k + n)
        a, b = _f32(m, k, rng=rng), _f32(k, n, rng=rng)
        out = np.empty((m, n), dtype=np.float32)
        oplib.repro_matmul(
            _ptr(a), _ptr(b), _ptr(out),
            ctypes.c_int64(m), ctypes.c_int64(k), ctypes.c_int64(n),
        )
        assert out.tobytes() == (a @ b).tobytes()

    @pytest.mark.parametrize("m", [1, 5])
    def test_matmul_transposed_head_exact(self, oplib, m):
        rng = np.random.default_rng(m)
        a, bt = _f32(m, 64, rng=rng), _f32(135, 64, rng=rng)  # (vocab, dim) base
        out = np.empty((m, 135), dtype=np.float32)
        oplib.repro_matmul_t(
            _ptr(a), _ptr(bt), _ptr(out),
            ctypes.c_int64(m), ctypes.c_int64(64), ctypes.c_int64(135),
        )
        assert out.tobytes() == (a @ bt.T).tobytes()


# ----------------------------------------------------------------------
# Fused-kernel parity
# ----------------------------------------------------------------------


def _rollout_parity(model, batches, steps=None):
    cfg = model.config
    ref = GPT2Inference(model)
    comp = GPT2Inference(model, backend="compiled")
    assert comp.backend_name == "compiled", "backend fell back during parity test"
    rng = np.random.default_rng(0)
    head_dim = cfg.dim // cfg.n_heads
    steps = steps or cfg.block_size - 1
    for batch in batches:
        ref_cache = KVCache(cfg.n_layers, batch, cfg.n_heads, cfg.block_size, head_dim)
        got_cache = KVCache(cfg.n_layers, batch, cfg.n_heads, cfg.block_size, head_dim)
        for _ in range(steps):
            ids = rng.integers(0, cfg.vocab_size, size=batch)
            a = ref.step(ids, ref_cache)
            b = comp.step(ids, got_cache)
            assert a.tobytes() == b.tobytes()
        for layer in range(cfg.n_layers):
            assert ref_cache.keys[layer].tobytes() == got_cache.keys[layer].tobytes()
            assert ref_cache.values[layer].tobytes() == got_cache.values[layer].tobytes()


@needs_cc
class TestFusedParity:
    def test_inline_attention_tied_head(self):
        # head_dim 16 -> inline gemvt/gemvn kernels; tied transposed head
        _rollout_parity(_tiny_model(dim=64, n_heads=4, vocab_size=135, block_size=32), [1, 3, 37])

    def test_cblas_attention_untied_head(self):
        # head_dim 8 -> per-slice cblas path; untied (dim, vocab) head
        _rollout_parity(
            _tiny_model(dim=24, n_heads=3, vocab_size=50, tie_lm_head=False), [1, 5]
        )

    def test_three_layer_odd_vocab(self):
        _rollout_parity(_tiny_model(dim=96, n_heads=3, n_layers=3, vocab_size=99), [2])

    def test_gathered_cache_and_prompt_fanout(self):
        model = _tiny_model()
        ref = GPT2Inference(model)
        comp = GPT2Inference(model, backend="compiled")
        assert comp.backend_name == "compiled"
        _, primed = ref.start(np.array([[1, 4, 9]]))
        fan_ref = primed.gather(np.zeros(6, dtype=np.intp))
        fan_got = primed.gather(np.zeros(6, dtype=np.intp))
        ids = np.arange(6) % model.config.vocab_size
        a = ref.step(ids, fan_ref)
        b = comp.step(ids, fan_got)
        assert a.tobytes() == b.tobytes()
        assert fan_ref.keys[0].tobytes() == fan_got.keys[0].tobytes()

    def test_numpy_and_compiled_engines_share_weights(self):
        """The backend pins contiguous views, never stale copies."""
        model = _tiny_model()
        comp = GPT2Inference(model, backend="compiled")
        assert comp.backend_name == "compiled"
        # counters flow through the same step() wrapper on both paths
        cfg = model.config
        cache = KVCache(cfg.n_layers, 2, cfg.n_heads, cfg.block_size, cfg.dim // cfg.n_heads)
        before = comp.counters.step_calls
        comp.step(np.array([1, 2]), cache)
        assert comp.counters.step_calls == before + 1
        assert comp.counters.step_rows >= 2

    def test_cache_overflow_still_raises(self):
        model = _tiny_model()
        comp = GPT2Inference(model, backend="compiled")
        cfg = model.config
        cache = KVCache(cfg.n_layers, 1, cfg.n_heads, cfg.block_size, cfg.dim // cfg.n_heads)
        cache.length = cfg.block_size
        with pytest.raises(ValueError, match="cache overflow"):
            comp.step(np.array([0]), cache)


# ----------------------------------------------------------------------
# Kernel cache + fallback
# ----------------------------------------------------------------------


@needs_cc
class TestKernelCache:
    def test_reuse_across_instances_in_memory(self):
        model = _tiny_model(vocab_size=53)
        registry = get_registry()
        GPT2Inference(model, backend="compiled")
        compiled_before = dict(registry.values()).get("backend.kernels_compiled", 0)
        hits_before = dict(registry.values()).get("backend.cache_hits", 0)
        GPT2Inference(model, backend="compiled")  # same shape -> cache hit
        values = dict(registry.values())
        assert values.get("backend.kernels_compiled", 0) == compiled_before
        assert values.get("backend.cache_hits", 0) == hits_before + 1

    def test_disk_cache_survives_without_compiler(self, tmp_path, monkeypatch):
        monkeypatch.setenv(bk.BACKEND_ENV, "numpy")  # isolate from session env
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        model = _tiny_model(vocab_size=47)
        monkeypatch.setattr(compiled_mod, "_LIB_CACHE", {})
        first = GPT2Inference(model, backend="compiled")
        assert first.backend_name == "compiled"
        assert list(tmp_path.glob("step-*.so")), "library not published to disk cache"
        assert list(tmp_path.glob("step-*.c")), "source not kept beside the library"
        # New process-equivalent state: empty memory cache, no compiler.
        monkeypatch.setattr(compiled_mod, "_LIB_CACHE", {})
        monkeypatch.setenv("CC", "/nonexistent-compiler")
        second = GPT2Inference(model, backend="compiled")
        assert second.backend_name == "compiled", "disk-cached kernel was not reused"

    def test_compile_metrics_registered(self):
        model = _tiny_model(vocab_size=43, block_size=12)
        registry = get_registry()
        before = dict(registry.values())
        GPT2Inference(model, backend="compiled")  # fresh shape -> compile or disk hit
        values = dict(registry.values())
        compiled = values.get("backend.kernels_compiled", 0) - before.get(
            "backend.kernels_compiled", 0
        )
        hits = values.get("backend.cache_hits", 0) - before.get("backend.cache_hits", 0)
        assert compiled + hits >= 1
        if compiled:
            assert values.get("backend.compile_seconds", 0) > 0


class TestFallback:
    def test_masked_compiler_falls_back_with_event(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("CC", "/nonexistent-compiler")
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "empty"))
        monkeypatch.setattr(compiled_mod, "_LIB_CACHE", {})
        monkeypatch.setattr(inference_mod, "_BACKEND_FALLBACK_EMITTED", False)
        model = _tiny_model()
        registry = get_registry()
        before = dict(registry.values()).get("backend.fallbacks", 0)
        tele_dir = tmp_path / "tele"
        with telemetry_session(str(tele_dir)):
            inf = GPT2Inference(model, backend="compiled")
            assert inf.backend_name == "numpy"
            # the campaign still runs on the numpy path
            cfg = model.config
            cache = KVCache(
                cfg.n_layers, 1, cfg.n_heads, cfg.block_size, cfg.dim // cfg.n_heads
            )
            logits = inf.step(np.array([1]), cache)
            assert logits.shape == (1, cfg.vocab_size)
        assert dict(registry.values()).get("backend.fallbacks", 0) == before + 1
        err = capsys.readouterr().err
        assert "falling back to numpy" in err
        events = [
            e
            for e in read_events(tele_dir / "telemetry.jsonl")
            if e.get("event") == "backend_fallback"
        ]
        assert len(events) == 1
        assert events[0]["fields"]["active"] == "numpy"

    def test_fallback_warns_once_per_process(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("CC", "/nonexistent-compiler")
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "empty"))
        monkeypatch.setattr(compiled_mod, "_LIB_CACHE", {})
        monkeypatch.setattr(inference_mod, "_BACKEND_FALLBACK_EMITTED", False)
        model = _tiny_model()
        registry = get_registry()
        before = dict(registry.values()).get("backend.fallbacks", 0)
        assert GPT2Inference(model, backend="compiled").backend_name == "numpy"
        assert GPT2Inference(model, backend="compiled").backend_name == "numpy"
        # counter counts every fallback; stderr warns only once
        assert dict(registry.values()).get("backend.fallbacks", 0) == before + 2
        assert capsys.readouterr().err.count("falling back to numpy") == 1

    def test_explicit_numpy_backend_never_compiles(self, monkeypatch):
        monkeypatch.setenv(bk.BACKEND_ENV, "compiled")  # env says compiled...
        inf = GPT2Inference(_tiny_model(), backend="numpy")  # ...argument wins
        assert inf.backend_name == "numpy"
        assert inf._compiled is None
