"""Checkpoint save/load tests, including damage and atomicity cases."""

import numpy as np
import pytest

from repro.nn import (
    CheckpointError,
    GPT2Config,
    GPT2Model,
    load_checkpoint,
    read_checkpoint_meta,
    save_checkpoint,
)
from repro.runtime import corrupt_file


def small_model(seed=0):
    return GPT2Model(
        GPT2Config(vocab_size=15, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0),
        seed=seed,
    )


class TestCheckpoint:
    def test_roundtrip_restores_weights(self, tmp_path):
        m1 = small_model(seed=1)
        m2 = small_model(seed=2)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        load_checkpoint(m2, path)
        for (_, p1), (_, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert np.allclose(p1.data, p2.data)

    def test_metadata_roundtrip(self, tmp_path):
        m = small_model()
        meta = {"epochs": 5, "pattern_probs": {"L6N2": 0.5}, "site": "rockyou"}
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m, path, meta=meta)
        loaded = load_checkpoint(small_model(), path)
        assert loaded == meta
        assert read_checkpoint_meta(path) == meta

    def test_empty_metadata_default(self, tmp_path):
        m = small_model()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m, path)
        assert load_checkpoint(small_model(), path) == {}

    def test_outputs_identical_after_load(self, tmp_path):
        m1, m2 = small_model(seed=1), small_model(seed=2)
        m1.eval()
        m2.eval()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        load_checkpoint(m2, path)
        ids = np.random.default_rng(0).integers(0, 15, (2, 6))
        from repro.autograd import no_grad

        with no_grad():
            assert np.allclose(m1.forward(ids).data, m2.forward(ids).data, atol=1e-6)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "ckpt.npz"
        save_checkpoint(small_model(), path)
        assert path.exists()

    def test_incompatible_model_raises(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(small_model(), path)
        other = GPT2Model(
            GPT2Config(vocab_size=15, block_size=8, dim=16, n_layers=2, n_heads=2, dropout=0.0)
        )
        with pytest.raises(CheckpointError, match="does not match"):
            load_checkpoint(other, path)


class TestCheckpointDamage:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(small_model(), tmp_path / "nope.npz")

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(small_model(), path)
        corrupt_file(path, keep_fraction=0.5)
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(small_model(), path)

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"not an npz archive at all")
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(small_model(), path)

    def test_failed_save_leaves_previous_checkpoint(self, tmp_path, monkeypatch):
        path = tmp_path / "ckpt.npz"
        m = small_model(seed=1)
        save_checkpoint(m, path, meta={"epoch": 1})
        before = path.read_bytes()

        import repro.nn.serialization as ser

        def boom(*args, **kwargs):
            raise OSError("disk full (injected)")

        monkeypatch.setattr(ser.np, "savez_compressed", boom)
        with pytest.raises(OSError):
            save_checkpoint(m, path, meta={"epoch": 2})
        assert path.read_bytes() == before  # old checkpoint intact
        assert not list(tmp_path.glob("*.tmp"))  # temp file cleaned up
