"""Checkpoint save/load tests."""

import numpy as np
import pytest

from repro.nn import GPT2Config, GPT2Model, load_checkpoint, save_checkpoint


def small_model(seed=0):
    return GPT2Model(
        GPT2Config(vocab_size=15, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0),
        seed=seed,
    )


class TestCheckpoint:
    def test_roundtrip_restores_weights(self, tmp_path):
        m1 = small_model(seed=1)
        m2 = small_model(seed=2)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        load_checkpoint(m2, path)
        for (_, p1), (_, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert np.allclose(p1.data, p2.data)

    def test_metadata_roundtrip(self, tmp_path):
        m = small_model()
        meta = {"epochs": 5, "pattern_probs": {"L6N2": 0.5}, "site": "rockyou"}
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m, path, meta=meta)
        loaded = load_checkpoint(small_model(), path)
        assert loaded == meta

    def test_empty_metadata_default(self, tmp_path):
        m = small_model()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m, path)
        assert load_checkpoint(small_model(), path) == {}

    def test_outputs_identical_after_load(self, tmp_path):
        m1, m2 = small_model(seed=1), small_model(seed=2)
        m1.eval()
        m2.eval()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        load_checkpoint(m2, path)
        ids = np.random.default_rng(0).integers(0, 15, (2, 6))
        from repro.autograd import no_grad

        with no_grad():
            assert np.allclose(m1.forward(ids).data, m2.forward(ids).data, atol=1e-6)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "ckpt.npz"
        save_checkpoint(small_model(), path)
        assert path.exists()

    def test_incompatible_model_raises(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(small_model(), path)
        other = GPT2Model(
            GPT2Config(vocab_size=15, block_size=8, dim=16, n_layers=2, n_heads=2, dropout=0.0)
        )
        with pytest.raises(KeyError):
            load_checkpoint(other, path)
