"""Gradient and semantics tests for the core Tensor ops."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    concat,
    is_grad_enabled,
    no_grad,
    ones,
    stack,
    zeros,
)


def t(shape, seed=0, requires_grad=True):
    data = np.random.default_rng(seed).normal(size=shape).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)


class TestArithmetic:
    def test_add_gradients(self):
        check_gradients(lambda a, b: a + b, [t((3, 4)), t((3, 4), seed=1)])

    def test_add_broadcast_gradients(self):
        check_gradients(lambda a, b: a + b, [t((3, 4)), t((1, 4), seed=1)])

    def test_add_scalar_broadcast(self):
        check_gradients(lambda a, b: a + b, [t((2, 3, 4)), t((4,), seed=1)])

    def test_mul_gradients(self):
        check_gradients(lambda a, b: a * b, [t((3, 4)), t((3, 4), seed=1)])

    def test_div_gradients(self):
        a = t((3, 4))
        b = Tensor(np.random.default_rng(1).uniform(0.5, 2.0, (3, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda a, b: a / b, [a, b])

    def test_sub_and_neg(self):
        check_gradients(lambda a, b: a - b, [t((3, 4)), t((3, 4), seed=1)])
        check_gradients(lambda a: -a, [t((3, 4))])

    def test_pow_gradients(self):
        a = Tensor(np.random.default_rng(0).uniform(0.5, 2.0, (3, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda a: a**3.0, [a])

    def test_rsub_rdiv_radd_rmul(self):
        a = Tensor(np.array([2.0, 4.0], dtype=np.float32), requires_grad=True)
        assert np.allclose((1.0 - a).data, [-1.0, -3.0])
        assert np.allclose((8.0 / a).data, [4.0, 2.0])
        assert np.allclose((1.0 + a).data, [3.0, 5.0])
        assert np.allclose((3.0 * a).data, [6.0, 12.0])

    def test_matmul_gradients(self):
        check_gradients(lambda a, b: a @ b, [t((3, 4)), t((4, 5), seed=1)])

    def test_batched_matmul_gradients(self):
        check_gradients(lambda a, b: a @ b, [t((2, 3, 4)), t((2, 4, 3), seed=1)])

    def test_matmul_broadcast_gradients(self):
        # (B, S, D) @ (D, V): the classic projection shape.
        check_gradients(lambda a, b: a @ b, [t((2, 3, 4)), t((4, 5), seed=1)])


class TestElementwise:
    @pytest.mark.parametrize(
        "fn",
        [
            Tensor.exp,
            Tensor.tanh,
            Tensor.sigmoid,
            Tensor.relu,
            Tensor.abs,
            lambda x: x.leaky_relu(0.2),
        ],
    )
    def test_unary_gradients(self, fn):
        x = Tensor(
            np.random.default_rng(0).uniform(-2, 2, (3, 4)).astype(np.float32) + 0.13,
            requires_grad=True,
        )
        check_gradients(fn, [x])

    def test_log_sqrt_gradients(self):
        x = Tensor(np.random.default_rng(0).uniform(0.5, 3.0, (3, 4)).astype(np.float32), requires_grad=True)
        check_gradients(Tensor.log, [x])
        check_gradients(Tensor.sqrt, [x])


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum(), [t((3, 4))])

    def test_sum_axis_keepdims(self):
        check_gradients(lambda a: a.sum(axis=1, keepdims=True), [t((3, 4))])
        check_gradients(lambda a: a.sum(axis=0), [t((3, 4))])

    def test_mean_matches_manual(self):
        a = t((3, 4))
        assert np.allclose(a.mean(axis=1).data, a.data.mean(axis=1))
        check_gradients(lambda a: a.mean(axis=1), [t((3, 4))])

    def test_var(self):
        a = t((3, 4))
        assert np.allclose(a.var(axis=1).data, a.data.var(axis=1), atol=1e-6)

    def test_max_gradients(self):
        # Distinct values so the argmax is unique and the gradient smooth.
        data = np.arange(12, dtype=np.float32).reshape(3, 4) * 0.37
        x = Tensor(data.copy(), requires_grad=True)
        check_gradients(lambda a: a.max(axis=1), [x])
        check_gradients(lambda a: a.max(), [x])


class TestShapes:
    def test_reshape_gradients(self):
        check_gradients(lambda a: a.reshape(4, 3).tanh(), [t((3, 4))])

    def test_transpose_gradients(self):
        check_gradients(lambda a: a.transpose(1, 0, 2).tanh(), [t((2, 3, 4))])

    def test_swapaxes_gradients(self):
        check_gradients(lambda a: a.swapaxes(-1, -2).tanh(), [t((2, 3, 4))])

    def test_getitem_gradients(self):
        check_gradients(lambda a: a[1:, :2].tanh(), [t((3, 4))])

    def test_take_rows_gradients(self):
        idx = np.array([[0, 2], [1, 1]])
        check_gradients(lambda a: a.take_rows(idx).tanh(), [t((4, 3))])

    def test_take_rows_repeated_index_accumulates(self):
        emb = Tensor(np.eye(3, dtype=np.float32), requires_grad=True)
        out = emb.take_rows(np.array([1, 1, 1])).sum()
        out.backward()
        assert np.allclose(emb.grad[1], [3.0, 3.0, 3.0])
        assert np.allclose(emb.grad[0], 0.0)

    def test_masked_fill(self):
        mask = np.array([[True, False], [False, True]])
        x = t((2, 2))
        out = x.masked_fill(mask, -5.0)
        assert np.allclose(out.data[mask], -5.0)
        check_gradients(lambda a: a.masked_fill(mask, -5.0).tanh(), [t((2, 2))])

    def test_pad_last(self):
        x = t((2, 3))
        out = x.pad_last(1, 2)
        assert out.shape == (2, 6)
        check_gradients(lambda a: a.pad_last(1, 2).tanh(), [t((2, 3))])

    def test_concat_gradients(self):
        check_gradients(
            lambda a, b: concat([a, b], axis=1).tanh(), [t((2, 3)), t((2, 2), seed=1)]
        )

    def test_stack_gradients(self):
        check_gradients(lambda a, b: stack([a, b]).tanh(), [t((2, 3)), t((2, 3), seed=1)])


class TestGraphMechanics:
    def test_grad_accumulates_over_multiple_uses(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = x * 3.0 + x * 4.0  # dy/dx = 7
        y.backward()
        assert np.allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5], dtype=np.float32), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        out = a * b  # 6 x^2 -> d/dx = 12 x = 18
        out.backward()
        assert np.allclose(x.grad, [18.0])

    def test_no_grad_disables_graph(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert is_grad_enabled()
        assert not y.requires_grad
        assert y._parents == ()

    def test_detach(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = (x * 2.0).detach() * x
        y.sum().backward()
        assert np.allclose(x.grad, [2.0, 2.0, 2.0])

    def test_constant_inputs_get_no_grad(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        c = Tensor(np.ones(3, dtype=np.float32))
        (x * c).sum().backward()
        assert c.grad is None

    def test_item_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3, dtype=np.float32)).item()
        assert Tensor(np.array([2.5], dtype=np.float32)).item() == pytest.approx(2.5)

    def test_zeros_ones_helpers(self):
        assert zeros((2, 3)).data.sum() == 0.0
        assert ones((2, 3)).data.sum() == 6.0

    def test_float64_input_coerced_to_float32(self):
        x = Tensor(np.ones(3, dtype=np.float64))
        assert x.dtype == np.float32

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(1, dtype=np.float32), requires_grad=True))


class TestGraphMemory:
    def test_graphs_freed_by_refcount_alone(self):
        """Backward graphs must be reference-cycle-free: with the cyclic
        collector disabled, training steps must not accumulate tensors
        (regression test for a leak that grew unbounded in long runs)."""
        import gc

        from repro.nn import SGD, GPT2Config, GPT2Model

        model = GPT2Model(
            GPT2Config(vocab_size=20, block_size=8, dim=16, n_layers=1, n_heads=2, dropout=0.0)
        )
        opt = SGD(model.parameters(), lr=0.0)
        ids = np.random.default_rng(0).integers(0, 19, (8, 8))

        def live_tensors():
            return sum(isinstance(o, Tensor) for o in gc.get_objects())

        gc.disable()
        try:
            gc.collect()
            loss = model.loss(ids, pad_token_id=19)
            loss.backward()
            opt.step()
            del loss
            baseline = live_tensors()
            for _ in range(5):
                opt.zero_grad()
                loss = model.loss(ids, pad_token_id=19)
                loss.backward()
                opt.step()
                del loss
            growth = live_tensors() - baseline
        finally:
            gc.enable()
            gc.collect()
        assert growth <= 2, f"{growth} tensors leaked across 5 steps"
