"""Tests for the fused functional ops (softmax, layer norm, CE, ...)."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    cross_entropy,
    dropout,
    gelu,
    layer_norm,
    log_softmax,
    softmax,
)


def t(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape).astype(np.float32), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(t((4, 7))).data
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-6)
        assert (out >= 0).all()

    def test_gradients(self):
        check_gradients(lambda x: softmax(x).tanh(), [t((3, 5))])

    def test_invariant_to_shift(self):
        x = t((2, 5))
        shifted = Tensor(x.data + 100.0)
        assert np.allclose(softmax(x).data, softmax(shifted).data, atol=1e-5)

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([[1000.0, 0.0, -1000.0]], dtype=np.float32))
        out = softmax(x).data
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    def test_axis_argument(self):
        x = t((3, 4))
        assert np.allclose(softmax(x, axis=0).data.sum(axis=0), 1.0, atol=1e-6)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = t((3, 5))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data), atol=1e-5)

    def test_gradients(self):
        check_gradients(lambda x: log_softmax(x).exp(), [t((3, 5))])


class TestGelu:
    def test_gradients(self):
        check_gradients(gelu, [t((4, 6))])

    def test_known_values(self):
        x = Tensor(np.array([0.0, 10.0, -10.0], dtype=np.float32))
        out = gelu(x).data
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[1] == pytest.approx(10.0, rel=1e-4)
        assert out[2] == pytest.approx(0.0, abs=1e-3)


class TestLayerNorm:
    def test_output_normalised(self):
        x = t((4, 8))
        w = Tensor(np.ones(8, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(8, dtype=np.float32), requires_grad=True)
        out = layer_norm(x, w, b).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradients_all_inputs(self):
        w = Tensor(np.random.default_rng(1).uniform(0.5, 1.5, 6).astype(np.float32), requires_grad=True)
        b = Tensor(np.random.default_rng(2).normal(size=6).astype(np.float32), requires_grad=True)
        check_gradients(lambda x, w, b: layer_norm(x, w, b), [t((3, 6)), w, b])

    def test_3d_input(self):
        x = t((2, 3, 6))
        w = Tensor(np.ones(6, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(6, dtype=np.float32), requires_grad=True)
        check_gradients(lambda x, w, b: layer_norm(x, w, b), [x, w, b])


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = t((4, 5))
        targets = np.array([0, 1, 2, 3])
        loss = cross_entropy(logits, targets).item()
        probs = softmax(logits).data
        manual = -np.log(probs[np.arange(4), targets]).mean()
        assert loss == pytest.approx(manual, rel=1e-5)

    def test_gradients(self):
        targets = np.array([0, 4, 2])
        check_gradients(lambda x: cross_entropy(x, targets), [t((3, 5))])

    def test_ignore_index_excludes_positions(self):
        logits = t((4, 5))
        full = cross_entropy(logits, np.array([0, 1, 2, 3])).item()
        # Position 3 ignored: loss computed over first three rows only.
        partial = cross_entropy(logits, np.array([0, 1, 2, -1]), ignore_index=-1).item()
        expected = cross_entropy(Tensor(logits.data[:3]), np.array([0, 1, 2])).item()
        assert partial == pytest.approx(expected, rel=1e-5)
        assert partial != pytest.approx(full)

    def test_ignore_index_gradients(self):
        targets = np.array([0, 1, -9, 2])
        check_gradients(lambda x: cross_entropy(x, targets, ignore_index=-9), [t((4, 5))])

    def test_3d_logits(self):
        targets = np.array([[0, 1], [2, 3]])
        check_gradients(lambda x: cross_entropy(x, targets), [t((2, 2, 5))])

    def test_all_ignored_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(t((2, 5)), np.array([-1, -1]), ignore_index=-1)

    def test_uniform_logits_give_log_vocab(self):
        logits = Tensor(np.zeros((8, 11), dtype=np.float32))
        loss = cross_entropy(logits, np.zeros(8, dtype=np.int64)).item()
        assert loss == pytest.approx(np.log(11), rel=1e-5)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = t((100,))
        out = dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_zero_rate_is_identity(self, rng):
        x = t((100,))
        assert dropout(x, 0.0, rng, training=True) is x

    def test_scaling_preserves_expectation(self, rng):
        x = Tensor(np.ones(20_000, dtype=np.float32), requires_grad=True)
        out = dropout(x, 0.25, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)
        kept = out.data != 0
        assert np.allclose(out.data[kept], 1.0 / 0.75)

    def test_gradients_follow_mask(self, rng):
        x = Tensor(np.ones(1000, dtype=np.float32), requires_grad=True)
        out = dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        assert np.allclose(x.grad, (out.data != 0) * 2.0)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            dropout(t((3,)), 1.0, rng, training=True)
