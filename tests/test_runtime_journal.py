"""Run-journal format, torn-tail recovery, and resume identity checks."""

import json

import pytest

from repro.runtime import JournalError, RunJournal, file_digest

HEADER = {"kind": "dcgen", "seed": 7, "total": 100, "plan": "abc123"}


def make_journal(path, n_records=3):
    journal = RunJournal.create(path, HEADER)
    for i in range(n_records):
        journal.record("leaf_batch", i, {"guesses": [f"pw{i}"], "model_calls": i})
    journal.close()
    return path


class TestRoundtrip:
    def test_create_record_reopen(self, tmp_path):
        path = make_journal(tmp_path / "run.jsonl")
        journal = RunJournal.open(path)
        assert journal.header == HEADER
        assert journal.recovered_tail == 0
        done = journal.completed("leaf_batch")
        assert set(done) == {0, 1, 2}
        assert done[1] == {"guesses": ["pw1"], "model_calls": 1}
        journal.close()

    def test_kinds_are_separate(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run.jsonl", HEADER)
        journal.record("leaf_batch", 0, {"a": 1})
        journal.record("epoch", 0, {"b": 2})
        assert journal.completed("leaf_batch") == {0: {"a": 1}}
        assert journal.completed("epoch") == {0: {"b": 2}}
        journal.close()

    def test_create_truncates_previous_run(self, tmp_path):
        path = make_journal(tmp_path / "run.jsonl")
        journal = RunJournal.create(path, HEADER)
        assert journal.completed("leaf_batch") == {}
        journal.close()

    def test_remove_deletes_file(self, tmp_path):
        path = make_journal(tmp_path / "run.jsonl")
        journal = RunJournal.open(path)
        journal.remove()
        assert not path.exists()


class TestTornTail:
    def test_partial_last_line_is_dropped(self, tmp_path):
        path = make_journal(tmp_path / "run.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "leaf_batch", "task_id": 3, "payl')  # torn append
        journal = RunJournal.open(path)
        assert set(journal.completed("leaf_batch")) == {0, 1, 2}
        assert journal.recovered_tail == 1
        journal.close()

    def test_digest_mismatch_stops_reading(self, tmp_path):
        path = make_journal(tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        tampered = json.loads(lines[2])
        tampered["payload"]["guesses"] = ["evil"]  # digest no longer matches
        lines[2] = json.dumps(tampered)
        path.write_text("\n".join(lines) + "\n")
        journal = RunJournal.open(path)
        # Record 0 (line 1) is still trusted; the tampered line and
        # everything after it are recomputed.
        assert set(journal.completed("leaf_batch")) == {0}
        assert journal.recovered_tail == 2
        journal.close()

    def test_multi_record_tear_drops_everything_after_first_bad_line(self, tmp_path):
        """Several corrupted trailing lines: recovery keeps only the
        prefix before the first bad record, even when later lines are
        individually valid."""
        path = make_journal(tmp_path / "run.jsonl", n_records=6)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:-8]  # tear record 1 (line 3)
        lines[4] = "not json at all"  # and record 3
        path.write_text("\n".join(lines) + "\n")
        journal = RunJournal.open(path)
        assert set(journal.completed("leaf_batch")) == {0}
        assert journal.recovered_tail == 5
        journal.close()

    def test_recovered_journal_accepts_new_records(self, tmp_path):
        path = make_journal(tmp_path / "run.jsonl", n_records=3)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        journal = RunJournal.open(path)
        journal.record("leaf_batch", 9, {"guesses": ["new"], "model_calls": 0})
        journal.close()
        reopened = RunJournal.open(path)
        assert set(reopened.completed("leaf_batch")) == {0, 1, 2, 9}
        reopened.close()

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"not": "a header"}\n')
        with pytest.raises(JournalError):
            RunJournal.open(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("")
        with pytest.raises(JournalError, match="no readable header"):
            RunJournal.open(path)


class TestAttach:
    def test_resume_reuses_matching_journal(self, tmp_path):
        path = make_journal(tmp_path / "run.jsonl")
        journal = RunJournal.attach(path, HEADER, resume=True)
        assert set(journal.completed("leaf_batch")) == {0, 1, 2}
        journal.close()

    def test_resume_header_mismatch_raises(self, tmp_path):
        path = make_journal(tmp_path / "run.jsonl")
        other = dict(HEADER, seed=8)
        with pytest.raises(JournalError, match="belongs to a different run"):
            RunJournal.attach(path, other, resume=True)

    def test_header_mismatch_message_names_the_fields(self, tmp_path):
        """The error pinpoints which identity fields differ and how."""
        path = make_journal(tmp_path / "run.jsonl")
        other = dict(HEADER, seed=8, plan="zzz999")
        with pytest.raises(JournalError) as info:
            RunJournal.attach(path, other, resume=True)
        message = str(info.value)
        assert "mismatched header fields" in message
        assert "seed: journal=7 != run=8" in message
        assert "plan: journal='abc123' != run='zzz999'" in message
        assert "total" not in message  # matching fields are not listed

    def test_resume_without_file_starts_fresh(self, tmp_path):
        journal = RunJournal.attach(tmp_path / "new.jsonl", HEADER, resume=True)
        assert journal.completed("leaf_batch") == {}
        journal.close()

    def test_no_resume_truncates(self, tmp_path):
        path = make_journal(tmp_path / "run.jsonl")
        journal = RunJournal.attach(path, HEADER, resume=False)
        assert journal.completed("leaf_batch") == {}
        journal.close()


class TestFileDigest:
    def test_digest_changes_with_content(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(b"one")
        b.write_bytes(b"two")
        assert file_digest(a) != file_digest(b)
        b.write_bytes(b"one")
        assert file_digest(a) == file_digest(b)
