"""White-box tests of the synthetic leak generator's templates."""

import numpy as np
import pytest

from repro.datasets.synthetic import SITES, LeakGenerator
from repro.tokenizer import extract_pattern, is_visible_ascii


@pytest.fixture(scope="module")
def gen():
    return LeakGenerator(SITES["rockyou"], seed=5)


class TestTemplates:
    def test_word_digits_shape(self, gen):
        for _ in range(20):
            pw = gen._word_digits()
            assert pw[-1].isdigit()
            assert pw[0].isalpha()

    def test_digits_only_is_digits(self, gen):
        for _ in range(20):
            pw = gen._digits_only()
            assert pw.isdigit()
            assert 4 <= len(pw) <= 10

    def test_leet_word_changes_classes(self, gen):
        leeted = [gen._leet_word() for _ in range(50)]
        # At least some must contain a substitution character.
        assert any(any(c in "@310$7" for c in pw) for pw in leeted)

    def test_word_special_digits_structure(self, gen):
        pw = gen._word_special_digits()
        pattern = extract_pattern(pw)
        assert pattern.num_segments >= 3

    def test_pollution_produces_uncleanable(self, gen):
        from repro.datasets import is_clean

        polluted = [gen._polluted() for _ in range(100)]
        assert sum(not is_clean(p) for p in polluted) > 80

    def test_generate_is_mostly_cleanable(self, gen):
        from repro.datasets import is_clean

        leak = gen.generate(500)
        clean_fraction = sum(is_clean(pw) for pw in leak) / len(leak)
        assert clean_fraction > 0.8


class TestSiteProfiles:
    def test_profiles_have_normalisable_weights(self):
        for profile in SITES.values():
            total = sum(profile.template_weights.values())
            assert total > 0
            assert 0 <= profile.pollution < 0.5

    def test_sites_differ_in_output(self):
        a = LeakGenerator(SITES["rockyou"], seed=1).generate(300)
        b = LeakGenerator(SITES["linkedin"], seed=1).generate(300)
        assert a != b

    def test_same_profile_same_seed_reproduces(self):
        a = LeakGenerator(SITES["phpbb"], seed=2).generate(200)
        b = LeakGenerator(SITES["phpbb"], seed=2).generate(200)
        assert a == b
