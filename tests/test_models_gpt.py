"""Integration tests for PagPassGPT and PassGPT (tiny trained models)."""

import numpy as np
import pytest

from repro.models import PagPassGPT, PagPassGPTDC, PassGPT, available_models, create_model
from repro.generation import DCGenConfig
from repro.tokenizer import Pattern, extract_pattern


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) >= {
            "pagpassgpt", "passgpt", "passgan", "vaepass", "passflow", "pcfg", "markov",
        }

    def test_create_by_name(self):
        assert create_model("PCFG").name == "PCFG"
        assert create_model("PagPassGPT").name == "PagPassGPT"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            create_model("gpt5")


class TestPagPassGPTGuided:
    def test_conformity(self, trained_pagpassgpt):
        pattern = Pattern.parse("L5N2")
        out = trained_pagpassgpt.generate_with_pattern(pattern, 64, seed=0)
        assert len(out) == 64
        assert all(pattern.matches(pw) for pw in out)

    def test_multi_segment_conformity(self, trained_pagpassgpt):
        pattern = Pattern.parse("L3S1N2S1")
        out = trained_pagpassgpt.generate_with_pattern(pattern, 32, seed=1)
        assert all(pattern.matches(pw) for pw in out)

    def test_deterministic_per_seed(self, trained_pagpassgpt):
        p = Pattern.parse("L4N2")
        assert trained_pagpassgpt.generate_with_pattern(p, 16, seed=5) == \
            trained_pagpassgpt.generate_with_pattern(p, 16, seed=5)

    def test_zero_n(self, trained_pagpassgpt):
        assert trained_pagpassgpt.generate_with_pattern(Pattern.parse("L4"), 0) == []

    def test_requires_fit(self):
        model = PagPassGPT()
        with pytest.raises(RuntimeError):
            model.generate_with_pattern(Pattern.parse("L4"), 4)


class TestPagPassGPTFree:
    def test_outputs_valid_cleanable_passwords(self, trained_pagpassgpt):
        out = trained_pagpassgpt.generate(128, seed=0)
        assert len(out) == 128
        for pw in out:
            assert len(pw) <= 12
            # Every free generation conforms to its own generated pattern,
            # so it is a visible-ASCII string.
            if pw:
                extract_pattern(pw)  # must not raise

    def test_pattern_probs_recorded(self, trained_pagpassgpt):
        assert trained_pagpassgpt.pattern_probs
        assert sum(trained_pagpassgpt.pattern_probs.values()) == pytest.approx(1.0)

    def test_history_recorded(self, trained_pagpassgpt):
        assert trained_pagpassgpt.history is not None
        assert len(trained_pagpassgpt.history.train_loss) == 2


class TestPassGPT:
    def test_free_generation(self, trained_passgpt):
        out = trained_passgpt.generate(128, seed=0)
        assert len(out) == 128
        # A row that never samples <EOS> is cut at the block boundary.
        assert all(len(pw) <= trained_passgpt.model_config.block_size - 1 for pw in out)

    def test_guided_conformity(self, trained_passgpt):
        pattern = Pattern.parse("L5S1N2")
        out = trained_passgpt.generate_with_pattern(pattern, 32, seed=0)
        assert all(pattern.matches(pw) for pw in out)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PassGPT().generate(4)


class TestPagPassGPTDC:
    def test_wrapper_delegates(self, trained_pagpassgpt, rockyou_tiny):
        dc = PagPassGPTDC(trained_pagpassgpt, DCGenConfig(threshold=32))
        dc.fit(rockyou_tiny["train_corpus"])  # no-op: base already fitted
        out = dc.generate(500, seed=0)
        assert len(out) > 300
        patterns = {extract_pattern(pw).string for pw in out if pw}
        assert patterns <= set(trained_pagpassgpt.pattern_probs)

    def test_lower_repeat_than_free(self, trained_pagpassgpt):
        dc = PagPassGPTDC(trained_pagpassgpt, DCGenConfig(threshold=32))
        free = trained_pagpassgpt.generate(1500, seed=0)
        divided = dc.generate(1500, seed=0)

        def rep(g):
            return 1 - len(set(g)) / len(g)

        assert rep(divided) <= rep(free) + 0.02

    def test_guided_delegates_to_base(self, trained_pagpassgpt):
        dc = PagPassGPTDC(trained_pagpassgpt)
        p = Pattern.parse("L4N2")
        assert dc.generate_with_pattern(p, 8, seed=1) == \
            trained_pagpassgpt.generate_with_pattern(p, 8, seed=1)


class TestCheckpointIntegration:
    def test_save_load_preserves_generation(self, trained_pagpassgpt, tmp_path):
        from repro.nn import GPT2Config, load_checkpoint, save_checkpoint

        path = tmp_path / "pag.npz"
        save_checkpoint(
            trained_pagpassgpt.model, path,
            meta={"pattern_probs": trained_pagpassgpt.pattern_probs},
        )
        clone = PagPassGPT(
            model_config=trained_pagpassgpt.model_config,
            seed=123,  # different init, will be overwritten
        )
        meta = load_checkpoint(clone.model, path)
        clone.pattern_probs = meta["pattern_probs"]
        clone._fitted = True
        clone.model.eval()
        p = Pattern.parse("L4N2")
        assert clone.generate_with_pattern(p, 8, seed=7) == \
            trained_pagpassgpt.generate_with_pattern(p, 8, seed=7)


class TestSaveLoadAPI:
    def test_pagpassgpt_save_load(self, trained_pagpassgpt, tmp_path):
        path = tmp_path / "pag_api.npz"
        trained_pagpassgpt.save(path)
        clone = PagPassGPT.load(path)
        assert clone.is_fitted
        assert clone.pattern_probs == trained_pagpassgpt.pattern_probs
        p = Pattern.parse("L4N2")
        assert clone.generate_with_pattern(p, 6, seed=3) == \
            trained_pagpassgpt.generate_with_pattern(p, 6, seed=3)

    def test_passgpt_save_load(self, trained_passgpt, tmp_path):
        path = tmp_path / "pass_api.npz"
        trained_passgpt.save(path)
        clone = PassGPT.load(path)
        assert clone.generate(6, seed=3) == trained_passgpt.generate(6, seed=3)

    def test_kind_mismatch_rejected(self, trained_passgpt, tmp_path):
        path = tmp_path / "pass_api2.npz"
        trained_passgpt.save(path)
        with pytest.raises(ValueError):
            PagPassGPT.load(path)
