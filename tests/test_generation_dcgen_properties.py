"""D&C-GEN structural properties: the non-overlap guarantee.

Reads the generator's recorded leaf-task plan and verifies the paper's
§III-C2 analysis: subtask prefixes partition the search space (no leaf's
completion set overlaps another's), so duplicates can only arise within
a single leaf.
"""

import pytest

from repro.generation import DCGenConfig, DCGenerator
from repro.models import PagPassGPT
from repro.nn import GPT2Config


def leaves_of(gen: DCGenerator) -> list[tuple[str, tuple[int, ...], float]]:
    """(pattern, prefix ids, budget) per leaf of the last run's plan."""
    return [
        (leaf.pattern, tuple(leaf.prefix.tolist()), leaf.count)
        for leaf in gen.leaf_tasks
    ]


@pytest.fixture(scope="module")
def model():
    m = PagPassGPT(
        model_config=GPT2Config(
            vocab_size=135, block_size=32, dim=32, n_layers=1, n_heads=2, dropout=0.0
        ),
        seed=1,
    )
    m._fitted = True
    m.pattern_probs = {"L3N2": 0.6, "N5": 0.4}
    return m


class TestNonOverlap:
    def test_leaf_prefixes_partition_search_space(self, model):
        gen = DCGenerator(model, DCGenConfig(threshold=20))
        gen.generate(3000, seed=0)
        leaves = leaves_of(gen)
        assert leaves
        by_pattern: dict[str, list[tuple[int, ...]]] = {}
        for pattern_str, prefix, _ in leaves:
            by_pattern.setdefault(pattern_str, []).append(prefix)
        for pattern_str, prefixes in by_pattern.items():
            # No duplicate leaves...
            assert len(prefixes) == len(set(prefixes))
            # ...and no leaf prefix extends another leaf prefix: their
            # completion sets would otherwise overlap.
            as_set = set(prefixes)
            for p in prefixes:
                for other in as_set:
                    if other is p or len(other) >= len(p):
                        continue
                    assert p[: len(other)] != other, (
                        f"leaf {p} lies inside leaf {other}"
                    )

    def test_leaf_budgets_do_not_exceed_threshold(self, model):
        gen = DCGenerator(model, DCGenConfig(threshold=20))
        gen.generate(3000, seed=0)
        for _, _, count in leaves_of(gen):
            assert count <= 20 + 1e-9

    def test_leaf_budgets_sum_to_total(self, model):
        gen = DCGenerator(model, DCGenConfig(threshold=20))
        gen.generate(3000, seed=0)
        total = sum(count for _, _, count in leaves_of(gen))
        # Mass redistribution keeps the spent budget within a few percent
        # of the request (losses only at search-space caps).
        assert total == pytest.approx(3000, rel=0.1)

    def test_plan_alone_matches_generate_plan(self, model):
        """plan() is the divide phase generate() itself runs."""
        gen = DCGenerator(model, DCGenConfig(threshold=20))
        planned = [
            (leaf.task_id, leaf.pattern, tuple(leaf.prefix.tolist()), leaf.rows)
            for leaf in gen.plan(3000)
        ]
        gen.generate(3000, seed=0)
        executed = [
            (leaf.task_id, leaf.pattern, tuple(leaf.prefix.tolist()), leaf.rows)
            for leaf in gen.leaf_tasks
        ]
        assert planned == executed

    def test_duplicates_only_within_leaves(self, model):
        """Cross-check the analysis: every duplicate guess must come from
        one leaf, i.e. distinct leaves of one pattern cannot emit the same
        password (their prefixes differ somewhere)."""
        gen = DCGenerator(model, DCGenConfig(threshold=10))
        out = gen.generate(2000, seed=0)
        prefix_len = {}  # pattern -> {password prefix chars -> leaf prefix}
        vocab = model.tokenizer.vocab
        for pattern_str, prefix, _ in leaves_of(gen):
            chars = "".join(
                vocab.token_of(i) for i in prefix if vocab.is_char(i)
            )
            prefix_len.setdefault(pattern_str, set()).add(chars)
        # Reconstruct each guess's leaf by longest matching stored prefix;
        # a well-formed partition means exactly one leaf matches maximally.
        from repro.tokenizer import extract_pattern

        for pw in set(out):
            if not pw:
                continue
            pattern_str = extract_pattern(pw).string
            matches = [
                c for c in prefix_len.get(pattern_str, ())
                if pw.startswith(c)
            ]
            assert matches, f"guess {pw!r} belongs to no recorded leaf"
