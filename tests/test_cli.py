"""End-to-end CLI tests (in-process via ``repro.cli.main``)."""

import json

import pytest

from repro.cli import (
    EXIT_CORRUPT,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_SIGNAL,
    main,
)
from repro.runtime import FAULT_ENV, InjectedFault, RunJournal, corrupt_file


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Run synth -> clean -> split once; return the file paths."""
    root = tmp_path_factory.mktemp("cli")
    leak = root / "leak.txt"
    cleaned = root / "cleaned.txt"
    assert main(["synth", "--site", "rockyou", "--entries", "3000",
                 "--out", str(leak)]) == 0
    assert main(["clean", "--input", str(leak), "--out", str(cleaned)]) == 0
    assert main(["split", "--input", str(cleaned), "--prefix", str(root / "data")]) == 0
    return root


class TestDataCommands:
    def test_synth_writes_entries(self, pipeline):
        assert len((pipeline / "leak.txt").read_text().splitlines()) == 3000

    def test_clean_deduplicates(self, pipeline):
        cleaned = (pipeline / "cleaned.txt").read_text().splitlines()
        assert len(cleaned) == len(set(cleaned))
        assert all(4 <= len(pw) <= 12 for pw in cleaned)

    def test_split_files_disjoint(self, pipeline):
        train = set((pipeline / "data.train.txt").read_text().splitlines())
        test = set((pipeline / "data.test.txt").read_text().splitlines())
        assert train and test
        assert not train & test

    def test_patterns_report(self, pipeline, capsys):
        assert main(["patterns", "--input", str(pipeline / "cleaned.txt"),
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "Pattern" in out and "Segments" in out


class TestModelCommands:
    @pytest.fixture(scope="class")
    def checkpoint(self, pipeline):
        ckpt = pipeline / "model.npz"
        assert main([
            "train", "--input", str(pipeline / "data.train.txt"),
            "--val", str(pipeline / "data.val.txt"),
            "--out", str(ckpt),
            "--dim", "32", "--layers", "1", "--heads", "2",
            "--epochs", "1", "--batch-size", "128",
        ]) == 0
        return ckpt

    def test_generate_free(self, pipeline, checkpoint):
        out = pipeline / "free.txt"
        assert main(["generate", "--checkpoint", str(checkpoint),
                     "-n", "200", "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) == 200

    def test_generate_guided_conforms(self, pipeline, checkpoint):
        out = pipeline / "guided.txt"
        assert main(["generate", "--checkpoint", str(checkpoint),
                     "-n", "50", "--pattern", "L5N2", "--out", str(out)]) == 0
        from repro.tokenizer import Pattern

        pattern = Pattern.parse("L5N2")
        guesses = out.read_text().splitlines()
        assert len(guesses) == 50
        assert all(pattern.matches(g) for g in guesses)

    def test_generate_dcgen(self, pipeline, checkpoint):
        out = pipeline / "dc.txt"
        assert main(["generate", "--checkpoint", str(checkpoint),
                     "-n", "500", "--dcgen", "--threshold", "32",
                     "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) > 300

    def test_generate_dcgen_workers_matches_serial(self, pipeline, checkpoint):
        serial = pipeline / "dc_serial.txt"
        parallel = pipeline / "dc_workers.txt"
        common = ["generate", "--checkpoint", str(checkpoint),
                  "-n", "400", "--dcgen", "--threshold", "32", "--seed", "3"]
        assert main(common + ["--out", str(serial)]) == 0
        assert main(common + ["--workers", "2", "--out", str(parallel)]) == 0
        assert parallel.read_text() == serial.read_text()

    def test_generate_with_sampler_flags(self, pipeline, checkpoint):
        out = pipeline / "cold.txt"
        assert main(["generate", "--checkpoint", str(checkpoint),
                     "-n", "50", "--temperature", "0.5", "--top-k", "10",
                     "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) == 50

    def test_evaluate(self, pipeline, checkpoint, capsys):
        guesses = pipeline / "free.txt"
        if not guesses.exists():
            main(["generate", "--checkpoint", str(checkpoint),
                  "-n", "200", "--out", str(guesses)])
        assert main(["evaluate", "--guesses", str(guesses),
                     "--test", str(pipeline / "data.test.txt"),
                     "--distances"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "pattern distance" in out

    def test_generate_ordered(self, pipeline, checkpoint):
        """--strategy ordered: deterministic, duplicate-free stream."""
        first = pipeline / "ordered1.txt"
        second = pipeline / "ordered2.txt"
        common = ["generate", "--checkpoint", str(checkpoint),
                  "-n", "40", "--strategy", "ordered",
                  "--beam-width", "16", "--max-frontier", "2000"]
        assert main(common + ["--out", str(first)]) == 0
        assert main(common + ["--out", str(second)]) == 0
        guesses = first.read_text().splitlines()
        assert len(guesses) == 40
        assert len(set(guesses)) == 40
        assert second.read_text() == first.read_text()  # no rng anywhere

    def test_generate_ordered_telemetry_check_passes(
        self, pipeline, checkpoint, tmp_path, capsys
    ):
        """Ordered campaigns satisfy summarize --check: the per-round
        spans account for every emitted guess against the plan."""
        tele = tmp_path / "tele"
        assert main(["generate", "--checkpoint", str(checkpoint),
                     "-n", "30", "--strategy", "ordered",
                     "--beam-width", "16", "--max-frontier", "2000",
                     "--telemetry", str(tele),
                     "--out", str(tmp_path / "ordered.txt")]) == 0
        assert main(["telemetry", "summarize", str(tele), "--check"]) == 0
        out = capsys.readouterr().out
        assert "ordered.round" in out

    def test_dcgen_rejects_passgpt(self, pipeline):
        ckpt = pipeline / "passgpt.npz"
        assert main([
            "train", "--input", str(pipeline / "data.train.txt"),
            "--model", "passgpt", "--out", str(ckpt),
            "--dim", "32", "--layers", "1", "--heads", "2",
            "--epochs", "1",
        ]) == 0
        assert main(["generate", "--checkpoint", str(ckpt), "-n", "10",
                     "--dcgen", "--out", str(pipeline / "x.txt")]) == 2


class TestFaultTolerance:
    """Crash -> --resume flows, driven in-process through the CLI."""

    def test_generate_crash_then_resume_matches_clean(
        self, pipeline, tmp_path, monkeypatch
    ):
        checkpoint = pipeline / "model.npz"
        if not checkpoint.exists():
            assert main([
                "train", "--input", str(pipeline / "data.train.txt"),
                "--out", str(checkpoint),
                "--dim", "32", "--layers", "1", "--heads", "2",
                "--epochs", "1", "--batch-size", "128",
            ]) == 0
        clean = tmp_path / "clean.txt"
        common = ["generate", "--checkpoint", str(checkpoint),
                  "-n", "1200", "--dcgen", "--threshold", "32", "--seed", "9"]
        assert main(common + ["--out", str(clean)]) == 0

        out = tmp_path / "resumed.txt"
        journal = tmp_path / "run.jsonl"
        monkeypatch.setenv(FAULT_ENV, "crash:leaf_batch:2")
        with pytest.raises(InjectedFault):
            main(common + ["--out", str(out), "--journal", str(journal)])
        assert journal.exists()
        assert not out.exists()  # output only lands on success (atomic)

        monkeypatch.delenv(FAULT_ENV)
        assert main(common + ["--out", str(out), "--journal", str(journal),
                              "--resume"]) == 0
        assert out.read_text() == clean.read_text()
        assert not journal.exists()  # spent journal is cleaned up

    def test_train_resume_matches_uninterrupted(self, pipeline, tmp_path, monkeypatch):
        common = ["train", "--input", str(pipeline / "data.train.txt"),
                  "--val", str(pipeline / "data.val.txt"),
                  "--dim", "32", "--layers", "1", "--heads", "2",
                  "--epochs", "3", "--batch-size", "128", "--seed", "4"]
        clean_ckpt = tmp_path / "clean.npz"
        assert main(common + ["--out", str(clean_ckpt)]) == 0

        ckpt = tmp_path / "resumed.npz"
        state = tmp_path / "resumed.npz.train-state.npz"
        monkeypatch.setenv(FAULT_ENV, "crash:epoch:2")
        with pytest.raises(InjectedFault):
            main(common + ["--out", str(ckpt)])
        assert state.exists()  # two epochs of durable progress

        monkeypatch.delenv(FAULT_ENV)
        assert main(common + ["--out", str(ckpt), "--resume"]) == 0
        assert not state.exists()  # state removed after the campaign ends

        # Resumed training converges to the identical checkpointed weights.
        import numpy as np

        from repro.models import PagPassGPT

        clean_model = PagPassGPT.load(clean_ckpt)
        resumed_model = PagPassGPT.load(ckpt)
        for (name, p1), (_, p2) in zip(
            clean_model.model.named_parameters(), resumed_model.model.named_parameters()
        ):
            assert np.array_equal(p1.data, p2.data), f"weight drift in {name}"

    def test_resume_without_state_starts_fresh(self, pipeline, tmp_path, capsys):
        ckpt = tmp_path / "fresh.npz"
        assert main(["train", "--input", str(pipeline / "data.train.txt"),
                     "--out", str(ckpt), "--dim", "32", "--layers", "1",
                     "--heads", "2", "--epochs", "1", "--resume"]) == 0
        assert "starting fresh" in capsys.readouterr().err
        assert ckpt.exists()

    def test_corrupt_checkpoint_exits_2(self, pipeline, tmp_path, capsys):
        checkpoint = tmp_path / "bad.npz"
        checkpoint.write_bytes(b"PK\x03\x04 definitely not a model")
        assert main(["generate", "--checkpoint", str(checkpoint),
                     "-n", "10", "--out", str(tmp_path / "x.txt")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_truncated_checkpoint_exits_2(self, pipeline, tmp_path, capsys):
        source = pipeline / "model.npz"
        if not source.exists():
            pytest.skip("train fixture not built")
        bad = tmp_path / "torn.npz"
        bad.write_bytes(source.read_bytes())
        corrupt_file(bad)
        assert main(["generate", "--checkpoint", str(bad),
                     "-n", "10", "--out", str(tmp_path / "x.txt")]) == 2
        assert "error:" in capsys.readouterr().err


class TestLifecycle:
    """Deadlines, quotas, and signals: documented exit codes + clean resume."""

    def _checkpoint(self, pipeline):
        ckpt = pipeline / "model.npz"
        if not ckpt.exists():
            assert main([
                "train", "--input", str(pipeline / "data.train.txt"),
                "--out", str(ckpt),
                "--dim", "32", "--layers", "1", "--heads", "2",
                "--epochs", "1", "--batch-size", "128",
            ]) == EXIT_OK
        return ckpt

    def test_exit_code_constants_are_distinct(self):
        codes = [EXIT_OK, 1, EXIT_CORRUPT, EXIT_INTERRUPTED, EXIT_SIGNAL]
        assert codes == [0, 1, 2, 3, 4]

    def test_max_guesses_exits_3_then_resume_matches(self, pipeline, tmp_path, capsys):
        ckpt = self._checkpoint(pipeline)
        clean = tmp_path / "clean.txt"
        common = ["generate", "--checkpoint", str(ckpt),
                  "-n", "1200", "--dcgen", "--threshold", "32", "--seed", "6"]
        assert main(common + ["--out", str(clean)]) == EXIT_OK

        out = tmp_path / "capped.txt"
        journal = tmp_path / "capped.journal.jsonl"
        assert main(common + ["--out", str(out), "--journal", str(journal),
                              "--max-guesses", "200"]) == EXIT_INTERRUPTED
        err = capsys.readouterr().err
        assert "stopped" in err and "--resume" in err
        assert journal.exists()  # progress is durable
        assert not out.exists()  # output only lands on success

        assert main(common + ["--out", str(out), "--journal", str(journal),
                              "--resume"]) == EXIT_OK
        assert out.read_text() == clean.read_text()
        assert not journal.exists()

    def test_immediate_deadline_exits_3(self, pipeline, tmp_path):
        ckpt = self._checkpoint(pipeline)
        out = tmp_path / "deadline.txt"
        assert main(["generate", "--checkpoint", str(ckpt),
                     "-n", "400", "--dcgen", "--threshold", "32",
                     "--deadline", "1e-9",
                     "--out", str(out)]) == EXIT_INTERRUPTED
        assert not out.exists()

    def test_signal_fault_exits_4_and_leaves_valid_journal(
        self, pipeline, tmp_path, monkeypatch
    ):
        ckpt = self._checkpoint(pipeline)
        clean = tmp_path / "clean.txt"
        common = ["generate", "--checkpoint", str(ckpt),
                  "-n", "1200", "--dcgen", "--threshold", "32", "--seed", "8"]
        assert main(common + ["--out", str(clean)]) == EXIT_OK

        out = tmp_path / "sig.txt"
        journal = tmp_path / "sig.journal.jsonl"
        monkeypatch.setenv(FAULT_ENV, "signal:leaf_batch:1")
        assert main(common + ["--out", str(out), "--journal", str(journal)]) \
            == EXIT_SIGNAL
        monkeypatch.delenv(FAULT_ENV)

        # The journal the SIGTERM'd campaign left is structurally valid...
        assert main(["verify", str(journal)]) == EXIT_OK
        recovered = RunJournal.open(journal)
        assert recovered.completed("leaf_batch")  # durable progress exists
        recovered.close()

        # ...and resume continues byte-identically.
        assert main(common + ["--out", str(out), "--journal", str(journal),
                              "--resume"]) == EXIT_OK
        assert out.read_text() == clean.read_text()

    def test_train_deadline_exits_3_and_resumes(self, pipeline, tmp_path):
        common = ["train", "--input", str(pipeline / "data.train.txt"),
                  "--dim", "32", "--layers", "1", "--heads", "2",
                  "--epochs", "2", "--batch-size", "128", "--seed", "4"]
        ckpt = tmp_path / "capped.npz"
        state = tmp_path / "capped.npz.train-state.npz"
        assert main(common + ["--out", str(ckpt),
                              "--deadline", "1e-9"]) == EXIT_INTERRUPTED
        assert state.exists()  # epoch 1 is durable
        assert not ckpt.exists()
        assert main(common + ["--out", str(ckpt), "--resume"]) == EXIT_OK
        assert ckpt.exists()
        assert not state.exists()


class TestVerifyCommand:
    def test_clean_journal_exits_0(self, tmp_path):
        journal = tmp_path / "run.journal.jsonl"
        j = RunJournal.create(journal, {"kind": "t", "seed": 1})
        j.record("leaf_batch", 0, {"guesses": ["a"]})
        j.close()
        assert main(["verify", str(journal)]) == EXIT_OK

    def test_torn_journal_exits_2_then_repair_recovers(self, tmp_path, capsys):
        journal = tmp_path / "run.journal.jsonl"
        j = RunJournal.create(journal, {"kind": "t", "seed": 1})
        j.record("leaf_batch", 0, {"guesses": ["a"]})
        j.close()
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        assert main(["verify", str(journal)]) == EXIT_CORRUPT
        assert "torn_tail" in capsys.readouterr().out
        assert main(["verify", str(journal), "--repair"]) == EXIT_OK
        assert "repaired" in capsys.readouterr().out
        assert main(["verify", str(journal)]) == EXIT_OK  # now clean

    def test_corrupt_checkpoint_is_flagged_never_accepted(self, tmp_path, capsys):
        bad = tmp_path / "model.npz"
        bad.write_bytes(b"PK\x03\x04 not a model")
        assert main(["verify", str(bad)]) == EXIT_CORRUPT
        assert "unreadable_checkpoint" in capsys.readouterr().out
        # --repair cannot fix a checkpoint; it stays an error.
        assert main(["verify", str(bad), "--repair"]) == EXIT_CORRUPT

    def test_json_findings_are_machine_readable(self, tmp_path, capsys):
        missing = tmp_path / "gone.journal.jsonl"
        assert main(["verify", str(missing), "--json"]) == EXIT_CORRUPT
        findings = json.loads(capsys.readouterr().out)
        assert findings[0]["kind"] == "missing_file"
        assert findings[0]["severity"] == "error"

    def test_generate_manifest_roundtrip(self, pipeline, tmp_path):
        ckpt = pipeline / "model.npz"
        if not ckpt.exists():
            pytest.skip("train fixture not built")
        out = tmp_path / "guesses.txt"
        assert main(["generate", "--checkpoint", str(ckpt), "-n", "50",
                     "--out", str(out), "--manifest"]) == EXIT_OK
        manifest = tmp_path / "guesses.txt.manifest.json"
        assert manifest.exists()
        assert main(["verify", str(manifest)]) == EXIT_OK
        out.write_text("tampered\n")
        assert main(["verify", str(manifest)]) == EXIT_CORRUPT


class TestTelemetrySummarize:
    """``telemetry summarize`` on directories with nothing to summarize."""

    def test_empty_directory_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "tele"
        empty.mkdir()
        assert main(["telemetry", "summarize", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "no telemetry streams" in err
        assert str(empty) in err

    def test_missing_directory_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "never-written"
        assert main(["telemetry", "summarize", str(missing)]) == 2
        assert "no telemetry streams" in capsys.readouterr().err

    def test_unrelated_files_exit_2(self, tmp_path, capsys):
        """Only telemetry*.jsonl streams count, not arbitrary files."""
        directory = tmp_path / "tele"
        directory.mkdir()
        (directory / "notes.txt").write_text("not a stream\n")
        assert main(["telemetry", "summarize", str(directory)]) == 2
        assert "no telemetry streams" in capsys.readouterr().err


class TestTelemetryExportAndProfile:
    """``telemetry export`` + ``--profile``: the CLI observability loop."""

    @pytest.fixture(scope="class")
    def traced_campaign(self, pipeline, tmp_path_factory):
        """A 2-worker traced+profiled dcgen campaign via the real CLI."""
        root = tmp_path_factory.mktemp("traced")
        ckpt = root / "model.npz"
        assert main([
            "train", "--input", str(pipeline / "data.train.txt"),
            "--out", str(ckpt),
            "--dim", "32", "--layers", "1", "--heads", "2",
            "--epochs", "1", "--batch-size", "128",
        ]) == 0
        tele = root / "tele"
        profile = root / "profile.folded"
        assert main([
            "generate", "--checkpoint", str(ckpt), "-n", "300",
            "--dcgen", "--threshold", "32", "--workers", "2",
            "--telemetry", str(tele), "--profile", str(profile),
            "--out", str(root / "guesses.txt"),
        ]) == 0
        return root, tele, profile

    def test_profile_file_is_valid_folded_stacks(self, traced_campaign):
        _, _, profile = traced_campaign
        text = profile.read_text()
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert stack.startswith("span:")

    def test_export_writes_connected_chrome_trace(self, traced_campaign, capsys):
        root, tele, _ = traced_campaign
        out = root / "trace.json"
        assert main(["telemetry", "export", str(tele),
                     "--out", str(out), "--check"]) == 0
        err = capsys.readouterr().err
        assert "single connected tree" in err
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        assert len(trace["otherData"]["pids"]) >= 2  # parent + workers

    def test_export_default_out_is_inside_dir(self, traced_campaign):
        _, tele, _ = traced_campaign
        assert main(["telemetry", "export", str(tele)]) == 0
        assert (tele / "trace.json").exists()

    def test_summarize_check_still_passes_with_percentiles(
        self, traced_campaign, capsys
    ):
        _, tele, _ = traced_campaign
        assert main(["telemetry", "summarize", str(tele), "--check"]) == 0
        out = capsys.readouterr().out
        assert "p95" in out

    def test_export_empty_directory_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "tele"
        empty.mkdir()
        assert main(["telemetry", "export", str(empty)]) == 2
        assert "no telemetry streams" in capsys.readouterr().err

    def test_export_check_fails_on_lost_stream(self, traced_campaign, tmp_path, capsys):
        import shutil

        _, tele, _ = traced_campaign
        broken = tmp_path / "broken"
        shutil.copytree(tele, broken)
        (broken / "telemetry.jsonl").unlink()
        assert main(["telemetry", "export", str(broken), "--check"]) == 1
        assert "check failed" in capsys.readouterr().err
