"""End-to-end CLI tests (in-process via ``repro.cli.main``)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Run synth -> clean -> split once; return the file paths."""
    root = tmp_path_factory.mktemp("cli")
    leak = root / "leak.txt"
    cleaned = root / "cleaned.txt"
    assert main(["synth", "--site", "rockyou", "--entries", "3000",
                 "--out", str(leak)]) == 0
    assert main(["clean", "--input", str(leak), "--out", str(cleaned)]) == 0
    assert main(["split", "--input", str(cleaned), "--prefix", str(root / "data")]) == 0
    return root


class TestDataCommands:
    def test_synth_writes_entries(self, pipeline):
        assert len((pipeline / "leak.txt").read_text().splitlines()) == 3000

    def test_clean_deduplicates(self, pipeline):
        cleaned = (pipeline / "cleaned.txt").read_text().splitlines()
        assert len(cleaned) == len(set(cleaned))
        assert all(4 <= len(pw) <= 12 for pw in cleaned)

    def test_split_files_disjoint(self, pipeline):
        train = set((pipeline / "data.train.txt").read_text().splitlines())
        test = set((pipeline / "data.test.txt").read_text().splitlines())
        assert train and test
        assert not train & test

    def test_patterns_report(self, pipeline, capsys):
        assert main(["patterns", "--input", str(pipeline / "cleaned.txt"),
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "Pattern" in out and "Segments" in out


class TestModelCommands:
    @pytest.fixture(scope="class")
    def checkpoint(self, pipeline):
        ckpt = pipeline / "model.npz"
        assert main([
            "train", "--input", str(pipeline / "data.train.txt"),
            "--val", str(pipeline / "data.val.txt"),
            "--out", str(ckpt),
            "--dim", "32", "--layers", "1", "--heads", "2",
            "--epochs", "1", "--batch-size", "128",
        ]) == 0
        return ckpt

    def test_generate_free(self, pipeline, checkpoint):
        out = pipeline / "free.txt"
        assert main(["generate", "--checkpoint", str(checkpoint),
                     "-n", "200", "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) == 200

    def test_generate_guided_conforms(self, pipeline, checkpoint):
        out = pipeline / "guided.txt"
        assert main(["generate", "--checkpoint", str(checkpoint),
                     "-n", "50", "--pattern", "L5N2", "--out", str(out)]) == 0
        from repro.tokenizer import Pattern

        pattern = Pattern.parse("L5N2")
        guesses = out.read_text().splitlines()
        assert len(guesses) == 50
        assert all(pattern.matches(g) for g in guesses)

    def test_generate_dcgen(self, pipeline, checkpoint):
        out = pipeline / "dc.txt"
        assert main(["generate", "--checkpoint", str(checkpoint),
                     "-n", "500", "--dcgen", "--threshold", "32",
                     "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) > 300

    def test_generate_dcgen_workers_matches_serial(self, pipeline, checkpoint):
        serial = pipeline / "dc_serial.txt"
        parallel = pipeline / "dc_workers.txt"
        common = ["generate", "--checkpoint", str(checkpoint),
                  "-n", "400", "--dcgen", "--threshold", "32", "--seed", "3"]
        assert main(common + ["--out", str(serial)]) == 0
        assert main(common + ["--workers", "2", "--out", str(parallel)]) == 0
        assert parallel.read_text() == serial.read_text()

    def test_generate_with_sampler_flags(self, pipeline, checkpoint):
        out = pipeline / "cold.txt"
        assert main(["generate", "--checkpoint", str(checkpoint),
                     "-n", "50", "--temperature", "0.5", "--top-k", "10",
                     "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) == 50

    def test_evaluate(self, pipeline, checkpoint, capsys):
        guesses = pipeline / "free.txt"
        if not guesses.exists():
            main(["generate", "--checkpoint", str(checkpoint),
                  "-n", "200", "--out", str(guesses)])
        assert main(["evaluate", "--guesses", str(guesses),
                     "--test", str(pipeline / "data.test.txt"),
                     "--distances"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "pattern distance" in out

    def test_dcgen_rejects_passgpt(self, pipeline):
        ckpt = pipeline / "passgpt.npz"
        assert main([
            "train", "--input", str(pipeline / "data.train.txt"),
            "--model", "passgpt", "--out", str(ckpt),
            "--dim", "32", "--layers", "1", "--heads", "2",
            "--epochs", "1",
        ]) == 0
        assert main(["generate", "--checkpoint", str(ckpt), "-n", "10",
                     "--dcgen", "--out", str(pipeline / "x.txt")]) == 2
