"""Pattern extraction and parsing tests (PCFG, §II-C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenizer import (
    DIGITS,
    LETTERS,
    SPECIALS,
    Pattern,
    Segment,
    extract_pattern,
    group_by_segments,
)


class TestExtraction:
    @pytest.mark.parametrize(
        "password,expected",
        [
            ("Pass123$", "L4N3S1"),
            ("abc123!", "L3N3S1"),
            ("password123", "L8N3"),
            ("123456", "N6"),
            ("!!!", "S3"),
            ("a1b2", "L1N1L1N1"),
            ("A", "L1"),
            ("p@ssw0rd", "L1S1L3N1L2"),
        ],
    )
    def test_known_patterns(self, password, expected):
        assert extract_pattern(password).string == expected

    def test_empty_password_rejected(self):
        with pytest.raises(ValueError):
            Pattern.from_password("")

    def test_non_ascii_rejected(self):
        with pytest.raises(ValueError):
            Pattern.from_password("abcñ")

    def test_space_rejected(self):
        with pytest.raises(ValueError):
            Pattern.from_password("ab cd")


class TestParse:
    def test_roundtrip(self):
        for text in ("L4N3S1", "N6", "L1N1L1N1", "S2L10"):
            assert Pattern.parse(text).string == text

    @pytest.mark.parametrize("bad", ["", "L0", "X4", "L13", "4L", "L4N0", "L4x", "l4"])
    def test_invalid_strings(self, bad):
        with pytest.raises(ValueError):
            Pattern.parse(bad)

    def test_adjacent_same_class_rejected(self):
        with pytest.raises(ValueError):
            Pattern.parse("L4L3")


class TestProperties:
    def test_length_and_segments(self):
        p = Pattern.parse("L4N3S1")
        assert p.length == 8
        assert p.num_segments == 3
        assert p.char_classes() == list("LLLLNNNS")

    def test_matches(self):
        p = Pattern.parse("L5N2")
        assert p.matches("hello12")
        assert not p.matches("hello1")      # wrong length
        assert not p.matches("hell012")     # wrong classes
        assert not p.matches("hello!2")

    def test_search_space(self):
        assert Pattern.parse("N3").search_space() == 1000
        assert Pattern.parse("L1N1").search_space() == 520
        assert Pattern.parse("S1").search_space() == 32

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            Segment("L", 0)
        with pytest.raises(ValueError):
            Segment("L", 13)
        with pytest.raises(ValueError):
            Segment("Q", 1)

    def test_group_by_segments(self):
        groups = group_by_segments([Pattern.parse(s) for s in ("L4", "N6", "L4N2", "L1N1L1")])
        assert {p.string for p in groups[1]} == {"L4", "N6"}
        assert {p.string for p in groups[2]} == {"L4N2"}
        assert {p.string for p in groups[3]} == {"L1N1L1"}


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
password_chars = st.sampled_from(LETTERS + DIGITS + SPECIALS)
passwords = st.text(alphabet=password_chars, min_size=1, max_size=12)


@settings(max_examples=150, deadline=None)
@given(passwords)
def test_extracted_pattern_always_matches_its_password(password):
    pattern = Pattern.from_password(password)
    assert pattern.matches(password)
    assert pattern.length == len(password)


@settings(max_examples=150, deadline=None)
@given(passwords)
def test_pattern_string_parse_roundtrip(password):
    pattern = Pattern.from_password(password)
    assert Pattern.parse(pattern.string) == pattern


@settings(max_examples=150, deadline=None)
@given(passwords)
def test_segments_are_maximal_runs(password):
    pattern = Pattern.from_password(password)
    classes = pattern.char_classes()
    assert len(classes) == len(password)
    # Segment boundaries occur exactly where the class changes.
    for prev, cur in zip(pattern.segments, pattern.segments[1:]):
        assert prev.char_class != cur.char_class


@settings(max_examples=100, deadline=None)
@given(passwords)
def test_extract_pattern_cache_consistency(password):
    assert extract_pattern(password) == Pattern.from_password(password)
