"""Public API surface tests."""

import py_compile
from pathlib import Path

import repro

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_model_zoo_complete(self):
        names = {
            repro.PagPassGPT.name,
            repro.PassGPT.name,
            repro.PassGAN.name,
            repro.VAEPass.name,
            repro.PassFlow.name,
            repro.PCFGModel.name,
            repro.MarkovModel.name,
            repro.PagPassGPTDC.name,
        }
        assert names == {
            "PagPassGPT", "PassGPT", "PassGAN", "VAEPass", "PassFlow",
            "PCFG", "Markov", "PagPassGPT-D&C",
        }


class TestExamples:
    def test_all_examples_compile(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 4
        for script in scripts:
            py_compile.compile(str(script), doraise=True)

    def test_quickstart_exists(self):
        assert (EXAMPLES / "quickstart.py").exists()
