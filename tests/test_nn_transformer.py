"""GPT-2 model tests: config validation, loss semantics, trainability."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.nn import AdamW, GPT2Config, GPT2Model


def tiny_config(**overrides):
    base = dict(vocab_size=20, block_size=12, dim=16, n_layers=2, n_heads=4, dropout=0.0)
    base.update(overrides)
    return GPT2Config(**base)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GPT2Config(vocab_size=10, dim=10, n_heads=3)
        with pytest.raises(ValueError):
            GPT2Config(vocab_size=0)

    def test_paper_config(self):
        cfg = GPT2Config.paper(vocab_size=135)
        assert (cfg.block_size, cfg.dim, cfg.n_layers, cfg.n_heads) == (32, 256, 12, 8)


class TestForward:
    def test_logits_shape(self):
        model = GPT2Model(tiny_config())
        model.eval()
        out = model.forward(np.zeros((3, 7), dtype=np.int64))
        assert out.shape == (3, 7, 20)

    def test_rejects_long_sequences(self):
        model = GPT2Model(tiny_config())
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 13), dtype=np.int64))

    def test_rejects_non_2d(self):
        model = GPT2Model(tiny_config())
        with pytest.raises(ValueError):
            model.forward(np.zeros(5, dtype=np.int64))

    def test_tied_head_uses_token_embedding(self):
        model = GPT2Model(tiny_config(tie_lm_head=True))
        assert model.lm_head is None
        untied = GPT2Model(tiny_config(tie_lm_head=False))
        assert untied.lm_head is not None
        assert untied.num_parameters() > model.num_parameters()

    def test_causality_of_full_model(self):
        model = GPT2Model(tiny_config())
        model.eval()
        ids = np.random.default_rng(0).integers(0, 20, (1, 8))
        with no_grad():
            base = model.forward(ids).data.copy()
            ids2 = ids.copy()
            ids2[0, 7] = (ids2[0, 7] + 1) % 20
            alt = model.forward(ids2).data
        assert np.allclose(base[0, :7], alt[0, :7], atol=1e-4)


class TestLoss:
    def test_initial_loss_near_uniform(self):
        model = GPT2Model(tiny_config())
        model.eval()
        ids = np.random.default_rng(0).integers(0, 19, (8, 10))
        loss = model.loss(ids, pad_token_id=19)
        assert abs(loss.item() - np.log(20)) < 0.3

    def test_pad_targets_excluded(self):
        model = GPT2Model(tiny_config())
        model.eval()
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 19, (4, 10))
        padded = ids.copy()
        padded[:, 6:] = 19  # pad tail
        # Changing content under the pad positions must not change the loss.
        padded2 = padded.copy()
        padded2[:, 8] = 19
        l1 = model.loss(padded, pad_token_id=19).item()
        l2 = model.loss(padded2, pad_token_id=19).item()
        assert l1 == pytest.approx(l2, rel=1e-6)

    def test_overfits_fixed_batch(self):
        model = GPT2Model(tiny_config(), seed=1)
        ids = np.random.default_rng(1).integers(0, 19, (8, 10))
        opt = AdamW(model.parameters(), lr=5e-3)
        first = model.loss(ids, pad_token_id=19).item()
        for _ in range(40):
            opt.zero_grad()
            loss = model.loss(ids, pad_token_id=19)
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.4
