"""Tests for the Module/Parameter abstractions."""

import numpy as np
import pytest

from repro.nn import Linear, MLP, Module, Parameter


class Net(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.fc1 = Linear(3, 4, rng)
        self.fc2 = Linear(4, 2, rng)
        self.blocks = [Linear(2, 2, rng), Linear(2, 2, rng)]
        self.scale = Parameter(np.ones(2, dtype=np.float32))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestDiscovery:
    def test_named_parameters_include_nested_and_lists(self):
        names = {name for name, _ in Net().named_parameters()}
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert "scale" in names

    def test_parameter_count(self):
        net = Net()
        # fc1: 3*4+4, fc2: 4*2+2, blocks: 2*(2*2+2), scale: 2
        assert net.num_parameters() == 16 + 10 + 12 + 2

    def test_modules_iterates_descendants(self):
        mods = list(Net().modules())
        assert len(mods) == 5  # Net + 4 Linears


class TestModes:
    def test_train_eval_propagate(self):
        net = Net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = Net()
        from repro.autograd import Tensor

        out = net(Tensor(np.ones((2, 3), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net1, net2 = Net(), Net()
        for p in net1.parameters():
            p.data += 1.0
        net2.load_state_dict(net1.state_dict())
        for (n1, p1), (n2, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        net = Net()
        state = net.state_dict()
        state["scale"][...] = 99.0
        assert not np.allclose(net.scale.data, 99.0)

    def test_missing_key_raises(self):
        net = Net()
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = Net()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestMLP:
    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4], np.random.default_rng(0))

    def test_forward_shape(self):
        from repro.autograd import Tensor

        mlp = MLP([3, 8, 2], np.random.default_rng(0))
        out = mlp(Tensor(np.ones((5, 3), dtype=np.float32)))
        assert out.shape == (5, 2)

    def test_final_activation_applied(self):
        from repro.autograd import Tensor

        mlp = MLP([3, 4, 2], np.random.default_rng(0), final_activation=Tensor.sigmoid)
        out = mlp(Tensor(np.ones((5, 3), dtype=np.float32)))
        assert (out.data > 0).all() and (out.data < 1).all()
