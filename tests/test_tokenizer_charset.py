"""Character-class tests."""

import pytest

from repro.tokenizer import (
    DIGITS,
    LETTERS,
    SPECIALS,
    VISIBLE_ASCII,
    char_class,
    is_visible_ascii,
)


class TestCharsets:
    def test_sizes_match_paper(self):
        assert len(LETTERS) == 52
        assert len(DIGITS) == 10
        assert len(SPECIALS) == 32
        assert len(VISIBLE_ASCII) == 94

    def test_partition_is_disjoint_and_complete(self):
        assert set(LETTERS) | set(DIGITS) | set(SPECIALS) == set(VISIBLE_ASCII)
        assert not set(LETTERS) & set(DIGITS)
        assert not set(LETTERS) & set(SPECIALS)
        assert not set(DIGITS) & set(SPECIALS)

    def test_space_excluded(self):
        assert " " not in VISIBLE_ASCII


class TestCharClass:
    @pytest.mark.parametrize("ch,cls", [("a", "L"), ("Z", "L"), ("7", "N"), ("!", "S"), ("~", "S")])
    def test_classification(self, ch, cls):
        assert char_class(ch) == cls

    @pytest.mark.parametrize("bad", [" ", "\n", "ñ", "€", "\x00"])
    def test_invalid_characters(self, bad):
        with pytest.raises(ValueError):
            char_class(bad)


class TestIsVisibleAscii:
    def test_accepts_valid(self):
        assert is_visible_ascii("Pass123$!")

    @pytest.mark.parametrize("bad", ["has space", "ñino", "tab\there", ""])
    def test_rejects_invalid(self, bad):
        # Empty string is vacuously visible-ASCII.
        assert is_visible_ascii(bad) == (bad == "")
