"""Causality and masking tests for multi-head self-attention."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import CausalSelfAttention, causal_mask


def make_attn(dim=16, heads=4, seed=0):
    return CausalSelfAttention(dim, heads, np.random.default_rng(seed))


class TestCausalMask:
    def test_upper_triangular(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert not mask[2, 2] and not mask[2, 0]
        assert mask[0, 1] and mask[2, 3]


class TestCausality:
    def test_future_tokens_do_not_affect_past_outputs(self):
        attn = make_attn()
        attn.eval()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        out1 = attn(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5] += 10.0  # perturb the last position only
        out2 = attn(Tensor(x2)).data
        assert np.allclose(out1[0, :5], out2[0, :5], atol=1e-5)
        assert not np.allclose(out1[0, 5], out2[0, 5], atol=1e-3)

    def test_prefix_invariance(self):
        """Output at position i computed from a length-i prefix equals the
        output at i within the longer sequence."""
        attn = make_attn()
        attn.eval()
        x = np.random.default_rng(2).normal(size=(1, 8, 16)).astype(np.float32)
        full = attn(Tensor(x)).data
        prefix = attn(Tensor(x[:, :4])).data
        assert np.allclose(full[0, :4], prefix[0], atol=1e-5)


class TestPadMask:
    def test_padded_keys_are_ignored(self):
        attn = make_attn()
        attn.eval()
        x = np.random.default_rng(3).normal(size=(1, 6, 16)).astype(np.float32)
        pad = np.zeros((1, 6), dtype=bool)
        pad[0, 2] = True  # position 2 is padding
        out_masked = attn(Tensor(x), pad_mask=pad).data
        x_alt = x.copy()
        x_alt[0, 2] = 123.0  # huge change at the padded position
        out_alt = attn(Tensor(x_alt), pad_mask=pad).data
        # Positions after 2 must not see the padded key's change.
        assert np.allclose(out_masked[0, 3:], out_alt[0, 3:], atol=1e-4)


class TestShapes:
    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(10, 3, np.random.default_rng(0))

    def test_output_shape(self):
        attn = make_attn()
        attn.eval()
        out = attn(Tensor(np.zeros((3, 5, 16), dtype=np.float32)))
        assert out.shape == (3, 5, 16)

    def test_gradients_flow(self):
        attn = make_attn()
        attn.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 16)).astype(np.float32), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.qkv.weight.grad is not None
        assert attn.proj.weight.grad is not None
