"""Vocabulary layout tests (§III-B1)."""

import pytest

from repro.tokenizer import VOCAB, Vocabulary
from repro.tokenizer.vocab import CHAR_TOKENS, PATTERN_TOKENS, SPECIAL_TOKENS


class TestLayout:
    def test_total_size(self):
        # 94 chars + 5 specials + 36 pattern tokens = 135 (the paper's own
        # breakdown; its stated total of 136 is an off-by-one, DESIGN.md §6).
        assert len(VOCAB) == 135
        assert len(SPECIAL_TOKENS) == 5
        assert len(PATTERN_TOKENS) == 36
        assert len(CHAR_TOKENS) == 94

    def test_special_ids(self):
        assert VOCAB.bos_id == 0
        assert VOCAB.sep_id == 1
        assert VOCAB.eos_id == 2
        assert VOCAB.unk_id == 3
        assert VOCAB.pad_id == 4

    def test_pattern_tokens_cover_l_n_s_1_to_12(self):
        for cls in "LNS":
            for n in range(1, 13):
                token_id = VOCAB.id_of(f"{cls}{n}")
                assert token_id != VOCAB.unk_id
                assert VOCAB.is_pattern(token_id)

    def test_all_ids_unique_and_bijective(self):
        vocab = Vocabulary()
        seen = set()
        for token_id in range(len(vocab)):
            token = vocab.token_of(token_id)
            assert token not in seen
            seen.add(token)
            assert vocab.id_of(token) == token_id


class TestClassification:
    def test_is_special_is_pattern_is_char_partition(self):
        kinds = [
            (VOCAB.is_special(i), VOCAB.is_pattern(i), VOCAB.is_char(i))
            for i in range(len(VOCAB))
        ]
        assert all(sum(k) == 1 for k in kinds)

    def test_char_ids_cover_ascii(self):
        assert len(VOCAB.char_ids) == 94
        assert all(VOCAB.is_char(i) for i in VOCAB.char_ids)


class TestLookups:
    def test_unknown_token_maps_to_unk(self):
        assert VOCAB.id_of("€") == VOCAB.unk_id
        assert VOCAB.id_of("L13") == VOCAB.unk_id

    def test_out_of_range_id_raises(self):
        with pytest.raises(IndexError):
            VOCAB.token_of(135)
        with pytest.raises(IndexError):
            VOCAB.token_of(-1)
