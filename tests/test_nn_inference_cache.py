"""KV-cache row operations and cached-vs-serial logit equivalence.

``tests/test_nn_inference.py`` covers the happy path; this file stresses
the cache's ``select`` (gather) / ``repeat_rows`` (replicate) operations
— the primitives D&C-GEN uses when splitting task batches — plus the
serial-vs-cached equivalence at several prefix lengths, including the
degenerate one-token prompt and a full-block decode.
"""

import numpy as np
import pytest

from repro.nn import GPT2Config, GPT2Inference, GPT2Model
from repro.nn.inference import KVCache

BLOCK = 16
VOCAB = 30


@pytest.fixture(scope="module")
def inf():
    cfg = GPT2Config(vocab_size=VOCAB, block_size=BLOCK, dim=32, n_layers=2, n_heads=4, dropout=0.0)
    model = GPT2Model(cfg, seed=5)
    model.eval()
    return GPT2Inference(model)


@pytest.fixture(scope="module")
def ids():
    return np.random.default_rng(8).integers(0, VOCAB, (6, BLOCK))


class TestPrefixLengths:
    @pytest.mark.parametrize("prefix_len", [1, 2, 5, 11, BLOCK - 1])
    def test_start_matches_full_forward(self, inf, ids, prefix_len):
        full = inf.logits(ids[:, :prefix_len])
        last, cache = inf.start(ids[:, :prefix_len])
        assert cache.length == prefix_len
        assert np.allclose(last, full[:, -1], atol=1e-4)

    @pytest.mark.parametrize("prefix_len", [1, 4, 9, BLOCK - 1])
    def test_cached_decode_matches_serial_recompute(self, inf, ids, prefix_len):
        """Every cached step equals a from-scratch forward of the same
        prefix — the strongest form of serial-vs-cached equivalence."""
        _, cache = inf.start(ids[:, :prefix_len])
        for t in range(prefix_len, BLOCK):
            serial = inf.logits(ids[:, : t + 1])[:, -1]
            last = inf.step(ids[:, t], cache)
            assert np.allclose(last, serial, atol=1e-4), f"prefix {prefix_len}, step {t}"

    def test_full_block_prompt_leaves_no_room_to_step(self, inf, ids):
        _, cache = inf.start(ids)
        assert cache.length == BLOCK
        with pytest.raises(ValueError):
            inf.step(ids[:, 0], cache)


class TestSelect:
    """``select`` gathers batch rows — used when surviving sub-prefixes
    continue decoding after a task split."""

    @pytest.mark.parametrize("prefix_len", [2, 7, 12])
    def test_gathered_rows_continue_identically(self, inf, ids, prefix_len):
        _, cache = inf.start(ids[:, :prefix_len])
        rows = np.array([1, 4, 5])
        sub = cache.select(rows)
        assert sub.batch == 3
        assert sub.length == prefix_len
        fresh_last, fresh_cache = inf.start(ids[rows, :prefix_len])
        stepped = inf.step(ids[rows, prefix_len], sub)
        expected = inf.step(ids[rows, prefix_len], fresh_cache)
        assert np.allclose(stepped, expected, atol=1e-4)

    def test_reordering_rows(self, inf, ids):
        _, cache = inf.start(ids[:, :6])
        perm = np.array([3, 0, 5, 1])
        sub = cache.select(perm)
        out = inf.step(ids[perm, 6], sub)
        expected = inf.logits(ids[perm, :7])[:, -1]
        assert np.allclose(out, expected, atol=1e-4)

    def test_select_of_select(self, inf, ids):
        _, cache = inf.start(ids[:, :4])
        sub = cache.select(np.array([0, 2, 4])).select(np.array([1, 2]))
        assert sub.batch == 2
        out = inf.step(ids[[2, 4], 4], sub)
        expected = inf.logits(ids[[2, 4], :5])[:, -1]
        assert np.allclose(out, expected, atol=1e-4)

    def test_select_copies_storage(self, inf, ids):
        """Gather must deep-copy: stepping the child may not corrupt the
        parent (and vice versa)."""
        _, cache = inf.start(ids[:, :5])
        sub = cache.select(np.array([0, 1]))
        sub.keys[0][...] = 1e9
        stepped = inf.step(ids[:, 5], cache)
        expected = inf.logits(ids[:, :6])[:, -1]
        assert np.allclose(stepped, expected, atol=1e-4)
        parent_after = inf.start(ids[:, :5])[1].keys[0]
        assert np.allclose(cache.keys[0][:, :, :5], parent_after[:, :, :5], atol=1e-5)


class TestRepeatRows:
    """``repeat_rows`` replicates one row — used to fan a shared prefix
    out into a batch of samples."""

    @pytest.mark.parametrize("prefix_len", [1, 5, 10])
    def test_replicated_rows_match_tiled_prompt(self, inf, ids, prefix_len):
        _, cache = inf.start(ids[:, :prefix_len])
        rep = cache.repeat_rows(2, 4)
        assert rep.batch == 4
        assert rep.length == prefix_len
        next_ids = np.array([7, 8, 9, 7])
        out = inf.step(next_ids, rep)
        tiled = np.repeat(ids[2:3, :prefix_len], 4, axis=0)
        expected = inf.logits(
            np.concatenate([tiled, next_ids[:, None]], axis=1)
        )[:, -1]
        assert np.allclose(out, expected, atol=1e-4)

    def test_replicate_copies_storage(self, inf, ids):
        _, cache = inf.start(ids[:, :5])
        rep = cache.repeat_rows(0, 2)
        rep.values[1][...] = -1e9
        fresh = inf.start(ids[:, :5])[1]
        assert np.allclose(cache.values[1][:, :, :5], fresh.values[1][:, :, :5], atol=1e-5)

    def test_diverging_continuations_stay_row_independent(self, inf, ids):
        """Replicated rows fed different tokens must evolve like
        independent sequences."""
        _, cache = inf.start(ids[:1, :3])
        rep = cache.repeat_rows(0, 3)
        tokens = np.array([[1, 2, 3], [4, 5, 6]])  # two steps, three rows
        last = inf.step(tokens[0], rep)
        last = inf.step(tokens[1], rep)
        for row in range(3):
            seq = np.concatenate([ids[0, :3], tokens[:, row]])[None, :]
            expected = inf.logits(seq)[:, -1]
            assert np.allclose(last[row], expected[0], atol=1e-4), f"row {row}"


class TestPromptCacheAccounting:
    """Hit/miss/eviction stats (ISSUE 5): the cache's own counters must
    reproduce the planned dedup savings of a golden-spec campaign."""

    def test_golden_campaign_hits_match_planned_budget(self):
        from repro.generation import (
            DCGenConfig,
            DCGenerator,
            build_batches,
            planned_execute_costs,
        )
        from tests.goldens import SPEC, build_model

        model = build_model()
        dc = SPEC["dcgen"]
        gen = DCGenerator(model, DCGenConfig(threshold=dc["threshold"], gen_batch=128))
        leaves = gen.plan(dc["total"])
        cache = model.prompt_cache

        # The plan phase primes each divided pattern's prompt exactly once.
        plan_stats = cache.stats()
        assert plan_stats["misses"] == gen.stats.patterns_used
        assert plan_stats["size"] == plan_stats["misses"]

        batches = build_batches(leaves, 128)
        planned = planned_execute_costs(batches)
        gen._execute(batches, dc["seed"])

        stats = cache.stats()
        # Execute-phase hits are exactly the planned dedup savings; the
        # execute phase never re-primes a prompt the plan already warmed.
        assert stats["hits"] - plan_stats["hits"] == planned["prompt_cache_hits"]
        assert stats["misses"] == plan_stats["misses"]
        assert stats["evictions"] == 0

    def test_registry_counters_track_cache_stats(self):
        from repro.nn.inference import PromptCache
        from repro.telemetry import get_registry

        cfg = GPT2Config(vocab_size=VOCAB, block_size=BLOCK, dim=32, n_layers=2, n_heads=4, dropout=0.0)
        model = GPT2Model(cfg, seed=5)
        model.eval()
        cache = PromptCache(GPT2Inference(model), maxsize=2)

        registry = get_registry()
        before = {
            key: registry.values().get(f"prompt_cache.{key}", 0)
            for key in ("hits", "misses", "evictions")
        }

        prompts = [np.array([1]), np.array([2]), np.array([3])]
        cache.lookup(prompts[0])
        cache.lookup(prompts[0])  # hit
        cache.lookup(prompts[1])
        cache.lookup(prompts[2])  # evicts prompt 0 (LRU, maxsize=2)
        cache.lookup(prompts[0])  # miss again: it was evicted

        assert cache.stats() == {"hits": 1, "misses": 4, "evictions": 2, "size": 2}
        after = registry.values()
        for key in ("hits", "misses", "evictions"):
            delta = after[f"prompt_cache.{key}"] - before[key]
            assert delta == cache.stats()[key], key


class TestPromptCacheInterleaved:
    """LRU behaviour under the ordered-frontier access pattern: the
    best-first enumerator interleaves lookups across every pattern's
    prompt each round, so eviction correctness (not just counts) matters
    — a re-primed entry must serve the same state as the evicted one."""

    def _cache(self, maxsize):
        from repro.nn.inference import PromptCache

        cfg = GPT2Config(vocab_size=VOCAB, block_size=BLOCK, dim=32, n_layers=2, n_heads=4, dropout=0.0)
        model = GPT2Model(cfg, seed=5)
        model.eval()
        inference = GPT2Inference(model)
        return PromptCache(inference, maxsize=maxsize), inference

    def test_interleaved_thrash_below_capacity(self):
        """Round-robin over maxsize+1 prompts: every lookup re-primes."""
        cache, _ = self._cache(maxsize=2)
        prompts = [np.array([p, p]) for p in (1, 2, 3)]
        rounds = 4
        for _ in range(rounds):
            for prompt in prompts:
                cache.lookup(prompt)
        stats = cache.stats()
        assert stats["hits"] == 0  # LRU always evicts the next one needed
        assert stats["misses"] == rounds * len(prompts)
        assert stats["evictions"] == rounds * len(prompts) - 2
        assert stats["size"] == 2

    def test_interleaved_all_hits_at_capacity(self):
        cache, _ = self._cache(maxsize=3)
        prompts = [np.array([p, p]) for p in (1, 2, 3)]
        for _ in range(4):
            for prompt in prompts:
                cache.lookup(prompt)
        stats = cache.stats()
        assert stats["misses"] == 3  # one priming each, then steady-state
        assert stats["hits"] == 3 * 3
        assert stats["evictions"] == 0

    def test_reprimed_entry_is_equivalent(self):
        """An evict-then-reprime cycle returns the same logits and a KV
        state that continues identically to an uncached start."""
        cache, inference = self._cache(maxsize=1)
        prompt_a, prompt_b = np.array([4, 5, 6]), np.array([7, 8])
        first_logits, _ = cache.lookup(prompt_a)
        cache.lookup(prompt_b)  # evicts prompt_a
        again_logits, again_kv = cache.lookup(prompt_a)  # re-primed
        assert np.array_equal(first_logits, again_logits)
        fresh_logits, fresh_kv = inference.start(prompt_a[None, :])
        assert np.array_equal(again_logits, fresh_logits)
        next_id = np.array([9])
        stepped = inference.step(next_id, again_kv.gather(np.array([0])))
        expected = inference.step(next_id, fresh_kv)
        assert np.allclose(stepped, expected, atol=1e-5)

    def test_touched_entry_survives_interleaving(self):
        """A hit refreshes recency: the other entry is the one evicted."""
        cache, _ = self._cache(maxsize=2)
        hot, warm, new = np.array([1]), np.array([2]), np.array([3])
        cache.lookup(hot)
        cache.lookup(warm)
        cache.lookup(hot)  # refresh: warm is now LRU
        cache.lookup(new)  # evicts warm
        assert cache.stats()["evictions"] == 1
        hits_before = cache.stats()["hits"]
        cache.lookup(hot)
        assert cache.stats()["hits"] == hits_before + 1  # still cached


class TestGatherIndices:
    """``KVCache.gather`` with the degenerate index lists the ordered
    frontier produces: empty groups and heavily duplicated rows."""

    def test_empty_indices_give_zero_batch(self, inf, ids):
        _, cache = inf.start(ids[:, :5])
        empty = cache.gather(np.array([], dtype=np.intp))
        assert empty.batch == 0
        assert empty.length == cache.length

    def test_empty_int_list(self, inf, ids):
        _, cache = inf.start(ids[:, :3])
        assert cache.gather(np.array([], dtype=np.int64)).batch == 0

    def test_duplicate_indices_replicate_rows(self, inf, ids):
        """Gathering [2,2,0,2] must behave like starting from the rows
        tiled that way — the fan-out the enumerator uses per batch."""
        _, cache = inf.start(ids[:, :6])
        picked = np.array([2, 2, 0, 2])
        fanned = cache.gather(picked)
        assert fanned.batch == 4
        stepped = inf.step(ids[picked, 6], fanned)
        expected = inf.logits(ids[picked, :7])[:, -1]
        assert np.allclose(stepped, expected, atol=1e-4)

    def test_duplicated_rows_are_independent_copies(self, inf, ids):
        """Mutating one duplicated row must not leak into its siblings."""
        _, cache = inf.start(ids[:, :4])
        fanned = cache.gather(np.array([1, 1]))
        fanned.keys[0][0, ...] = 1e9  # corrupt row 0 only
        survivor = fanned.gather(np.array([1]))
        stepped = inf.step(ids[[1], 4], survivor)
        expected = inf.logits(ids[[1], :5])[:, -1]
        assert np.allclose(stepped, expected, atol=1e-4)


class TestBookkeeping:
    def test_select_and_repeat_preserve_length(self, inf, ids):
        _, cache = inf.start(ids[:, :9])
        assert cache.select(np.array([0])).length == 9
        assert cache.repeat_rows(0, 5).length == 9

    def test_zero_row_select(self, inf, ids):
        _, cache = inf.start(ids[:, :4])
        empty = cache.select(np.array([], dtype=np.int64))
        assert empty.batch == 0
        assert empty.length == 4
