"""Optimiser and LR-schedule tests."""

import numpy as np
import pytest

from repro.nn import Adam, AdamW, SGD, WarmupCosine, WarmupLinear, clip_grad_norm
from repro.nn.module import Parameter


def quadratic_param(value=5.0):
    return Parameter(np.array([value], dtype=np.float32))


def minimise(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        param.grad = 2.0 * param.data  # d/dx x^2
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_minimises_quadratic(self):
        p = quadratic_param()
        assert abs(minimise(SGD([p], lr=0.1), p)) < 1e-3

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = abs(minimise(SGD([p1], lr=0.01), p1, steps=50))
        momentum = abs(minimise(SGD([p2], lr=0.01, momentum=0.9), p2, steps=50))
        assert momentum < plain

    def test_exact_step(self):
        p = quadratic_param(1.0)
        opt = SGD([p], lr=0.5)
        p.grad = np.array([2.0], dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(0.0)

    def test_none_grad_skipped(self):
        p = quadratic_param(1.0)
        SGD([p], lr=0.5).step()
        assert p.data[0] == pytest.approx(1.0)


class TestAdam:
    def test_minimises_quadratic(self):
        p = quadratic_param()
        assert abs(minimise(Adam([p], lr=0.1), p)) < 1e-2

    def test_first_step_magnitude_is_lr(self):
        # With bias correction the first Adam update is ~lr in magnitude.
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1)
        p.grad = np.array([3.0], dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(0.9, abs=1e-4)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestAdamW:
    def test_weight_decay_shrinks_params(self):
        p = quadratic_param(1.0)
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        # Zero gradient: only decay applies -> 1 - 0.1*0.5
        assert p.data[0] == pytest.approx(0.95, abs=1e-5)

    def test_no_decay_list_respected(self):
        p = quadratic_param(1.0)
        opt = AdamW([p], lr=0.1, weight_decay=0.5, no_decay=[p])
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(1.0, abs=1e-6)


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 3.0, dtype=np.float32)  # norm 6
        pre = clip_grad_norm([p], 1.5)
        assert pre == pytest.approx(6.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.5, rel=1e-5)

    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 0.1, dtype=np.float32)
        clip_grad_norm([p], 10.0)
        assert np.allclose(p.grad, 0.1)


class TestSchedules:
    def test_warmup_linear_shape(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.0)
        sched = WarmupLinear(opt, base_lr=1.0, warmup_steps=10, total_steps=100)
        lrs = [sched.step() for _ in range(100)]
        assert lrs[0] == pytest.approx(0.1)
        assert max(lrs) == pytest.approx(1.0)
        assert lrs[-1] < 0.05
        assert lrs.index(max(lrs)) == 9

    def test_warmup_cosine_endpoints(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.0)
        sched = WarmupCosine(opt, base_lr=1.0, warmup_steps=0, total_steps=50, min_lr=0.1)
        lrs = [sched.step() for _ in range(50)]
        assert lrs[0] == pytest.approx(1.0, abs=1e-2)
        assert lrs[-1] == pytest.approx(0.1, abs=1e-2)
        assert all(a >= b - 1e-9 for a, b in zip(lrs, lrs[1:]))  # monotone decay

    def test_applies_lr_to_optimizer(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.0)
        sched = WarmupLinear(opt, base_lr=2.0, warmup_steps=0, total_steps=10)
        sched.step()
        assert opt.lr == pytest.approx(2.0)

    def test_invalid_total_steps(self):
        with pytest.raises(ValueError):
            WarmupLinear(SGD([quadratic_param()], lr=0.1), 1.0, 0, 0)
