"""Guessing as a service: protocol, admission, job store, live server.

The live-server tests drive a real ``CampaignServer`` over real sockets
using the chaos harness's thread runner and HTTP helpers — the same
path ``repro serve`` and the server soak exercise.
"""

from __future__ import annotations

import io
import json
import re
import signal as _signal
import time

import pytest

from repro.generation import DCGenConfig, DCGenerator
from repro.runtime import chaos, signals
from repro.server import (
    AdmissionController,
    CampaignSpec,
    JobStore,
    RequestError,
    ServerConfig,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory, trained_pagpassgpt):
    path = tmp_path_factory.mktemp("server-model") / "model.npz"
    trained_pagpassgpt.save(path)
    return str(path)


def _config(checkpoint: str, state_dir, **overrides) -> ServerConfig:
    kwargs = dict(
        checkpoint=checkpoint,
        state_dir=str(state_dir),
        port=0,
        fleet=1,
        poll_interval=0.02,
    )
    kwargs.update(overrides)
    return ServerConfig(**kwargs)


def _wait_terminal(port: int, job_id: int, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, job, _ = chaos._http_json(port, "GET", f"/campaigns/{job_id}")
        if job["state"] in ("done", "failed", "interrupted"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"request {job_id} never reached a terminal state")


# ----------------------------------------------------------------------
# Protocol validation
# ----------------------------------------------------------------------

class TestProtocol:
    def test_minimal_generate_payload(self):
        spec = CampaignSpec.from_payload({"n": 10}, kind="generate")
        assert spec.kind == "generate"
        assert spec.n == 10
        assert spec.strategy == "sampled"
        assert spec.tenant == "public"
        assert spec.budget() is None

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},  # n is required
            {"n": 0},
            {"n": -3},
            {"n": 10, "strategy": "best_first"},
            {"n": 10, "bogus_field": 1},  # unknown fields are rejected
            {"n": 10, "tenant": "no spaces allowed"},
            {"n": 10, "workers": "two"},
            {"n": 10, "workers": 99},
            {"n": 10, "deadline": -5},
            {"n": 10, "max_guesses": 0},
            {"n": 10, "seed": True},
        ],
    )
    def test_invalid_generate_payloads(self, payload):
        with pytest.raises(RequestError) as info:
            CampaignSpec.from_payload(payload, kind="generate")
        assert info.value.status == 400
        assert info.value.code == "invalid_request"

    def test_score_payload_requires_nonempty_lines(self):
        with pytest.raises(RequestError):
            CampaignSpec.from_payload({"guesses": [], "test": ["x"]}, kind="score")
        with pytest.raises(RequestError):
            CampaignSpec.from_payload({"guesses": ["x"]}, kind="score")
        spec = CampaignSpec.from_payload(
            {"guesses": ["a", "b"], "test": ["a"]}, kind="score"
        )
        assert spec.guesses == ("a", "b")

    def test_journal_round_trip(self):
        spec = CampaignSpec.from_payload(
            {"n": 5, "strategy": "dcgen", "threshold": 16, "seed": 3,
             "tenant": "t1", "max_guesses": 9, "deadline": 2.5},
            kind="generate",
        )
        assert CampaignSpec.from_journal(spec.to_payload()) == spec
        # and the payload itself must be JSON-safe
        json.dumps(spec.to_payload())

    def test_request_budget(self):
        spec = CampaignSpec.from_payload(
            {"n": 5, "deadline": 2.5, "max_guesses": 100}, kind="generate"
        )
        budget = spec.budget()
        assert budget.wall_seconds == 2.5
        assert budget.max_guesses == 100


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_exact_refill_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0
        assert bucket.take() == pytest.approx(0.5)  # 1 token / 2 per s
        clock.t = 0.5
        assert bucket.take() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.t = 100.0  # a long idle period must not bank extra tokens
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0
        assert bucket.take() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmission:
    def test_draining_outranks_everything(self):
        ctrl = AdmissionController(clock=FakeClock())
        with pytest.raises(RequestError) as info:
            ctrl.admit("t", tenant_queued=0, total_queued=0, draining=True)
        assert (info.value.status, info.value.code) == (503, "draining")
        assert info.value.retry_after == 30.0

    def test_global_queue_full_is_503(self):
        ctrl = AdmissionController(max_queue=4, clock=FakeClock())
        with pytest.raises(RequestError) as info:
            ctrl.admit("t", tenant_queued=0, total_queued=4, draining=False)
        assert (info.value.status, info.value.code) == (503, "queue_full")

    def test_tenant_queue_full_is_429(self):
        ctrl = AdmissionController(
            max_queue=64, max_tenant_queue=2, clock=FakeClock()
        )
        with pytest.raises(RequestError) as info:
            ctrl.admit("greedy", tenant_queued=2, total_queued=2, draining=False)
        assert (info.value.status, info.value.code) == (429, "tenant_queue_full")

    def test_rate_limit_has_exact_retry_after_per_tenant(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            max_queue=64, max_tenant_queue=8, rate=2.0, burst=1.0, clock=clock
        )
        ctrl.admit("alice", tenant_queued=0, total_queued=0, draining=False)
        with pytest.raises(RequestError) as info:
            ctrl.admit("alice", tenant_queued=0, total_queued=0, draining=False)
        assert (info.value.status, info.value.code) == (429, "rate_limited")
        assert info.value.retry_after == pytest.approx(0.5)
        # every tenant has its own bucket
        ctrl.admit("bob", tenant_queued=0, total_queued=0, draining=False)


# ----------------------------------------------------------------------
# Job store persistence
# ----------------------------------------------------------------------

def _spec(n: int = 5, tenant: str = "t") -> CampaignSpec:
    return CampaignSpec.from_payload({"n": n, "tenant": tenant}, kind="generate")


class TestJobStore:
    def test_admit_is_durable_before_the_ack(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.admit(_spec())
        # the request is on disk the moment admit() returns
        raw = (tmp_path / "requests.journal.jsonl").read_text()
        assert f'"task_id":{job.job_id}' in raw
        assert '"kind":"request"' in raw and '"state":"queued"' in raw
        store.close()

    def test_restart_replays_lifecycle_and_recovers(self, tmp_path):
        store = JobStore(tmp_path)
        a, b, c, d = (store.admit(_spec()) for _ in range(4))
        store.set_state(a, "done", guesses=5)
        store.set_state(b, "running")
        store.set_state(c, "interrupted", reason="signal", resumable=True)
        store.close()

        again = JobStore(tmp_path)
        assert again.jobs[a.job_id].state == "done"
        assert again.jobs[a.job_id].detail == {"guesses": 5}
        # queued/running died with the process; interrupted(signal) is a
        # drain checkpoint — all three must be re-queued, in id order.
        assert [j.job_id for j in again.to_recover()] == [
            b.job_id, c.job_id, d.job_id
        ]
        e = again.admit(_spec())
        assert e.job_id == d.job_id + 1  # ids are never reused
        again.close()

    def test_interrupted_by_deadline_is_terminal(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.admit(_spec())
        store.set_state(job, "interrupted", reason="deadline")
        assert job.terminal and not job.resumable
        assert store.to_recover() == []
        store.close()

    def test_counts_and_tenant_depths(self, tmp_path):
        store = JobStore(tmp_path)
        store.admit(_spec(tenant="a"))
        store.admit(_spec(tenant="a"))
        done = store.admit(_spec(tenant="b"))
        store.set_state(done, "done")
        assert store.counts()["queued"] == 2
        assert store.counts()["done"] == 1
        assert store.queued_by_tenant() == {"a": 2}
        store.close()


# ----------------------------------------------------------------------
# Live server over real sockets
# ----------------------------------------------------------------------

class TestLiveServer:
    @pytest.fixture
    def server(self, checkpoint, tmp_path):
        runner = chaos._ServerThread(_config(checkpoint, tmp_path / "state"))
        port = runner.start()
        yield runner, port
        if runner.thread.is_alive():
            runner.drain(timeout=120.0)

    def test_submit_poll_fetch_matches_direct_generation(
        self, server, trained_pagpassgpt
    ):
        _, port = server
        status, obj, _ = chaos._http_json(
            port, "POST", "/campaigns", {"n": 40, "seed": 11, "tenant": "alice"}
        )
        assert status == 202
        assert obj["state"] == "queued"
        job = _wait_terminal(port, obj["id"])
        assert job["state"] == "done", job
        assert job["detail"]["guesses"] > 0
        status, data, _ = chaos._http_request(
            port, "GET", f"/campaigns/{obj['id']}/guesses"
        )
        assert status == 200
        expected = trained_pagpassgpt.generate(40, seed=11)
        assert data.decode("utf-8").splitlines() == expected

    def test_score_round_trip(self, server):
        _, port = server
        status, obj, _ = chaos._http_json(
            port, "POST", "/score",
            {"guesses": ["password", "hunter2", "hunter2"],
             "test": ["password", "letmein"]},
        )
        assert status == 200
        assert obj["hit_rate"] == pytest.approx(0.5)
        assert obj["unique_guesses"] == 2

    def test_quota_interruption_is_terminal_and_guesses_409(self, server):
        _, port = server
        status, obj, _ = chaos._http_json(
            port, "POST", "/campaigns", {"n": 500_000, "max_guesses": 64}
        )
        assert status == 202
        job = _wait_terminal(port, obj["id"])
        assert job["state"] == "interrupted", job
        assert job["detail"]["reason"] == "guesses"
        assert job["detail"]["resumable"] is False
        status, body, _ = chaos._http_json(
            port, "GET", f"/campaigns/{obj['id']}/guesses"
        )
        assert status == 409
        assert body["error"] == "not_finished"

    def test_corrupt_checkpoint_degrades_that_request_only(
        self, server, tmp_path
    ):
        _, port = server
        bad = tmp_path / "garbage.npz"
        bad.write_bytes(b"this is not a checkpoint")
        status, obj, _ = chaos._http_json(
            port, "POST", "/campaigns", {"n": 10, "checkpoint": str(bad)}
        )
        assert status == 202
        job = _wait_terminal(port, obj["id"])
        assert job["state"] == "failed"
        assert job["detail"]["error"]  # typed, named failure
        # ...and the server is still healthy for the next request
        status, obj, _ = chaos._http_json(port, "POST", "/campaigns", {"n": 10})
        assert status == 202
        assert _wait_terminal(port, obj["id"])["state"] == "done"

    def test_missing_checkpoint_is_rejected_at_admission(self, server):
        _, port = server
        status, body, _ = chaos._http_json(
            port, "POST", "/campaigns",
            {"n": 10, "checkpoint": "/nonexistent/model.npz"},
        )
        assert status == 400
        assert body["error"] == "invalid_request"

    def test_http_surface_errors(self, server):
        _, port = server
        status, _, _ = chaos._http_request(port, "POST", "/campaigns", timeout=30.0)
        assert status == 400  # empty body is not JSON
        status, body, _ = chaos._http_json(port, "GET", "/campaigns/999")
        assert status == 404 and body["error"] == "not_found"
        status, body, _ = chaos._http_json(port, "GET", "/nope")
        assert status == 404
        status, body, _ = chaos._http_json(port, "POST", "/status")
        assert status in (404, 405)

    def test_status_metrics_healthz(self, server):
        _, port = server
        status, body, _ = chaos._http_json(port, "GET", "/status")
        assert status == 200
        assert body["state"] == "serving"
        assert set(body["jobs"]) == {
            "queued", "running", "done", "failed", "interrupted"
        }
        status, metrics, _ = chaos._http_json(port, "GET", "/metrics")
        assert status == 200 and isinstance(metrics, dict)
        status, health, _ = chaos._http_json(port, "GET", "/healthz")
        assert status == 200 and health["ok"] is True


class TestBackpressure:
    def test_tenant_queue_cap_yields_429_with_retry_after(
        self, checkpoint, tmp_path
    ):
        runner = chaos._ServerThread(
            _config(checkpoint, tmp_path / "state", max_tenant_queue=1)
        )
        port = runner.start()
        try:
            status, first, _ = chaos._http_json(
                port, "POST", "/campaigns",
                {"n": 200_000, "tenant": "greedy", "seed": 1},
            )
            assert status == 202
            # wait until the fleet picks it up so the queue depth is ours
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                _, body, _ = chaos._http_json(port, "GET", "/status")
                if body["jobs"]["running"] >= 1:
                    break
                time.sleep(0.02)
            status, _, _ = chaos._http_json(
                port, "POST", "/campaigns",
                {"n": 10, "tenant": "greedy", "seed": 2},
            )
            assert status == 202  # fills the single tenant-queue slot
            status, body, retry_after = chaos._http_json(
                port, "POST", "/campaigns",
                {"n": 10, "tenant": "greedy", "seed": 3},
            )
            assert status == 429
            assert body["error"] == "tenant_queue_full"
            assert retry_after is not None and int(retry_after) >= 1
            # an independent tenant is still admitted
            status, _, _ = chaos._http_json(
                port, "POST", "/campaigns", {"n": 10, "tenant": "patient"}
            )
            assert status == 202
        finally:
            runner.drain(timeout=120.0)


class TestDrainAndResume:
    def test_sigterm_drain_checkpoints_and_restart_resumes_byte_identically(
        self, checkpoint, tmp_path, trained_pagpassgpt
    ):
        state_dir = tmp_path / "state"
        payload = {"n": 1500, "strategy": "dcgen", "threshold": 32, "seed": 5}
        runner = chaos._ServerThread(_config(checkpoint, state_dir))
        port = runner.start()
        status, obj, _ = chaos._http_json(port, "POST", "/campaigns", payload)
        assert status == 202
        job_id = obj["id"]
        # let the campaign get under way, then stop the way SIGTERM does
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            _, job, _ = chaos._http_json(port, "GET", f"/campaigns/{job_id}")
            if job["state"] == "running" and job["progress"]["done"] > 0:
                break
            if job["state"] in ("done", "failed"):
                break
            time.sleep(0.01)
        signals.request(_signal.SIGTERM)
        summary = runner.join(timeout=120.0)
        signals.reset()
        assert summary["reason"] == "signal"

        # a fresh server over the same state dir must finish the job
        runner = chaos._ServerThread(_config(checkpoint, state_dir))
        port = runner.start()
        try:
            job = _wait_terminal(port, job_id)
            assert job["state"] == "done", job
            _, data, _ = chaos._http_request(
                port, "GET", f"/campaigns/{job_id}/guesses"
            )
            expected = DCGenerator(
                trained_pagpassgpt, DCGenConfig(threshold=32, workers=1)
            ).generate(1500, seed=5)
            assert data.decode("utf-8") == "\n".join(expected) + "\n"
        finally:
            runner.drain(timeout=120.0)

    def test_draining_server_rejects_new_work_with_503(
        self, checkpoint, tmp_path
    ):
        runner = chaos._ServerThread(_config(checkpoint, tmp_path / "state"))
        port = runner.start()
        runner.server.draining = True  # poke the flag the drain path sets
        try:
            status, body, retry_after = chaos._http_json(
                port, "POST", "/campaigns", {"n": 10}
            )
            assert status == 503
            assert body["error"] == "draining"
            assert retry_after is not None
        finally:
            runner.server.draining = False
            runner.drain(timeout=120.0)


class TestServerSoak:
    def test_seeded_soak_holds_all_invariants(self, checkpoint, tmp_path):
        report = chaos.run_server_soak(
            checkpoint,
            tmp_path / "soak",
            base_seed=0,
            n_requests=3,
            clients=2,
            n=120,
        )
        assert report.ok, report.failures
        assert len(report.outcomes) == 3
        assert len(report.drains) == 2  # one per server lifetime
        for outcome in report.outcomes:
            if outcome.state == "done":
                assert outcome.identical is True
                assert outcome.check_ok is True
        # the report is JSON-serializable for soak-report.json
        json.dumps(report.to_dict())


# ----------------------------------------------------------------------
# Observability surface: Prometheus exposition, traces, repro top
# ----------------------------------------------------------------------

def _http_with_headers(port, method, path, payload=None, headers=None):
    """Like chaos._http_request but with caller-controlled headers."""
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30.0)
    try:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        all_headers = {"Content-Type": "application/json"} if body else {}
        all_headers.update(headers or {})
        conn.request(method, path, body=body, headers=all_headers)
        response = conn.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        conn.close()


# Label values are quoted and may contain any escaped character --
# including "}" (e.g. route="/campaigns/{id}") -- so the label block
# must be parsed as quoted pairs, not as a brace-delimited blob.
_PROM_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{" + _PROM_LABEL + r"(," + _PROM_LABEL + r")*,?\})?"
    r" (?:[0-9.eE+-]+|NaN|[+-]Inf)$"
)
_PROM_TYPE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$"
)


class TestObservability:
    @pytest.fixture
    def server(self, checkpoint, tmp_path):
        runner = chaos._ServerThread(_config(checkpoint, tmp_path / "state"))
        port = runner.start()
        yield runner, port, tmp_path / "state"
        if runner.thread.is_alive():
            runner.drain(timeout=120.0)

    def _scrape(self, port):
        status, data, headers = _http_with_headers(
            port, "GET", "/metrics?format=prometheus"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        return data.decode("utf-8")

    def test_prometheus_exposition_parses_line_by_line(self, server):
        _, port, _ = server
        # Generate some traffic so request histograms exist.
        chaos._http_json(port, "GET", "/status")
        chaos._http_json(port, "GET", "/healthz")
        text = self._scrape(port)
        assert text.endswith("\n")
        seen_types = {}
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# TYPE"):
                assert _PROM_TYPE.match(line), line
                name = line.split(" ")[2]
                assert name not in seen_types, f"duplicate TYPE for {name}"
                seen_types[name] = line.split(" ")[3]
            elif line.startswith("#"):
                continue  # HELP or comment
            else:
                assert _PROM_SAMPLE.match(line), line
                base = line.split("{")[0].split(" ")[0]
                # Samples appear contiguously under their family's TYPE:
                # the base (after stripping histogram/counter suffixes)
                # must already have been declared.
                assert any(
                    base == t or base.startswith(t + "_") for t in seen_types
                ), line
        assert seen_types, "no metric families rendered"

    def test_prometheus_histogram_buckets_cumulative_to_inf(self, server):
        _, port, _ = server
        for _ in range(3):
            chaos._http_json(port, "GET", "/status")
        text = self._scrape(port)
        lines = text.splitlines()
        bucket_lines = [
            l for l in lines
            if l.startswith("repro_server_request_ms_bucket")
            and 'route="/status"' in l
        ]
        assert bucket_lines, text
        les, counts = [], []
        for line in bucket_lines:
            label_part = line[line.index("{") + 1:line.index("}")]
            labels = dict(p.split("=", 1) for p in label_part.split(","))
            les.append(labels['le'].strip('"'))
            counts.append(float(line.rsplit(" ", 1)[1]))
        assert les[-1] == "+Inf"
        assert counts == sorted(counts), "bucket counts must be cumulative"
        count_line = next(
            l for l in lines
            if l.startswith("repro_server_request_ms_count")
            and 'route="/status"' in l
        )
        assert float(count_line.rsplit(" ", 1)[1]) == counts[-1]
        assert any(
            l.startswith("repro_server_request_ms_sum") and 'route="/status"' in l
            for l in lines
        )

    def test_metrics_json_shape_unchanged(self, server):
        """The JSON endpoint keeps its pre-Prometheus shape (back compat)."""
        _, port, _ = server
        status, metrics, _ = chaos._http_json(port, "GET", "/metrics")
        assert status == 200
        assert {"counters", "gauges", "histograms", "groups"} <= set(metrics)
        assert isinstance(metrics["counters"], dict)

    def test_traceparent_header_joins_the_callers_trace(self, server):
        _, port, state_dir = server
        trace_id = "0af7651916cd43dd8448eb211c80319c"
        parent = "00f067aa0ba902b7"
        status, data, _ = _http_with_headers(
            port, "POST", "/campaigns", {"n": 5, "seed": 3},
            headers={"traceparent": f"00-{trace_id}-{parent}-01"},
        )
        assert status == 202
        job_id = json.loads(data)["id"]
        _wait_terminal(port, job_id)
        # The trace ref was journaled with the request record.
        records = [
            json.loads(line)
            for line in (state_dir / "requests.journal.jsonl").read_text().splitlines()
        ]
        request = next(
            r for r in records
            if r.get("kind") == "request" and r.get("task_id") == job_id
        )
        assert request["payload"]["trace"]["trace_id"] == trace_id
        assert request["payload"]["trace"]["span_id"] == int(parent, 16)

    def test_submission_without_traceparent_mints_a_trace(self, server):
        _, port, state_dir = server
        status, obj, _ = chaos._http_json(port, "POST", "/campaigns", {"n": 5})
        assert status == 202
        records = [
            json.loads(line)
            for line in (state_dir / "requests.journal.jsonl").read_text().splitlines()
        ]
        request = next(
            r for r in records
            if r.get("kind") == "request" and r.get("task_id") == obj["id"]
        )
        trace = request["payload"]["trace"]
        assert len(trace["trace_id"]) == 32

    def test_labeled_outcome_counters_surface_in_both_formats(self, server):
        _, port, _ = server
        status, obj, _ = chaos._http_json(port, "POST", "/campaigns", {"n": 5, "seed": 1})
        assert status == 202
        _wait_terminal(port, obj["id"])
        status, metrics, _ = chaos._http_json(port, "GET", "/metrics")
        labeled = [
            k for k in metrics["counters"]
            if k.startswith("server.jobs_finished{") and 'state="done"' in k
        ]
        assert labeled
        text = self._scrape(port)
        assert any(
            l.startswith("repro_server_jobs_finished_total{") and 'state="done"' in l
            for l in text.splitlines()
        )

    def test_repro_top_once_renders_a_frame(self, server):
        from repro.server.top import run_top

        _, port, _ = server
        out = io.StringIO()
        code = run_top(f"http://127.0.0.1:{port}", once=True, stream=out)
        assert code == 0
        frame = out.getvalue()
        assert "repro top" in frame
        assert "state: serving" in frame

    def test_repro_top_unreachable_exits_1(self):
        from repro.server.top import run_top

        assert run_top("http://127.0.0.1:1", once=True, stream=io.StringIO()) == 1
