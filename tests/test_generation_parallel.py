"""Equivalence harness for the parallel D&C-GEN backend.

The contract under test (ISSUE 1): for a fixed seed the multiprocess
backend yields the *identical* guess stream (hence identical multiset)
and identical :class:`DCGenStats` as the serial path for any worker
count; no leaf task's rows are ever executed twice; and a worker crash
degrades gracefully to serial execution with a warning.

These run against an *untrained* PagPassGPT: equivalence must hold for
any next-token distribution, so training is unnecessary.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generation import (
    DCGenConfig,
    DCGenerator,
    LeafTask,
    build_batches,
    free_chunks,
)
from repro.generation.parallel import CRASH_ENV, execute_batches_parallel
from repro.models import PagPassGPT
from repro.nn import GPT2Config


@pytest.fixture(scope="module")
def model():
    m = PagPassGPT(
        model_config=GPT2Config(
            vocab_size=135, block_size=32, dim=32, n_layers=1, n_heads=2, dropout=0.0
        ),
        seed=0,
    )
    # Mark fitted with a hand-made pattern distribution; weights stay random.
    m._fitted = True
    m.pattern_probs = {"L4N2": 0.5, "N6": 0.3, "L3S1N2": 0.2}
    return m


def run(model, total=1200, seed=7, **config_kwargs):
    gen = DCGenerator(model, DCGenConfig(threshold=32, **config_kwargs))
    out = gen.generate(total, seed=seed)
    return out, gen.stats


# ----------------------------------------------------------------------
# Serial/parallel equivalence
# ----------------------------------------------------------------------

class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_guess_stream_and_stats(self, model, workers):
        serial_out, serial_stats = run(model)
        parallel_out, parallel_stats = run(model, workers=workers)
        # Identical ordered stream — strictly stronger than the required
        # multiset equality, but assert both so a future relaxation of
        # the ordering guarantee keeps the contract visible.
        assert parallel_out == serial_out
        assert Counter(parallel_out) == Counter(serial_out)
        assert parallel_stats == serial_stats

    @pytest.mark.parametrize("seed", [0, 1, 99])
    def test_equivalence_across_seeds(self, model, seed):
        assert run(model, seed=seed, workers=2) == run(model, seed=seed)

    def test_equivalence_with_single_pattern_deep_division(self, model):
        """Threshold 1 forces full division (many tiny leaves)."""
        serial = DCGenerator(model, DCGenConfig(threshold=1))
        parallel = DCGenerator(model, DCGenConfig(threshold=1, workers=2))
        probs = {"N4": 1.0}
        assert parallel.generate(300, pattern_probs=probs, seed=3) == serial.generate(
            300, pattern_probs=probs, seed=3
        )
        assert parallel.stats == serial.stats

    def test_pagpassgpt_dc_wiring(self, model):
        """workers flows from DCGenConfig through the model adapter."""
        from repro.models import PagPassGPTDC

        serial = PagPassGPTDC(model, DCGenConfig(threshold=32))
        parallel = PagPassGPTDC(model, DCGenConfig(threshold=32, workers=2))
        assert parallel.generate(500, seed=5) == serial.generate(500, seed=5)

    def test_free_generation_parallel_matches_serial(self, model):
        # > GEN_BATCH so the stream spans several chunks.
        serial = model.generate(1200, seed=11)
        for workers in (2, 4):
            assert model.generate(1200, seed=11, workers=workers) == serial

    def test_spawn_backend_matches_serial(self, model):
        """The explicit weight-blob path (non-fork start methods)."""
        from repro.generation.dcgen import execute_batch

        gen = DCGenerator(model, DCGenConfig(threshold=32))
        batches = build_batches(gen.plan(300), gen.config.gen_batch)
        serial = [execute_batch(model, b, 7, model.sampler) for b in batches]
        spawned = execute_batches_parallel(
            model, batches, 7, workers=2, start_method="spawn"
        )
        assert spawned == serial


# ----------------------------------------------------------------------
# No leaf task executed twice
# ----------------------------------------------------------------------

def _coverage(batches):
    """task_id -> sorted list of (row_start, row_stop) executed."""
    cover: dict[int, list[tuple[int, int]]] = {}
    for batch in batches:
        for leaf, start, stop in batch.slices:
            cover.setdefault(leaf.task_id, []).append((start, stop))
    return {tid: sorted(spans) for tid, spans in cover.items()}


def _assert_exact_cover(leaves, batches):
    cover = _coverage(batches)
    assert set(cover) == {leaf.task_id for leaf in leaves}
    by_id = {leaf.task_id: leaf for leaf in leaves}
    for tid, spans in cover.items():
        # Spans tile [0, rows) with no gap and no overlap: every row of
        # every leaf is executed exactly once.
        cursor = 0
        for start, stop in spans:
            assert start == cursor, f"leaf {tid}: gap or overlap at row {start}"
            assert stop > start
            cursor = stop
        assert cursor == by_id[tid].rows


_GROUPS = [("L4N2", 0), ("L4N2", 2), ("N6", 0)]


class TestNoDoubleExecution:
    @settings(max_examples=60, deadline=None)
    @given(
        spec=st.lists(
            st.tuples(st.integers(1, 50), st.integers(0, len(_GROUPS) - 1)),
            min_size=1,
            max_size=40,
        ),
        gen_batch=st.integers(1, 64),
    )
    def test_batches_cover_each_leaf_exactly_once(self, spec, gen_batch):
        leaves = []
        for i, (rows, group) in enumerate(spec):
            pattern, done = _GROUPS[group]
            leaves.append(
                LeafTask(
                    task_id=i,
                    pattern=pattern,
                    prefix=np.arange(3 + done, dtype=np.int64),
                    count=float(rows),
                    rows=rows,
                    done_chars=done,
                    prompt_len=3,
                )
            )
        batches = build_batches(leaves, gen_batch)
        _assert_exact_cover(leaves, batches)
        for batch in batches:
            # Batches respect the width cap and never mix decode shapes.
            assert batch.rows <= gen_batch
            keys = {(leaf.pattern, leaf.done_chars) for leaf, _, _ in batch.slices}
            assert len(keys) == 1

    @pytest.mark.parametrize("threshold,total", [(1, 200), (16, 800), (64, 2500)])
    def test_real_plans_cover_each_leaf_exactly_once(self, model, threshold, total):
        gen = DCGenerator(model, DCGenConfig(threshold=threshold))
        leaves = gen.plan(total)
        batches = build_batches(leaves, gen.config.gen_batch)
        _assert_exact_cover(leaves, batches)

    def test_leaf_ids_are_canonical_positions(self, model):
        gen = DCGenerator(model, DCGenConfig(threshold=16))
        leaves = gen.plan(900)
        assert [leaf.task_id for leaf in leaves] == list(range(len(leaves)))

    def test_free_chunks_partition(self):
        for n in (1, 511, 512, 513, 1700):
            chunks = free_chunks(n)
            assert sum(rows for _, rows in chunks) == n
            assert [i for i, _ in chunks] == list(range(len(chunks)))


# ----------------------------------------------------------------------
# Worker crash -> graceful serial fallback
# ----------------------------------------------------------------------

class TestCrashFallback:
    def test_dcgen_falls_back_to_serial_with_warning(self, model, monkeypatch):
        serial_out, serial_stats = run(model, total=600)
        monkeypatch.setenv(CRASH_ENV, "1")
        gen = DCGenerator(model, DCGenConfig(threshold=32, workers=2))
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            out = gen.generate(600, seed=7)
        assert out == serial_out
        assert gen.stats == serial_stats

    def test_free_generation_falls_back_with_warning(self, model, monkeypatch):
        serial = model.generate(1100, seed=2)
        monkeypatch.setenv(CRASH_ENV, "1")
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            out = model.generate(1100, seed=2, workers=2)
        assert out == serial
