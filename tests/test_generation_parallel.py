"""Equivalence harness for the parallel D&C-GEN backend.

The contract under test (ISSUE 1): for a fixed seed the multiprocess
backend yields the *identical* guess stream (hence identical multiset)
and identical :class:`DCGenStats` as the serial path for any worker
count; no leaf task's rows are ever executed twice; and a worker crash
degrades gracefully to serial execution with a warning.

These run against an *untrained* PagPassGPT: equivalence must hold for
any next-token distribution, so training is unnecessary.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generation import (
    DCGenConfig,
    DCGenerator,
    LeafTask,
    build_batches,
    free_chunks,
)
from repro.generation.parallel import (
    CRASH_ENV,
    execute_batches_parallel,
    generate_free_parallel,
)
from repro.models import PagPassGPT
from repro.nn import GPT2Config
from repro.runtime import FAULT_ENV, FAULT_STATE_ENV, InjectedFault, RetryPolicy, RunJournal


@pytest.fixture(scope="module")
def model():
    m = PagPassGPT(
        model_config=GPT2Config(
            vocab_size=135, block_size=32, dim=32, n_layers=1, n_heads=2, dropout=0.0
        ),
        seed=0,
    )
    # Mark fitted with a hand-made pattern distribution; weights stay random.
    m._fitted = True
    m.pattern_probs = {"L4N2": 0.5, "N6": 0.3, "L3S1N2": 0.2}
    return m


def run(model, total=1200, seed=7, **config_kwargs):
    gen = DCGenerator(model, DCGenConfig(threshold=32, **config_kwargs))
    out = gen.generate(total, seed=seed)
    return out, gen.stats


# ----------------------------------------------------------------------
# Serial/parallel equivalence
# ----------------------------------------------------------------------

class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_guess_stream_and_stats(self, model, workers):
        serial_out, serial_stats = run(model)
        parallel_out, parallel_stats = run(model, workers=workers)
        # Identical ordered stream — strictly stronger than the required
        # multiset equality, but assert both so a future relaxation of
        # the ordering guarantee keeps the contract visible.
        assert parallel_out == serial_out
        assert Counter(parallel_out) == Counter(serial_out)
        assert parallel_stats == serial_stats

    @pytest.mark.parametrize("seed", [0, 1, 99])
    def test_equivalence_across_seeds(self, model, seed):
        assert run(model, seed=seed, workers=2) == run(model, seed=seed)

    def test_equivalence_with_single_pattern_deep_division(self, model):
        """Threshold 1 forces full division (many tiny leaves)."""
        serial = DCGenerator(model, DCGenConfig(threshold=1))
        parallel = DCGenerator(model, DCGenConfig(threshold=1, workers=2))
        probs = {"N4": 1.0}
        assert parallel.generate(300, pattern_probs=probs, seed=3) == serial.generate(
            300, pattern_probs=probs, seed=3
        )
        assert parallel.stats == serial.stats

    def test_pagpassgpt_dc_wiring(self, model):
        """workers flows from DCGenConfig through the model adapter."""
        from repro.models import PagPassGPTDC

        serial = PagPassGPTDC(model, DCGenConfig(threshold=32))
        parallel = PagPassGPTDC(model, DCGenConfig(threshold=32, workers=2))
        assert parallel.generate(500, seed=5) == serial.generate(500, seed=5)

    def test_free_generation_parallel_matches_serial(self, model):
        # > GEN_BATCH so the stream spans several chunks.
        serial = model.generate(1200, seed=11)
        for workers in (2, 4):
            assert model.generate(1200, seed=11, workers=workers) == serial

    def test_spawn_backend_matches_serial(self, model):
        """The explicit weight-blob path (non-fork start methods)."""
        from repro.generation.dcgen import execute_batch

        gen = DCGenerator(model, DCGenConfig(threshold=32))
        batches = build_batches(gen.plan(300), gen.config.gen_batch)
        serial = [execute_batch(model, b, 7, model.sampler) for b in batches]
        spawned = execute_batches_parallel(
            model, batches, 7, workers=2, start_method="spawn"
        )
        assert spawned == serial


# ----------------------------------------------------------------------
# No leaf task executed twice
# ----------------------------------------------------------------------

def _coverage(batches):
    """task_id -> sorted list of (row_start, row_stop) executed."""
    cover: dict[int, list[tuple[int, int]]] = {}
    for batch in batches:
        for leaf, start, stop in batch.slices:
            cover.setdefault(leaf.task_id, []).append((start, stop))
    return {tid: sorted(spans) for tid, spans in cover.items()}


def _assert_exact_cover(leaves, batches):
    cover = _coverage(batches)
    assert set(cover) == {leaf.task_id for leaf in leaves}
    by_id = {leaf.task_id: leaf for leaf in leaves}
    for tid, spans in cover.items():
        # Spans tile [0, rows) with no gap and no overlap: every row of
        # every leaf is executed exactly once.
        cursor = 0
        for start, stop in spans:
            assert start == cursor, f"leaf {tid}: gap or overlap at row {start}"
            assert stop > start
            cursor = stop
        assert cursor == by_id[tid].rows


_GROUPS = [("L4N2", 0), ("L4N2", 2), ("N6", 0)]


class TestNoDoubleExecution:
    @settings(max_examples=60, deadline=None)
    @given(
        spec=st.lists(
            st.tuples(st.integers(1, 50), st.integers(0, len(_GROUPS) - 1)),
            min_size=1,
            max_size=40,
        ),
        gen_batch=st.integers(1, 64),
    )
    def test_batches_cover_each_leaf_exactly_once(self, spec, gen_batch):
        leaves = []
        for i, (rows, group) in enumerate(spec):
            pattern, done = _GROUPS[group]
            leaves.append(
                LeafTask(
                    task_id=i,
                    pattern=pattern,
                    prefix=np.arange(3 + done, dtype=np.int64),
                    count=float(rows),
                    rows=rows,
                    done_chars=done,
                    prompt_len=3,
                )
            )
        batches = build_batches(leaves, gen_batch)
        _assert_exact_cover(leaves, batches)
        for batch in batches:
            # Batches respect the width cap and never mix decode shapes.
            assert batch.rows <= gen_batch
            keys = {(leaf.pattern, leaf.done_chars) for leaf, _, _ in batch.slices}
            assert len(keys) == 1

    @pytest.mark.parametrize("threshold,total", [(1, 200), (16, 800), (64, 2500)])
    def test_real_plans_cover_each_leaf_exactly_once(self, model, threshold, total):
        gen = DCGenerator(model, DCGenConfig(threshold=threshold))
        leaves = gen.plan(total)
        batches = build_batches(leaves, gen.config.gen_batch)
        _assert_exact_cover(leaves, batches)

    def test_leaf_ids_are_canonical_positions(self, model):
        gen = DCGenerator(model, DCGenConfig(threshold=16))
        leaves = gen.plan(900)
        assert [leaf.task_id for leaf in leaves] == list(range(len(leaves)))

    def test_free_chunks_partition(self):
        for n in (1, 511, 512, 513, 1700):
            chunks = free_chunks(n)
            assert sum(rows for _, rows in chunks) == n
            assert [i for i, _ in chunks] == list(range(len(chunks)))


# ----------------------------------------------------------------------
# Worker crash -> graceful serial fallback
# ----------------------------------------------------------------------

class TestCrashFallback:
    def test_dcgen_falls_back_to_serial_with_warning(self, model, monkeypatch):
        serial_out, serial_stats = run(model, total=600)
        monkeypatch.setenv(CRASH_ENV, "1")
        gen = DCGenerator(model, DCGenConfig(threshold=32, workers=2))
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            out = gen.generate(600, seed=7)
        assert out == serial_out
        assert gen.stats == serial_stats

    def test_free_generation_falls_back_with_warning(self, model, monkeypatch):
        serial = model.generate(1100, seed=2)
        monkeypatch.setenv(CRASH_ENV, "1")
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            out = model.generate(1100, seed=2, workers=2)
        assert out == serial


# ----------------------------------------------------------------------
# Empty-input guards
# ----------------------------------------------------------------------

class TestEmptyInputs:
    def test_execute_batches_parallel_empty(self, model):
        assert execute_batches_parallel(model, [], 7, workers=2) == []

    def test_generate_free_parallel_zero(self, model):
        assert generate_free_parallel(model, 0, 7, workers=2) == []
        assert generate_free_parallel(model, -5, 7, workers=2) == []

    def test_model_generate_zero(self, model):
        assert model.generate(0, seed=1, workers=2) == []

    def test_dcgen_zero_total(self, model):
        gen = DCGenerator(model, DCGenConfig(threshold=32, workers=2))
        assert gen.generate(0, seed=1) == []


# ----------------------------------------------------------------------
# Per-task retry: one bad shard never costs the others (ISSUE 2)
# ----------------------------------------------------------------------

class TestPerTaskRetry:
    def test_single_worker_failure_retries_only_failed_shard(
        self, model, tmp_path, monkeypatch, recwarn
    ):
        gen = DCGenerator(model, DCGenConfig(threshold=32))
        batches = build_batches(gen.plan(1200), gen.config.gen_batch)
        assert len(batches) > 2
        from repro.generation.dcgen import execute_batch

        serial = [execute_batch(model, b, 7, model.sampler) for b in batches]

        # One-shot crash of the worker running task 1: its retry succeeds.
        monkeypatch.setenv(FAULT_ENV, "crash:worker:1")
        monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path))
        out = execute_batches_parallel(model, batches, 7, workers=2)

        assert out == serial
        # No degradation to the serial-fallback path...
        assert not [w for w in recwarn if "falling back" in str(w.message)]
        # ...and exactly one extra execution: the failed shard's retry.
        calls = (tmp_path / "calls.log").read_text().splitlines()
        worker_calls = [c for c in calls if c.startswith("worker:")]
        assert len(worker_calls) == len(batches) + 1
        assert worker_calls.count("worker:1") == 2

    def test_hung_worker_is_killed_and_task_retried(self, model, tmp_path, monkeypatch):
        gen = DCGenerator(model, DCGenConfig(threshold=32))
        batches = build_batches(gen.plan(600), gen.config.gen_batch)
        from repro.generation.dcgen import execute_batch

        serial = [execute_batch(model, b, 7, model.sampler) for b in batches]

        monkeypatch.setenv(FAULT_ENV, "hang:worker:0")
        monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path))
        policy = RetryPolicy(max_retries=2, backoff_base=0.0, task_timeout=3.0)
        out = execute_batches_parallel(model, batches, 7, workers=2, policy=policy)
        assert out == serial


# ----------------------------------------------------------------------
# Journaled crash -> resume, byte-identical stream (ISSUE 2 tentpole)
# ----------------------------------------------------------------------

class TestJournalResume:
    TOTAL = 1200

    def _clean(self, model):
        return run(model, total=self.TOTAL)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_dcgen_crash_then_resume_is_byte_identical(
        self, model, tmp_path, monkeypatch, workers
    ):
        clean_out, clean_stats = self._clean(model)
        journal_path = tmp_path / "run.journal.jsonl"

        monkeypatch.setenv(FAULT_ENV, "crash:leaf_batch:3")
        gen = DCGenerator(model, DCGenConfig(threshold=32, workers=workers))
        with pytest.raises(InjectedFault):
            gen.generate(self.TOTAL, seed=7, journal=journal_path)

        # Exactly the 3 pre-crash batches are journaled and survive.
        journal = RunJournal.open(journal_path)
        assert len(journal.completed("leaf_batch")) == 3
        journal.close()

        monkeypatch.delenv(FAULT_ENV)
        resumed = DCGenerator(model, DCGenConfig(threshold=32, workers=workers))
        out = resumed.generate(self.TOTAL, seed=7, journal=journal_path, resume=True)
        assert out == clean_out
        assert resumed.stats == clean_stats

    def test_resume_with_different_run_identity_rejected(self, model, tmp_path, monkeypatch):
        journal_path = tmp_path / "run.journal.jsonl"
        monkeypatch.setenv(FAULT_ENV, "crash:leaf_batch:2")
        gen = DCGenerator(model, DCGenConfig(threshold=32))
        with pytest.raises(InjectedFault):
            gen.generate(self.TOTAL, seed=7, journal=journal_path)
        monkeypatch.delenv(FAULT_ENV)

        from repro.runtime import JournalError

        with pytest.raises(JournalError, match="belongs to a different run"):
            gen.generate(self.TOTAL, seed=8, journal=journal_path, resume=True)

    def test_free_generation_crash_then_resume(self, model, tmp_path, monkeypatch):
        clean = model.generate(1200, seed=11)  # 3 chunks of GEN_BATCH=512
        journal_path = tmp_path / "free.journal.jsonl"

        monkeypatch.setenv(FAULT_ENV, "crash:free_chunk:1")
        with pytest.raises(InjectedFault):
            model.generate(1200, seed=11, journal=journal_path)

        journal = RunJournal.open(journal_path)
        assert len(journal.completed("free_chunk")) == 1
        journal.close()

        monkeypatch.delenv(FAULT_ENV)
        assert model.generate(1200, seed=11, journal=journal_path, resume=True) == clean

    def test_journal_on_clean_run_is_harmless(self, model, tmp_path):
        clean_out, _ = self._clean(model)
        journal_path = tmp_path / "run.journal.jsonl"
        gen = DCGenerator(model, DCGenConfig(threshold=32))
        assert gen.generate(self.TOTAL, seed=7, journal=journal_path) == clean_out
        assert journal_path.exists()  # caller decides when to discard
