"""End-to-end experiment-driver tests at tiny scale.

These exercise the same code paths as the benchmark suite, on corpora and
models small enough for CI.  They assert *mechanics* (structure, ranges,
protocol invariants), not paper-shape quality — that is the benches' job.
"""

import pytest

from repro.evaluation import (
    ModelLab,
    cross_site_test,
    distance_growth,
    distance_test,
    pattern_guided_test,
    table2_dataset_characteristics,
    table3_guided_samples,
    trawling_test,
)
from repro.tokenizer import Pattern


@pytest.fixture(scope="module")
def lab(tmp_path_factory):
    return ModelLab(scale="tiny", cache_dir=tmp_path_factory.mktemp("exp-cache"), seed=0)


class TestTable2:
    def test_rows(self, lab):
        rows = table2_dataset_characteristics(lab)
        assert [r["name"] for r in rows] == ["rockyou", "linkedin", "phpbb", "myspace", "yahoo"]
        for row in rows:
            assert 0 < row["cleaned"] <= row["unique"]
            assert 0.5 < row["retention"] <= 1.0
        retention = {r["name"]: r["retention"] for r in rows}
        assert retention["linkedin"] == min(retention.values())


class TestGuidedTest:
    def test_structure(self, lab):
        result = pattern_guided_test(lab, top_per_category=2, guesses_per_pattern=200)
        assert result.category_hr
        for n_seg, by_model in result.category_hr.items():
            assert set(by_model) == {"PassGPT", "PagPassGPT"}
            assert all(0.0 <= v <= 1.0 for v in by_model.values())
            assert len(result.targets[n_seg]) <= 2
        for per_pattern in result.pattern_hr.values():
            for pattern_str, by_model in per_pattern.items():
                Pattern.parse(pattern_str)  # must be valid
                assert all(0.0 <= v <= 1.0 for v in by_model.values())

    def test_targets_come_from_test_corpus(self, lab):
        result = pattern_guided_test(lab, top_per_category=2, guesses_per_pattern=50)
        groups = lab.site_data("rockyou").test_corpus.patterns_by_segments()
        for n_seg, targets in result.targets.items():
            available = {p for p, _ in groups[n_seg]}
            assert set(targets) <= available


class TestTable3:
    def test_samples_and_integrity(self, lab):
        out = table3_guided_samples(lab, n_show=5, n_score=100)
        assert set(out["samples"]) == {"PassGPT", "PagPassGPT"}
        for by_pattern in out["samples"].values():
            for pattern_str, samples in by_pattern.items():
                assert len(samples) == 5
                pattern = Pattern.parse(pattern_str)
                assert all(pattern.matches(pw) for pw in samples)
        assert all(0.0 <= v <= 1.0 for v in out["word_integrity"].values())


class TestTrawling:
    def test_structure(self, lab):
        result = trawling_test(
            lab, budgets=(200, 500), model_names=("PCFG", "PagPassGPT", "PagPassGPT-D&C")
        )
        assert result.budgets == [200, 500]
        for name in ("PCFG", "PagPassGPT", "PagPassGPT-D&C"):
            assert len(result.hit_rates[name]) == 2
            assert all(0 <= h <= 1 for h in result.hit_rates[name])
            assert all(0 <= r < 1 for r in result.repeat_rates[name])
            # Hit rate on a prefix can never exceed the full stream's.
            assert result.hit_rates[name][0] <= result.hit_rates[name][1] + 1e-9


class TestDistances:
    def test_table5_structure(self, lab):
        out = distance_test(lab, budget=500, model_names=("PCFG", "Markov"))
        assert set(out) == {"PCFG", "Markov"}
        for d in out.values():
            assert 0 <= d["length_distance"] <= 3
            assert 0 <= d["pattern_distance"] <= 3

    def test_fig11_structure(self, lab):
        out = distance_growth(lab, budgets=(200, 500))
        assert out["budgets"] == [200, 500]
        assert len(out["length_distance"]) == 2
        assert len(out["pattern_distance"]) == 2


class TestCrossSite:
    def test_structure(self, lab):
        out = cross_site_test(
            lab,
            train_sites=("rockyou",),
            eval_sites=("myspace",),
            budget=500,
            model_names=("PagPassGPT", "PagPassGPT-D&C"),
        )
        assert set(out) == {"rockyou"}
        assert set(out["rockyou"]) == {"PagPassGPT", "PagPassGPT-D&C"}
        assert 0 <= out["rockyou"]["PagPassGPT"]["myspace"] <= 1
