"""Report-rendering tests."""

from repro.evaluation import percent, render_series, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["Model", "Hit"], [["PassGPT", 0.4193], ["PagPassGPT", 0.4875]], title="Table IV"
        )
        lines = text.splitlines()
        assert lines[0] == "Table IV"
        assert "Model" in lines[1] and "Hit" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert "PassGPT" in lines[3]
        assert "0.4875" in lines[4]

    def test_column_widths_consistent(self):
        text = render_table(["a", "bbbb"], [["xxxxxx", 1], ["y", 22]])
        lines = text.splitlines()
        pipe_positions = [line.index("|") for line in lines if "|" in line]
        assert len(set(pipe_positions)) == 1


class TestRenderSeries:
    def test_format(self):
        out = render_series("PagPassGPT", [(1000, 0.01), (10000, 0.0644)])
        assert out.startswith("PagPassGPT:")
        assert "1000:0.0100" in out
        assert "10000:0.0644" in out


class TestPercent:
    def test_formats_like_paper(self):
        assert percent(0.5363) == "53.63%"
        assert percent(0.0928) == "9.28%"


class TestRenderBarChart:
    def test_bars_scale_to_global_max(self):
        from repro.evaluation import render_bar_chart

        out = render_bar_chart(
            {"A": [(1, 0.5)], "B": [(1, 1.0)]}, width=10, value_format="{:.1f}"
        )
        lines = [l for l in out.splitlines() if "|" in l]
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title_and_values(self):
        from repro.evaluation import render_bar_chart

        out = render_bar_chart({"X": [(7, 0.25)]}, title="Fig")
        assert out.startswith("Fig")
        assert "25.00%" in out

    def test_empty_rejected(self):
        import pytest

        from repro.evaluation import render_bar_chart

        with pytest.raises(ValueError):
            render_bar_chart({})
