"""Unit tests for the telemetry subsystem (ISSUE 5).

Covers the four layers in isolation — metrics registry, JSONL event
logging, span tracing, heartbeat rendering — plus the aggregation and
invariant-check logic over hand-built event streams.  Campaign-level
integration (real D&C-GEN runs, workers, crash/resume) lives in
``tests/test_telemetry_campaign.py``.
"""

from __future__ import annotations

import io
import json
import logging

import numpy as np
import pytest

from repro import telemetry
from repro.runtime import AppendStream
from repro.telemetry.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_and_gauge_accumulate(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        reg.gauge("g").set(2.5)
        assert reg.values() == {"a": 5, "g": 2.5}

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_histogram_log_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("rows")
        for v in (1, 2, 3, 1000, 10**9):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["total"] == 1 + 2 + 3 + 1000 + 10**9
        # 1 and 2 share the <=2 buckets (1 lands in <=1), 3 in <=4,
        # 1000 in <=1024, 1e9 in the unbounded overflow bucket.
        assert snap["buckets"]["1"] == 1
        assert snap["buckets"]["2"] == 1
        assert snap["buckets"]["4"] == 1
        assert snap["buckets"]["1024"] == 1
        assert snap["buckets"]["inf"] == 1

    def test_histogram_snapshot_has_no_wall_clock(self):
        """Two runs observing the same values snapshot identically."""
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            reg.counter("n").inc(3)
            reg.histogram("h").observe(7)
        assert a.snapshot() == b.snapshot()

    def test_register_group_polled_at_snapshot(self):
        reg = MetricsRegistry()
        state = {"calls": 0}
        reg.register_group("inf", lambda: dict(state))
        state["calls"] = 9
        assert reg.values()["inf.calls"] == 9
        assert reg.snapshot()["groups"]["inf"] == {"calls": 9}

    def test_register_group_replaces(self):
        reg = MetricsRegistry()
        reg.register_group("inf", lambda: {"calls": 1})
        reg.register_group("inf", lambda: {"calls": 2})
        assert reg.values()["inf.calls"] == 2

    def test_values_delta_only_nonzero(self):
        before = {"a": 2, "b": 5}
        after = {"a": 2, "b": 9, "c": 1}
        assert telemetry.values_delta(before, after) == {"b": 4, "c": 1}


# ----------------------------------------------------------------------
# AppendStream + JSONL logger
# ----------------------------------------------------------------------

class TestLogger:
    def test_append_stream_survives_reopen(self, tmp_path):
        path = tmp_path / "a.jsonl"
        with AppendStream(path) as s:
            s.write_line("one")
        with AppendStream(path) as s:
            s.write_line("two")
        assert path.read_text().splitlines() == ["one", "two"]

    def test_emit_writes_complete_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        logger = telemetry.TelemetryLogger(path, run_id="r1", worker=7, clock=lambda: 123.0)
        logger.emit("hello", level="info", x=1)
        logger.close()
        [record] = telemetry.read_events(path)
        assert record["event"] == "hello"
        assert record["run_id"] == "r1"
        assert record["worker"] == 7
        assert record["ts"] == 123.0
        assert record["fields"] == {"x": 1}
        assert isinstance(record["pid"], int)

    def test_logger_level_filters_capture(self, tmp_path):
        path = tmp_path / "t.jsonl"
        logger = telemetry.TelemetryLogger(path, level="warning")
        logger.emit("quiet", level="debug")
        logger.emit("loud", level="error")
        logger.close()
        assert [r["event"] for r in telemetry.read_events(path)] == ["loud"]

    def test_numpy_scalars_are_json_safe(self, tmp_path):
        path = tmp_path / "t.jsonl"
        logger = telemetry.TelemetryLogger(path)
        logger.emit("np", n=np.int64(3), f=np.float64(0.5))
        logger.close()
        [record] = telemetry.read_events(path)
        assert record["fields"] == {"n": 3, "f": 0.5}

    def test_read_events_skips_torn_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        logger = telemetry.TelemetryLogger(path)
        logger.emit("good")
        logger.close()
        with open(path, "a") as fh:
            fh.write('{"event": "torn", "fie')  # crash mid-append
        assert [r["event"] for r in telemetry.read_events(path)] == ["good"]

    def test_unknown_level_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            telemetry.TelemetryLogger(tmp_path / "t.jsonl", level="loud")

    def test_log_level_from_env(self, monkeypatch):
        monkeypatch.delenv(telemetry.LOG_ENV, raising=False)
        assert telemetry.log_level_from_env() == "warning"
        monkeypatch.setenv(telemetry.LOG_ENV, "debug")
        assert telemetry.log_level_from_env() == "debug"
        monkeypatch.setenv(telemetry.LOG_ENV, "nonsense")
        assert telemetry.log_level_from_env() == "warning"

    def test_configure_logging_bridge_reaches_stream(self, tmp_path):
        stream = io.StringIO()
        telemetry.configure_logging("info", stream=stream)
        try:
            logger = telemetry.TelemetryLogger(tmp_path / "t.jsonl")
            logger.emit("bridged", level="info", k=1)
            logger.emit("hidden", level="debug")
            logger.close()
            text = stream.getvalue()
            assert "bridged" in text
            assert "hidden" not in text
        finally:
            root = logging.getLogger("repro")
            for handler in list(root.handlers):
                root.removeHandler(handler)

    def test_configure_logging_idempotent(self):
        stream = io.StringIO()
        telemetry.configure_logging("info", stream=stream)
        telemetry.configure_logging("info", stream=stream)
        root = logging.getLogger("repro")
        try:
            assert len(root.handlers) == 1
        finally:
            for handler in list(root.handlers):
                root.removeHandler(handler)


# ----------------------------------------------------------------------
# Sessions and spans
# ----------------------------------------------------------------------

class TestTracing:
    def test_no_session_is_a_noop(self):
        telemetry.emit("dropped")  # must not raise
        with telemetry.trace("nothing") as span:
            span.set(irrelevant=1)  # null span swallows attrs

    def test_span_records_attrs_duration_and_delta(self, tmp_path):
        with telemetry.session(tmp_path, run_id="t"):
            with telemetry.trace("work", batch=3) as span:
                telemetry.get_registry().counter("widgets").inc(5)
                span.set(done=True)
        events = telemetry.read_events(tmp_path / "telemetry.jsonl")
        [span_rec] = [e for e in events if e["event"] == "span"]
        fields = span_rec["fields"]
        assert fields["name"] == "work"
        assert fields["attrs"] == {"batch": 3, "done": True}
        assert fields["delta"]["widgets"] == 5
        assert fields["duration_s"] >= 0

    def test_spans_nest_via_parent_id(self, tmp_path):
        with telemetry.session(tmp_path):
            with telemetry.trace("outer"):
                with telemetry.trace("inner"):
                    pass
        events = telemetry.read_events(tmp_path / "telemetry.jsonl")
        spans = {e["fields"]["name"]: e["fields"] for e in events if e["event"] == "span"}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None

    def test_worker_session_uses_worker_file(self, tmp_path):
        sess = telemetry.start_session(tmp_path, worker=42)
        telemetry.emit("from-worker")
        telemetry.end_session()
        assert sess.logger.path.name == "telemetry-worker-42.jsonl"
        events = telemetry.read_events(tmp_path / "telemetry-worker-42.jsonl")
        assert [e["event"] for e in events if e["event"] == "from-worker"]

    def test_end_session_emits_metrics_snapshot(self, tmp_path):
        telemetry.start_session(tmp_path)
        telemetry.get_registry().counter("closing").inc(2)
        telemetry.end_session()
        events = telemetry.read_events(tmp_path / "telemetry.jsonl")
        [snap] = [e for e in events if e["event"] == "metrics_snapshot"]
        assert snap["fields"]["metrics"]["closing"] == 2

    def test_session_metrics_are_deltas_from_start_mark(self, tmp_path):
        telemetry.get_registry().counter("preexisting").inc(100)
        with telemetry.session(tmp_path) as sess:
            telemetry.get_registry().counter("preexisting").inc(1)
            assert sess.metrics_delta().get("preexisting") == 1


# ----------------------------------------------------------------------
# Heartbeat
# ----------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestHeartbeat:
    def test_format_eta(self):
        assert telemetry.format_eta(41) == "41s"
        assert telemetry.format_eta(200) == "3m20s"
        assert telemetry.format_eta(2 * 3600 + 5 * 60) == "2h05m"

    def test_render_line(self):
        clock = FakeClock()
        hb = telemetry.Heartbeat(50_000, clock=clock, enabled=True, stream=io.StringIO())
        clock.t = 4.0
        line = hb.render(14_200)
        assert line.startswith("guesses 14200/50000 (28.4%)")
        assert "/s ETA" in line

    def test_update_throttles(self):
        clock = FakeClock()
        stream = io.StringIO()
        hb = telemetry.Heartbeat(100, clock=clock, enabled=True, stream=stream, interval=0.5)
        for i in range(50):
            clock.t = i * 0.01  # 50 updates inside one interval
            hb.update(i)
        assert hb.rendered == 1

    def test_final_update_always_renders(self):
        clock = FakeClock()
        stream = io.StringIO()
        hb = telemetry.Heartbeat(10, clock=clock, enabled=True, stream=stream)
        hb.update(1)
        hb.update(10)  # done == total bypasses throttling
        assert hb.rendered == 2
        hb.close()
        assert stream.getvalue().endswith("\n")

    def test_disabled_writes_nothing(self):
        stream = io.StringIO()
        hb = telemetry.Heartbeat(10, enabled=False, stream=stream)
        hb.update(5)
        hb.close()
        assert stream.getvalue() == ""

    def test_non_tty_stream_defaults_off(self):
        hb = telemetry.Heartbeat(10, stream=io.StringIO())
        assert hb.enabled is False

    def test_instant_first_update_has_no_absurd_rate(self):
        """Zero elapsed time renders 0/s, not done/epsilon, and never raises."""
        clock = FakeClock()
        hb = telemetry.Heartbeat(100, clock=clock, enabled=True, stream=io.StringIO())
        line = hb.render(40)  # same clock tick as construction
        assert "(40.0%) 0/s ETA ?" in line

    def test_zero_total_renders(self):
        clock = FakeClock()
        hb = telemetry.Heartbeat(0, clock=clock, enabled=True, stream=io.StringIO())
        clock.t = 1.0
        assert hb.render(0) == "guesses 0/0 (100.0%) 0/s ETA ?"

    def test_zero_rate_has_unknown_eta(self):
        """No progress yet: the ETA is '?' rather than a division by zero."""
        clock = FakeClock()
        hb = telemetry.Heartbeat(100, clock=clock, enabled=True, stream=io.StringIO())
        clock.t = 5.0
        line = hb.render(0)
        assert line == "guesses 0/100 (0.0%) 0/s ETA ?"


# ----------------------------------------------------------------------
# Aggregation and invariant checks
# ----------------------------------------------------------------------

def _write_stream(path, records):
    with AppendStream(path) as stream:
        for record in records:
            stream.write_line(json.dumps(record))


def _rec(event, fields, worker=None, ts=1.0):
    return {"ts": ts, "run_id": "r", "pid": 1, "worker": worker,
            "event": event, "level": "info", "fields": fields}


def _span(name, attrs=None, delta=None, duration=0.5, worker=None):
    return _rec("span", {"name": name, "span_id": 0, "parent_id": None,
                         "duration_s": duration, "attrs": attrs or {},
                         "delta": delta or {}}, worker=worker)


class TestAggregate:
    def _campaign(self, tmp_path):
        """Hand-built two-worker campaign matching its plan exactly."""
        _write_stream(tmp_path / "telemetry.jsonl", [
            _rec("campaign_plan", {"kind": "dcgen", "requested": 20, "rows": 20,
                                   "n_tasks": 2, "model_calls": 6,
                                   "prompt_cache_hits": 2}),
            _span("campaign", duration=2.0),
        ])
        _write_stream(tmp_path / "telemetry-worker-1.jsonl", [
            _span("dcgen.execute_batch", attrs={"guesses": 12, "model_calls": 4},
                  delta={"prompt_cache.hits": 1}, worker=1),
        ])
        _write_stream(tmp_path / "telemetry-worker-2.jsonl", [
            _span("dcgen.execute_batch", attrs={"guesses": 8, "model_calls": 2},
                  delta={"prompt_cache.hits": 1}, worker=2),
        ])
        return telemetry.summarize_campaign(tmp_path)

    def test_summary_merges_worker_streams(self, tmp_path):
        summary = self._campaign(tmp_path)
        assert summary["total_guesses"] == 20
        assert summary["executed"]["model_calls"] == 6
        assert summary["executed"]["prompt_cache_hits"] == 2
        assert set(summary["workers"]) == {
            "telemetry-worker-1.jsonl", "telemetry-worker-2.jsonl"
        }
        assert summary["workers"]["telemetry-worker-1.jsonl"]["guesses"] == 12
        assert summary["guesses_per_s"] == 10.0
        assert telemetry.check_summary(summary) == []

    def test_check_flags_lost_guesses(self, tmp_path):
        summary = self._campaign(tmp_path)
        summary["executed"]["guesses"] -= 5
        summary["total_guesses"] -= 5
        failures = telemetry.check_summary(summary)
        assert any("guess count" in f for f in failures)

    def test_check_flags_dededuplicated_cache(self, tmp_path):
        summary = self._campaign(tmp_path)
        summary["executed"]["prompt_cache_hits"] = 0
        failures = telemetry.check_summary(summary)
        assert any("cache" in f for f in failures)

    def test_unrecovered_failure_is_unaccounted(self, tmp_path):
        _write_stream(tmp_path / "telemetry.jsonl", [
            _rec("task_failed", {"context": "c", "task": 3, "error": "boom", "attempt": 0}),
            _rec("task_failed", {"context": "c", "task": 4, "error": "boom", "attempt": 0}),
            _rec("task_recovered", {"context": "c", "task": 3}),
        ])
        summary = telemetry.summarize_campaign(tmp_path)
        assert summary["faults"]["task_failed"] == 2
        assert summary["faults"]["task_recovered"] == 1
        assert summary["faults"]["unaccounted"] == ["4"]
        failures = telemetry.check_summary(summary)
        assert any("unaccounted" in f for f in failures)

    def test_resumed_campaign_may_exceed_plan(self, tmp_path):
        """Crash-before-journal can re-execute one batch: total >= rows."""
        _write_stream(tmp_path / "telemetry.jsonl", [
            _rec("campaign_plan", {"kind": "dcgen", "rows": 10, "n_tasks": 2,
                                   "model_calls": 4, "prompt_cache_hits": 2}),
            _rec("campaign_resume", {"tasks": 1, "guesses": 6, "model_calls": 2}),
            _span("dcgen.execute_batch", attrs={"guesses": 6, "model_calls": 2}),
        ])
        summary = telemetry.summarize_campaign(tmp_path)
        assert summary["total_guesses"] == 12  # one batch ran twice
        assert telemetry.check_summary(summary) == []

    def test_stable_events_strip_nondeterminism(self):
        records = [
            _rec("span", {"name": "s", "duration_s": 1.23, "attrs": {"a": 1}}, ts=99.0),
        ]
        [stable] = telemetry.stable_events(records)
        assert "ts" not in stable and "pid" not in stable and "worker" not in stable
        assert "duration_s" not in stable["fields"]
        assert stable["fields"]["attrs"] == {"a": 1}

    def test_render_summary_mentions_key_numbers(self, tmp_path):
        summary = self._campaign(tmp_path)
        text = telemetry.render_summary(summary)
        assert "Planned vs actual" in text
        assert "worker skew" in text
        assert "20" in text


# ----------------------------------------------------------------------
# Histogram quantiles and metric labels
# ----------------------------------------------------------------------

class TestQuantiles:
    def test_empty_histogram_is_none(self):
        assert MetricsRegistry().histogram("h").quantile(0.5) is None

    def test_out_of_range_rejected(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1)
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                h.quantile(bad)

    def test_single_bucket_interpolates_within_bounds(self):
        h = MetricsRegistry().histogram("h")
        for _ in range(10):
            h.observe(3)  # lands in the (2, 4] bucket
        assert 2.0 <= h.quantile(0.5) <= 4.0
        assert 2.0 <= h.quantile(0.99) <= 4.0

    def test_quantiles_are_monotone(self):
        h = MetricsRegistry().histogram("h")
        for v in (1, 2, 3, 10, 100, 1000, 5000):
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)

    def test_spread_lands_in_the_right_decade(self):
        h = MetricsRegistry().histogram("h")
        for v in range(1, 101):  # uniform 1..100
            h.observe(v)
        assert h.quantile(0.5) <= 128      # p50 within the <=64/128 region
        assert h.quantile(0.95) >= 64      # p95 near the top
        assert h.quantile(0.95) <= 128

    def test_overflow_bucket_clamps_to_top_bound(self):
        h = MetricsRegistry().histogram("h", max_exponent=4)
        h.observe(10**9)  # beyond every bound -> overflow bucket
        assert h.quantile(0.5) == float(h.bounds[-1])


class TestLabeledMetrics:
    def test_labeled_key_is_sorted_and_stable(self):
        from repro.telemetry.metrics import labeled_key

        assert labeled_key("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'
        assert labeled_key("m", None) == "m"
        assert labeled_key("m", {}) == "m"

    def test_label_variants_are_distinct_metrics(self):
        reg = MetricsRegistry()
        reg.counter("jobs", labels={"state": "done"}).inc(3)
        reg.counter("jobs", labels={"state": "failed"}).inc()
        values = reg.values()
        assert values['jobs{state="done"}'] == 3
        assert values['jobs{state="failed"}'] == 1

    def test_same_labels_same_object(self):
        reg = MetricsRegistry()
        a = reg.histogram("h", labels={"route": "/status"})
        b = reg.histogram("h", labels={"route": "/status"})
        assert a is b
        assert a is not reg.histogram("h", labels={"route": "/metrics"})


# ----------------------------------------------------------------------
# Prometheus text exposition (unit level; endpoint tests in test_server)
# ----------------------------------------------------------------------

class TestPrometheusRender:
    def test_counter_total_and_type(self):
        reg = MetricsRegistry()
        reg.counter("journal.records").inc(7)
        text = telemetry.render_prometheus(reg)
        assert "# TYPE repro_journal_records_total counter\n" in text
        assert "repro_journal_records_total 7\n" in text

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("fleet.busy").set(2)
        text = telemetry.render_prometheus(reg)
        assert "# TYPE repro_fleet_busy gauge\n" in text
        assert "repro_fleet_busy 2\n" in text

    def test_label_variants_contiguous_under_one_type(self):
        reg = MetricsRegistry()
        reg.counter("jobs", labels={"state": "done"}).inc()
        reg.counter("other").inc()
        reg.counter("jobs", labels={"state": "failed"}).inc()
        lines = telemetry.render_prometheus(reg).splitlines()
        type_idx = lines.index("# TYPE repro_jobs_total counter")
        assert lines[type_idx + 1].startswith('repro_jobs_total{state="done"}')
        assert lines[type_idx + 2].startswith('repro_jobs_total{state="failed"}')

    def test_histogram_grammar(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", labels={"route": "/x"})
        for v in (1, 3, 500):
            h.observe(v)
        text = telemetry.render_prometheus(reg)
        assert "# TYPE repro_lat histogram\n" in text
        assert 'repro_lat_bucket{route="/x",le="+Inf"} 3\n' in text
        assert 'repro_lat_count{route="/x"} 3\n' in text
        assert 'repro_lat_sum{route="/x"} 504' in text
        # le buckets are cumulative.
        bucket_counts = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_lat_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)

    def test_group_values_are_untyped(self):
        reg = MetricsRegistry()
        reg.register_group("inference", lambda: {"calls": 4})
        text = telemetry.render_prometheus(reg)
        assert "# TYPE repro_inference_calls untyped\n" in text
        assert "repro_inference_calls 4\n" in text

    def test_name_sanitization_and_label_escaping(self):
        from repro.telemetry.prometheus import escape_label_value, sanitize_name

        assert sanitize_name("server.request_ms") == "repro_server_request_ms"
        assert sanitize_name("weird-name!") == "repro_weird_name_"
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


# ----------------------------------------------------------------------
# Heartbeat structured events
# ----------------------------------------------------------------------

class TestHeartbeatEvents:
    def _events(self, tmp_path):
        return [
            e for e in telemetry.read_events(tmp_path / "telemetry.jsonl")
            if e["event"] == "heartbeat"
        ]

    def test_headless_update_emits_event(self, tmp_path):
        clock = FakeClock()
        with telemetry.session(tmp_path, run_id="hb"):
            hb = telemetry.Heartbeat(100, clock=clock, enabled=False)
            clock.t = 2.0
            hb.update(50)
        [event] = self._events(tmp_path)
        fields = event["fields"]
        assert fields["done"] == 50 and fields["total"] == 100
        assert fields["rate"] == pytest.approx(25.0)
        assert fields["eta_s"] == pytest.approx(2.0)
        assert event["level"] == "debug"

    def test_events_obey_the_throttle(self, tmp_path):
        clock = FakeClock()
        with telemetry.session(tmp_path, run_id="hb"):
            hb = telemetry.Heartbeat(
                100, clock=clock, enabled=False, interval=0.5
            )
            for i in range(50):
                clock.t = i * 0.01
                hb.update(i)
        assert len(self._events(tmp_path)) == 1

    def test_heartbeat_events_dropped_from_stable_view(self, tmp_path):
        clock = FakeClock()
        with telemetry.session(tmp_path, run_id="hb"):
            telemetry.Heartbeat(10, clock=clock, enabled=False).update(5)
        events = telemetry.read_events(tmp_path / "telemetry.jsonl")
        assert any(e["event"] == "heartbeat" for e in events)
        assert not any(
            e["event"] == "heartbeat" for e in telemetry.stable_events(events)
        )


class TestStableTraceFields:
    def test_trace_identity_fields_stripped(self):
        records = [
            _rec("span", {"name": "s", "span_id": 12345, "parent_id": 99,
                          "trace_id": "ab" * 16, "duration_s": 0.5,
                          "attrs": {"a": 1}}),
            _rec("trace_context", {"trace_id": "ab" * 16, "remote_parent": 7}),
        ]
        stable = telemetry.stable_events(records)
        for record in stable:
            for key in ("span_id", "parent_id", "trace_id", "remote_parent"):
                assert key not in record["fields"]


# ----------------------------------------------------------------------
# Span duration percentiles in the merged summary
# ----------------------------------------------------------------------

class TestSpanPercentiles:
    def test_summary_carries_percentiles(self, tmp_path):
        _write_stream(tmp_path / "telemetry.jsonl", [
            _rec("campaign_plan", {"kind": "dcgen", "requested": 1, "rows": 1,
                                   "n_tasks": 1, "model_calls": 1,
                                   "prompt_cache_hits": 0}),
            _span("dcgen.execute_batch", attrs={"guesses": 1, "model_calls": 1},
                  duration=0.010),
            _span("dcgen.execute_batch", attrs={"guesses": 0, "model_calls": 0},
                  duration=0.020),
            _span("campaign", duration=0.5),
        ])
        summary = telemetry.summarize_campaign(tmp_path)
        agg = summary["spans"]["dcgen.execute_batch"]
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert key in agg
            assert agg[key] > 0
        assert agg["p50_ms"] <= agg["p95_ms"] <= agg["p99_ms"]
        text = telemetry.render_summary(summary)
        assert "p95" in text
