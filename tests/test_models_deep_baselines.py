"""PassGAN / VAEPass / PassFlow tests (mechanics + family traits)."""

import numpy as np
import pytest

from repro.datasets import build_corpus
from repro.models import PassFlow, PassGAN, VAEPass
from repro.models.seq_encoding import (
    ALPHABET,
    PAD_INDEX,
    SEQ_LEN,
    VOCAB_SIZE,
    decode_indices,
    encode_indices,
    encode_onehot,
)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(0)
    words = ["hello", "world", "passwd", "monkey", "dragon", "summer"]
    pws = list({w + str(rng.integers(10, 99)) for w in words for _ in range(12)})
    return build_corpus(pws + ["123456", "qwerty", "abcdef"])


class TestSeqEncoding:
    def test_roundtrip(self):
        pws = ["abc", "Pass123$", "x" * 12, ""]
        assert decode_indices(encode_indices(pws)) == pws

    def test_padding(self):
        idx = encode_indices(["ab"])
        assert (idx[0, 2:] == PAD_INDEX).all()

    def test_onehot_shape_and_content(self):
        oh = encode_onehot(["ab"])
        assert oh.shape == (1, SEQ_LEN * VOCAB_SIZE)
        grid = oh.reshape(SEQ_LEN, VOCAB_SIZE)
        assert grid.sum() == SEQ_LEN  # exactly one hot per position
        assert grid[0, ALPHABET.index("a")] == 1.0

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            encode_indices(["x" * 13])

    def test_bad_char_rejected(self):
        with pytest.raises(ValueError):
            encode_indices(["ñ"])


class TestPassGAN:
    def test_fit_and_generate(self, corpus):
        model = PassGAN(epochs=2, batch_size=32, seed=0).fit(corpus)
        out = model.generate(50, seed=0)
        assert len(out) == 50
        assert all(len(pw) <= 12 for pw in out)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PassGAN().generate(5)

    def test_critic_weights_clipped(self, corpus):
        model = PassGAN(epochs=1, batch_size=32, clip=0.01, seed=0).fit(corpus)
        for p in model.critic.parameters():
            assert np.abs(p.data).max() <= 0.01 + 1e-6

    def test_deterministic_per_seed(self, corpus):
        model = PassGAN(epochs=1, batch_size=32, seed=0).fit(corpus)
        assert model.generate(20, seed=3) == model.generate(20, seed=3)

    def test_independent_sampling_trait(self, corpus):
        """Same latent seed -> same passwords; the GAN has no memory of
        what it already emitted (the paper's repeat-rate critique)."""
        model = PassGAN(epochs=1, batch_size=32, seed=0).fit(corpus)
        a = model.generate(30, seed=1)
        b = model.generate(30, seed=1)
        assert a == b


class TestVAEPass:
    def test_fit_loss_decreases(self, corpus):
        model = VAEPass(epochs=4, batch_size=32, seed=0).fit(corpus)
        assert model.losses[-1] < model.losses[0]

    def test_generate(self, corpus):
        model = VAEPass(epochs=2, batch_size=32, seed=0).fit(corpus)
        out = model.generate(40, seed=0)
        assert len(out) == 40
        assert all(len(pw) <= 12 for pw in out)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            VAEPass().generate(5)


class TestPassFlow:
    def test_fit_nll_decreases(self, corpus):
        model = PassFlow(epochs=4, batch_size=32, seed=0).fit(corpus)
        assert model.losses[-1] < model.losses[0]

    def test_generate(self, corpus):
        model = PassFlow(epochs=2, batch_size=32, seed=0).fit(corpus)
        out = model.generate(40, seed=0)
        assert len(out) == 40

    def test_flow_invertibility(self, corpus):
        """forward(inverse(z)) == z up to float tolerance — the defining
        property of a normalizing flow."""
        model = PassFlow(epochs=1, batch_size=32, seed=0).fit(corpus)
        rng = np.random.default_rng(0)
        z = rng.normal(size=(8, SEQ_LEN)).astype(np.float32)
        x = model._invert(z)
        from repro.autograd import Tensor, no_grad

        with no_grad():
            z_back = model._forward_z(Tensor(x)).data
        assert np.allclose(z_back, z, atol=1e-3)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PassFlow().generate(5)
