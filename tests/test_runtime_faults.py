"""Fault-injection hooks: directives, one-shot markers, call logging."""

import pytest

from repro.runtime import faults
from repro.runtime.faults import (
    FAULT_ENV,
    FAULT_STATE_ENV,
    InjectedFault,
    corrupt_file,
    maybe_corrupt,
    maybe_fail,
)


class TestDirectives:
    def test_no_env_is_noop(self):
        maybe_fail("worker", 0)
        maybe_fail("epoch")

    def test_bad_directive_raises(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "explode:worker")
        with pytest.raises(ValueError, match="bad REPRO_FAULT directive"):
            maybe_fail("worker", 0)

    def test_crash_is_base_exception(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:worker")
        with pytest.raises(InjectedFault):
            maybe_fail("worker", 0)
        assert not issubclass(InjectedFault, Exception)  # survives except Exception

    def test_other_site_untouched(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:worker")
        maybe_fail("leaf_batch")  # different site: no fault


class TestIndexedSite:
    def test_fires_only_on_matching_index(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:worker:2")
        maybe_fail("worker", 0)
        maybe_fail("worker", 1)
        with pytest.raises(InjectedFault):
            maybe_fail("worker", 2)


class TestCounterSite:
    def test_fires_after_k_clean_calls(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:leaf_batch:3")
        for _ in range(3):
            maybe_fail("leaf_batch")  # calls 0..2 are clean
        with pytest.raises(InjectedFault):
            maybe_fail("leaf_batch")

    def test_reset_clears_counters(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:epoch:1")
        maybe_fail("epoch")
        faults.reset()
        maybe_fail("epoch")  # counter restarted: still clean


class TestOneShotState:
    def test_second_trip_passes(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:worker:1")
        monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path))
        with pytest.raises(InjectedFault):
            maybe_fail("worker", 1)
        maybe_fail("worker", 1)  # retry of the same task succeeds

    def test_calls_log_records_every_supervised_call(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path))
        maybe_fail("worker", 0)
        maybe_fail("worker", 3)
        maybe_fail("epoch")
        lines = (tmp_path / "calls.log").read_text().splitlines()
        assert lines == ["worker:0", "worker:3", "epoch:"]


class TestCorrupt:
    def test_corrupt_file_truncates(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"x" * 1000)
        corrupt_file(path, keep_fraction=0.5)
        assert path.stat().st_size == 500

    def test_maybe_corrupt_with_directive(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "corrupt:checkpoint")
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"x" * 100)
        maybe_corrupt("checkpoint", path)
        assert path.stat().st_size < 100

    def test_maybe_corrupt_without_directive_is_noop(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"x" * 100)
        maybe_corrupt("checkpoint", path)
        assert path.stat().st_size == 100
