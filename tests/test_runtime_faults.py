"""Fault-injection hooks: directives, one-shot markers, call logging."""

import signal as _signal

import pytest

from repro.runtime import DiskFullError, faults, signals
from repro.runtime.faults import (
    FAULT_ENV,
    FAULT_STATE_ENV,
    HANG_SECONDS_ENV,
    InjectedFault,
    corrupt_file,
    hang_seconds,
    maybe_corrupt,
    maybe_disk_full,
    maybe_fail,
)


class TestDirectives:
    def test_no_env_is_noop(self):
        maybe_fail("worker", 0)
        maybe_fail("epoch")

    def test_bad_directive_raises(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "explode:worker")
        with pytest.raises(ValueError, match="bad REPRO_FAULT directive"):
            maybe_fail("worker", 0)

    def test_crash_is_base_exception(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:worker")
        with pytest.raises(InjectedFault):
            maybe_fail("worker", 0)
        assert not issubclass(InjectedFault, Exception)  # survives except Exception

    def test_other_site_untouched(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:worker")
        maybe_fail("leaf_batch")  # different site: no fault


class TestIndexedSite:
    def test_fires_only_on_matching_index(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:worker:2")
        maybe_fail("worker", 0)
        maybe_fail("worker", 1)
        with pytest.raises(InjectedFault):
            maybe_fail("worker", 2)


class TestCounterSite:
    def test_fires_after_k_clean_calls(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:leaf_batch:3")
        for _ in range(3):
            maybe_fail("leaf_batch")  # calls 0..2 are clean
        with pytest.raises(InjectedFault):
            maybe_fail("leaf_batch")

    def test_reset_clears_counters(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:epoch:1")
        maybe_fail("epoch")
        faults.reset()
        maybe_fail("epoch")  # counter restarted: still clean


class TestOneShotState:
    def test_second_trip_passes(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:worker:1")
        monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path))
        with pytest.raises(InjectedFault):
            maybe_fail("worker", 1)
        maybe_fail("worker", 1)  # retry of the same task succeeds

    def test_calls_log_records_every_supervised_call(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path))
        maybe_fail("worker", 0)
        maybe_fail("worker", 3)
        maybe_fail("epoch")
        lines = (tmp_path / "calls.log").read_text().splitlines()
        assert lines == ["worker:0", "worker:3", "epoch:"]


class TestDiskFull:
    def test_disk_full_raises_enospc(self, monkeypatch):
        import errno

        monkeypatch.setenv(FAULT_ENV, "disk_full:journal")
        with pytest.raises(DiskFullError) as info:
            maybe_disk_full("journal")
        assert info.value.errno == errno.ENOSPC
        assert isinstance(info.value, OSError)  # real ENOSPC handling applies

    def test_counter_fires_after_k_clean_calls(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "disk_full:journal:2")
        maybe_disk_full("journal")
        maybe_disk_full("journal")
        with pytest.raises(DiskFullError):
            maybe_disk_full("journal")

    def test_one_shot_state(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "disk_full:journal")
        monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path))
        with pytest.raises(DiskFullError):
            maybe_disk_full("journal")
        maybe_disk_full("journal")  # retry of the write succeeds

    def test_other_site_untouched(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "disk_full:atomic")
        maybe_disk_full("journal")


class TestSignalAction:
    def test_signal_delivers_sigterm_without_raising(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "signal:leaf_batch")
        with signals.graceful_shutdown():
            maybe_fail("leaf_batch")  # returns normally; the record still lands
            assert signals.requested() == int(_signal.SIGTERM)

    def test_signal_is_one_shot_with_state_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "signal:leaf_batch")
        monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path))
        with signals.graceful_shutdown():
            maybe_fail("leaf_batch")
            assert signals.requested() is not None
            signals.reset()
            maybe_fail("leaf_batch")  # already tripped: no second delivery
            assert signals.requested() is None


class TestHangSeconds:
    def test_default(self):
        assert hang_seconds() == faults.HANG_SECONDS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(HANG_SECONDS_ENV, "0.25")
        assert hang_seconds() == 0.25

    def test_negative_clamps_to_zero(self, monkeypatch):
        monkeypatch.setenv(HANG_SECONDS_ENV, "-3")
        assert hang_seconds() == 0.0

    def test_bad_value_raises(self, monkeypatch):
        monkeypatch.setenv(HANG_SECONDS_ENV, "soon")
        with pytest.raises(ValueError, match=HANG_SECONDS_ENV):
            hang_seconds()

    def test_hang_directive_sleeps_the_override(self, monkeypatch):
        import time

        monkeypatch.setenv(FAULT_ENV, "hang:worker")
        monkeypatch.setenv(HANG_SECONDS_ENV, "0.05")
        start = time.monotonic()
        maybe_fail("worker", 0)
        assert time.monotonic() - start >= 0.05


class TestCorrupt:
    def test_corrupt_file_truncates(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"x" * 1000)
        corrupt_file(path, keep_fraction=0.5)
        assert path.stat().st_size == 500

    def test_maybe_corrupt_with_directive(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "corrupt:checkpoint")
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"x" * 100)
        maybe_corrupt("checkpoint", path)
        assert path.stat().st_size < 100

    def test_maybe_corrupt_without_directive_is_noop(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"x" * 100)
        maybe_corrupt("checkpoint", path)
        assert path.stat().st_size == 100
