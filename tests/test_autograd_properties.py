"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, log_softmax, softmax
from repro.autograd.tensor import _unbroadcast

finite_f32 = st.floats(-10.0, 10.0, width=32, allow_nan=False, allow_infinity=False)


def small_arrays(max_dims=3, max_side=5):
    return arrays(
        dtype=np.float32,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_f32,
    )


@settings(max_examples=60, deadline=None)
@given(small_arrays())
def test_softmax_is_distribution(data):
    out = softmax(Tensor(data)).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-4)


@settings(max_examples=60, deadline=None)
@given(small_arrays())
def test_log_softmax_normalises(data):
    out = log_softmax(Tensor(data)).data
    assert np.allclose(np.exp(out).sum(axis=-1), 1.0, atol=1e-4)
    assert np.all(out <= 1e-6)


@settings(max_examples=60, deadline=None)
@given(small_arrays(max_dims=2), small_arrays(max_dims=2))
def test_addition_commutes(a, b):
    try:
        expected = a + b  # numpy broadcasting may fail; that's fine
    except ValueError:
        return
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    assert np.allclose(left, expected, atol=1e-5)
    assert np.allclose(left, right, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(small_arrays())
def test_unbroadcast_inverts_broadcast(data):
    """Summing a broadcast gradient must return the pre-broadcast shape
    and equal the count of replications for a ones-gradient."""
    target_shape = data.shape
    expanded = np.broadcast_to(data, (4,) + target_shape)
    grad = np.ones_like(expanded)
    reduced = _unbroadcast(grad, target_shape)
    assert reduced.shape == target_shape
    assert np.allclose(reduced, 4.0)


@settings(max_examples=60, deadline=None)
@given(
    arrays(np.float32, (3, 4), elements=finite_f32),
    arrays(np.float32, (1, 4), elements=finite_f32),
)
def test_broadcast_mul_gradient_shape(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta * tb).sum().backward()
    assert ta.grad.shape == a.shape
    assert tb.grad.shape == b.shape
    # d(sum(a*b))/db_j = sum_i a_ij
    assert np.allclose(tb.grad, a.sum(axis=0, keepdims=True), atol=1e-4)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float32, (4, 3), elements=finite_f32))
def test_linearity_of_backward(data):
    """grad of (2x).sum() is twice grad of x.sum()."""
    x1 = Tensor(data.copy(), requires_grad=True)
    (x1 * 2.0).sum().backward()
    x2 = Tensor(data.copy(), requires_grad=True)
    x2.sum().backward()
    assert np.allclose(x1.grad, 2.0 * x2.grad)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float32, (3, 5), elements=finite_f32))
def test_reshape_roundtrip_identity(data):
    x = Tensor(data, requires_grad=True)
    y = x.reshape(5, 3).reshape(3, 5)
    assert np.allclose(y.data, data)
    y.sum().backward()
    assert np.allclose(x.grad, 1.0)
