"""Retry primitive and supervised pool map (tested with in-process fakes)."""

import multiprocessing as mp

import pytest

from repro.runtime import RetryPolicy, retry_call, supervised_map

FAST = RetryPolicy(max_retries=2, backoff_base=0.0, backoff_max=0.0)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(10) == pytest.approx(0.3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"task_timeout": 0},
            {"task_timeout": -1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(backoff_base=0.1, jitter=0.5, jitter_seed=7)
        b = RetryPolicy(backoff_base=0.1, jitter=0.5, jitter_seed=7)
        c = RetryPolicy(backoff_base=0.1, jitter=0.5, jitter_seed=8)
        seq_a = [a.backoff(r) for r in range(1, 6)]
        assert seq_a == [b.backoff(r) for r in range(1, 6)]  # replayable
        assert seq_a != [c.backoff(r) for r in range(1, 6)]  # decorrelated

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=1.0, jitter=0.3
        )
        plain = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=1.0)
        for r in range(1, 20):
            base = plain.backoff(r)
            assert base * 0.7 <= policy.backoff(r) <= base * 1.3

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)

    def test_task_timeout_env_fallback(self, monkeypatch):
        from repro.runtime.retry import TASK_TIMEOUT_ENV

        monkeypatch.setenv(TASK_TIMEOUT_ENV, "1.5")
        assert RetryPolicy().task_timeout == 1.5
        # An explicit value always wins over the environment.
        assert RetryPolicy(task_timeout=9.0).task_timeout == 9.0

    def test_task_timeout_env_bad_value(self, monkeypatch):
        from repro.runtime.retry import TASK_TIMEOUT_ENV

        monkeypatch.setenv(TASK_TIMEOUT_ENV, "eventually")
        with pytest.raises(ValueError, match=TASK_TIMEOUT_ENV):
            RetryPolicy()

    def test_task_timeout_env_zero_disables(self, monkeypatch):
        from repro.runtime.retry import TASK_TIMEOUT_ENV

        monkeypatch.setenv(TASK_TIMEOUT_ENV, "0")
        assert RetryPolicy().task_timeout is None

    @pytest.mark.parametrize("value", ["", "   "])
    def test_task_timeout_env_blank_is_ignored(self, monkeypatch, value):
        from repro.runtime.retry import TASK_TIMEOUT_ENV

        monkeypatch.setenv(TASK_TIMEOUT_ENV, value)
        assert RetryPolicy().task_timeout is None

    @pytest.mark.parametrize("value", ["-1", "-0.5", "inf", "nan"])
    def test_task_timeout_env_rejects_non_finite_or_negative(
        self, monkeypatch, value
    ):
        from repro.runtime.retry import TASK_TIMEOUT_ENV

        monkeypatch.setenv(TASK_TIMEOUT_ENV, value)
        with pytest.raises(ValueError, match=TASK_TIMEOUT_ENV):
            RetryPolicy()


class TestRetryCall:
    def test_transient_failure_recovers(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert retry_call(flaky, FAST) == "ok"
        assert len(calls) == 3

    def test_permanent_failure_reraises(self):
        errors = []

        def doomed():
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            retry_call(doomed, FAST, on_error=lambda a, e: errors.append(a))
        assert errors == [0, 1, 2]  # max_retries + 1 attempts

    def test_non_retryable_raises_immediately(self):
        calls = []

        def typed():
            calls.append(1)
            raise KeyError("nope")

        with pytest.raises(KeyError):
            retry_call(typed, FAST, retryable=(OSError,))
        assert len(calls) == 1


class FakePool:
    """In-process stand-in for ``mp.Pool``: runs tasks eagerly, in order."""

    def __init__(self, log):
        self.log = log
        self.terminated = False

    def imap_unordered(self, fn, indices):
        return _FakeStream([fn(i) for i in indices])

    def terminate(self):
        self.terminated = True

    def join(self):
        pass


class _FakeStream:
    def __init__(self, items, hang_at=None):
        self._items = list(items)
        self._hang_at = hang_at
        self._pos = 0

    def __next__(self):
        if self._pos >= len(self._items):
            raise StopIteration
        item = self._items[self._pos]
        self._pos += 1
        return item

    def next(self, timeout=None):
        if self._hang_at is not None and self._pos == self._hang_at:
            self._hang_at = None
            raise mp.TimeoutError
        return self.__next__()


class TestSupervisedMap:
    def test_all_success_ordered(self):
        pools = []
        delivered = []
        guarded = lambda i: (i, True, i * 10)  # noqa: E731
        out = supervised_map(
            lambda: pools.append(FakePool(None)) or pools[-1],
            guarded,
            4,
            policy=FAST,
            on_result=lambda i, v: delivered.append(i),
        )
        assert out == [0, 10, 20, 30]
        assert sorted(delivered) == [0, 1, 2, 3]
        assert len(pools) == 1

    def test_transient_failure_retries_only_failed_task(self):
        attempts = {i: 0 for i in range(4)}

        def guarded(i):
            attempts[i] += 1
            if i == 2 and attempts[i] == 1:
                return (i, False, "OSError: flaky shard")
            return (i, True, i)

        out = supervised_map(lambda: FakePool(None), guarded, 4, policy=FAST)
        assert out == [0, 1, 2, 3]
        assert attempts == {0: 1, 1: 1, 2: 2, 3: 1}  # only task 2 re-ran

    def test_permanent_failure_falls_back_to_serial(self):
        serial_calls = []

        def guarded(i):
            if i == 1:
                return (i, False, "RuntimeError: cursed shard")
            return (i, True, i)

        def serial(i):
            serial_calls.append(i)
            return i

        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            out = supervised_map(
                lambda: FakePool(None), guarded, 3, policy=FAST, serial_fn=serial
            )
        assert out == [0, 1, 2]
        assert serial_calls == [1]  # completed tasks never re-run

    def test_permanent_failure_without_serial_raises(self):
        guarded = lambda i: (i, False, "always broken")  # noqa: E731
        with pytest.raises(RuntimeError, match="failed after"):
            supervised_map(lambda: FakePool(None), guarded, 2, policy=FAST)

    def test_hang_kills_pool_and_retries_pending(self):
        pools = []

        class HangOncePool(FakePool):
            def imap_unordered(self, fn, indices):
                results = [fn(i) for i in indices]
                # First pool wedges after delivering one result.
                hang_at = 1 if len(pools) == 1 else None
                return _FakeStream(results, hang_at=hang_at)

        def factory():
            pools.append(HangOncePool(None))
            return pools[-1]

        policy = RetryPolicy(max_retries=2, backoff_base=0.0, task_timeout=0.01)
        out = supervised_map(factory, lambda i: (i, True, i), 3, policy=policy)
        assert out == [0, 1, 2]
        assert len(pools) == 2  # wedged pool was killed and rebuilt
        assert pools[0].terminated

    def test_empty_task_list(self):
        def factory():  # pragma: no cover - must never be called
            raise AssertionError("no pool should be built for zero tasks")

        assert supervised_map(factory, lambda i: (i, True, i), 0, policy=FAST) == []


class TestStopCallable:
    def test_stop_raise_interrupts_and_terminates_pool(self):
        from repro.runtime import CampaignInterrupted

        pools = []
        delivered = []

        def factory():
            pools.append(FakePool(None))
            return pools[-1]

        def stop():
            # Trip once two results have been journaled mid-wait.
            if len(delivered) >= 2:
                raise CampaignInterrupted("deadline", {"guesses": len(delivered)})

        with pytest.raises(CampaignInterrupted):
            supervised_map(
                factory,
                lambda i: (i, True, i),
                4,
                policy=FAST,
                on_result=lambda i, v: delivered.append(i),
                stop=stop,
            )
        # Delivered results were handed over before the raise; the pool
        # was reaped on the way out (workers killed mid-task accounted).
        assert len(delivered) >= 2
        assert pools[0].terminated

    def test_stop_checked_before_serial_fallback(self):
        from repro.runtime import CampaignInterrupted

        calls = []

        def stop():
            if calls:
                raise CampaignInterrupted("deadline", {})

        def serial(i):
            calls.append(i)
            return i

        guarded = lambda i: (i, False, "always broken")  # noqa: E731
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            with pytest.raises(CampaignInterrupted):
                supervised_map(
                    lambda: FakePool(None), guarded, 3,
                    policy=FAST, serial_fn=serial, stop=stop,
                )
        assert calls == [0]  # interrupted between serial tasks

    def test_benign_stop_does_not_change_results(self):
        polls = []
        out = supervised_map(
            lambda: FakePool(None),
            lambda i: (i, True, i * 10),
            3,
            policy=FAST,
            stop=lambda: polls.append(1),
        )
        assert out == [0, 10, 20]
        assert polls  # the stop callable was actually consulted

    def test_hang_watchdog_still_fires_with_stop(self):
        """The sliced wait preserves task_timeout semantics: a worker
        that stays wedged across every poll slice still trips the
        watchdog and gets its pool rebuilt."""
        pools = []

        class _WedgedStream(_FakeStream):
            def next(self, timeout=None):
                if self._hang_at is not None and self._pos == self._hang_at:
                    raise mp.TimeoutError  # wedged on every wait slice
                return self.__next__()

        class WedgedFirstPool(FakePool):
            def imap_unordered(self, fn, indices):
                results = [fn(i) for i in indices]
                hang_at = 1 if len(pools) == 1 else None
                return _WedgedStream(results, hang_at=hang_at)

        def factory():
            pools.append(WedgedFirstPool(None))
            return pools[-1]

        policy = RetryPolicy(max_retries=2, backoff_base=0.0, task_timeout=0.05)
        out = supervised_map(
            factory, lambda i: (i, True, i), 3, policy=policy, stop=lambda: None
        )
        assert out == [0, 1, 2]
        assert len(pools) == 2
        assert pools[0].terminated
