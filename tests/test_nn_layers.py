"""Tests for Linear/Embedding/LayerNorm/Dropout/Sequential."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Dropout, Embedding, LayerNorm, Linear, Sequential


class TestLinear:
    def test_matches_manual_affine(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 4, rng)
        x = rng.normal(size=(5, 3)).astype(np.float32)
        out = layer(Tensor(x))
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data, atol=1e-6)

    def test_no_bias(self):
        layer = Linear(3, 4, np.random.default_rng(0), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_3d_input(self):
        layer = Linear(3, 4, np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 5, 3), dtype=np.float32)))
        assert out.shape == (2, 5, 4)

    def test_gradients_flow_to_weight_and_bias(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        layer(Tensor(np.ones((4, 3), dtype=np.float32))).sum().backward()
        assert layer.weight.grad is not None
        assert np.allclose(layer.bias.grad, [4.0, 4.0])


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, np.random.default_rng(0))
        ids = np.array([[1, 2], [3, 1]])
        out = emb(ids)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], emb.weight.data[1])
        assert np.allclose(out.data[1, 1], emb.weight.data[1])

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4, np.random.default_rng(0))
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_per_row(self):
        emb = Embedding(5, 3, np.random.default_rng(0))
        emb(np.array([2, 2, 4])).sum().backward()
        assert np.allclose(emb.weight.grad[2], 2.0)
        assert np.allclose(emb.weight.grad[4], 1.0)
        assert np.allclose(emb.weight.grad[0], 0.0)


class TestLayerNormLayer:
    def test_normalises_and_has_params(self):
        ln = LayerNorm(8)
        out = ln(Tensor(np.random.default_rng(0).normal(2.0, 3.0, (4, 8)).astype(np.float32)))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-5)
        assert len(ln.parameters()) == 2


class TestDropoutLayer:
    def test_respects_training_flag(self):
        drop = Dropout(0.5, np.random.default_rng(0))
        x = Tensor(np.ones(1000, dtype=np.float32))
        drop.eval()
        assert np.allclose(drop(x).data, 1.0)
        drop.train()
        out = drop(x).data
        assert (out == 0).sum() > 200  # roughly half dropped


class TestSequential:
    def test_runs_in_order(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(3, 4, rng), Tensor.relu, Linear(4, 2, rng))
        out = seq(Tensor(np.ones((5, 3), dtype=np.float32)))
        assert out.shape == (5, 2)
        assert len(seq.parameters()) == 4
