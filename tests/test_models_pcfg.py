"""PCFG model tests: probability tables and ordered enumeration."""

import numpy as np
import pytest

from repro.datasets import build_corpus
from repro.models import PCFGModel
from repro.tokenizer import Pattern, extract_pattern


@pytest.fixture(scope="module")
def fitted():
    corpus = build_corpus(
        ["abc12", "abc34", "xyz12", "abc99", "hello1", "hello2", "12345", "54321", "ab!12"]
    )
    return PCFGModel().fit(corpus)


class TestFit:
    def test_pattern_probs_sum_to_one(self, fitted):
        assert sum(fitted.pattern_probs.values()) == pytest.approx(1.0)

    def test_segment_tables_descending(self, fitted):
        for table in fitted.segment_tables.values():
            probs = [p for _, p in table]
            assert probs == sorted(probs, reverse=True)
            assert sum(probs) == pytest.approx(1.0)

    def test_expected_counts(self, fitted):
        # "abc" appears 3 times among 4 L3 segments.
        table = dict(fitted.segment_tables["L3"])
        assert table["abc"] == pytest.approx(3 / 4)


class TestEnumeration:
    def test_descending_probability_order(self, fitted):
        guesses = list(fitted.iter_guesses())
        probs = [p for _, p in guesses]
        assert probs == sorted(probs, reverse=True)

    def test_no_duplicates(self, fitted):
        passwords = [pw for pw, _ in fitted.iter_guesses()]
        assert len(passwords) == len(set(passwords))

    def test_first_guess_is_most_probable(self, fitted):
        first, prob = next(fitted.iter_guesses())
        # P(L3N2)=4/9; P(abc|L3)=3/4; P(12|N2)=3/5 (the ab!12 "12" counts too).
        assert first == "abc12"
        assert prob == pytest.approx(4 / 9 * 3 / 4 * 3 / 5)

    def test_joint_probability_factorisation(self, fitted):
        """Every yielded probability equals eq. 2's product."""
        for pw, prob in list(fitted.iter_guesses())[:20]:
            pattern = extract_pattern(pw)
            expected = fitted.pattern_probs[pattern.string]
            cursor = 0
            for seg in pattern:
                table = dict(fitted.segment_tables[seg.token])
                expected *= table[pw[cursor : cursor + seg.length]]
                cursor += seg.length
            assert prob == pytest.approx(expected, rel=1e-9)

    def test_generate_returns_n(self, fitted):
        assert len(fitted.generate(5)) == 5

    def test_generate_exhausts_gracefully(self, fitted):
        # Finite grammar: asking for more than exists returns what exists.
        all_guesses = fitted.generate(10_000)
        assert len(all_guesses) < 10_000
        assert len(set(all_guesses)) == len(all_guesses)

    def test_closed_vocabulary_weakness(self, fitted):
        """The paper's §II-C critique: PCFG can only emit seen segments."""
        seen_l3 = {s for s, _ in fitted.segment_tables["L3"]}
        for pw in fitted.generate(1000):
            pattern = extract_pattern(pw)
            cursor = 0
            for seg in pattern:
                if seg.token == "L3":
                    assert pw[cursor : cursor + 3] in seen_l3
                cursor += seg.length


class TestPatternGuided:
    def test_conformity(self, fitted):
        out = fitted.generate_with_pattern(Pattern.parse("L3N2"), 10)
        assert out
        assert all(Pattern.parse("L3N2").matches(pw) for pw in out)

    def test_descending_within_pattern(self, fitted):
        out = fitted.generate_with_pattern(Pattern.parse("L3N2"), 100)
        assert out[0] == "abc12"
        assert len(set(out)) == len(out)

    def test_unseen_pattern_yields_nothing(self, fitted):
        assert fitted.generate_with_pattern(Pattern.parse("S5"), 10) == []

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PCFGModel().generate(5)
