"""Protocol tests for trawling_test using stub models (no training).

Verifies the §IV-D evaluation mechanics in isolation: prefix evaluation
for sampling models vs fresh per-budget runs for budget-sensitive models
(D&C-GEN takes N as an algorithm input).
"""

from types import SimpleNamespace

import pytest

from repro.evaluation import ModelLab, trawling_test
from repro.evaluation.experiments import _model_by_name
from repro.models.base import PasswordGuesser


class StreamStub(PasswordGuesser):
    """Sampling-style stub: emits a fixed stream, records call budgets."""

    name = "Stub"
    budget_sensitive = False

    def __init__(self, stream):
        self.stream = stream
        self.calls: list[int] = []

    def fit(self, corpus, **kwargs):
        return self

    def generate(self, n, seed=0):
        self.calls.append(n)
        return self.stream[:n]


class BudgetStub(StreamStub):
    """Budget-sensitive stub: output depends on the requested n."""

    name = "BudgetStub"
    budget_sensitive = True

    def generate(self, n, seed=0):
        self.calls.append(n)
        return [f"pw{n}_{i}" for i in range(n)]


@pytest.fixture()
def lab(tmp_path):
    lab = ModelLab(scale="tiny", seed=0)
    return lab


def test_sampling_models_generate_once(lab, monkeypatch):
    data = lab.site_data("rockyou")
    stream = list(data.test_corpus.passwords) * 3
    stub = StreamStub(stream)
    monkeypatch.setattr(
        "repro.evaluation.experiments._model_by_name", lambda *a: stub
    )
    result = trawling_test(lab, budgets=(10, 50), model_names=("Stub",))
    assert stub.calls == [50]  # one generation at the top budget
    # Prefix hit rates are monotone.
    assert result.hit_rates["Stub"][0] <= result.hit_rates["Stub"][1]


def test_budget_sensitive_models_rerun_per_budget(lab, monkeypatch):
    stub = BudgetStub([])
    monkeypatch.setattr(
        "repro.evaluation.experiments._model_by_name", lambda *a: stub
    )
    result = trawling_test(lab, budgets=(10, 50), model_names=("BudgetStub",))
    assert stub.calls == [10, 50]  # a fresh run per budget
    assert result.repeat_rates["BudgetStub"] == [0.0, 0.0]


def test_model_by_name_resolution(lab):
    assert _model_by_name(lab, "PCFG", "rockyou").name == "PCFG"
    assert _model_by_name(lab, "Markov", "rockyou").name == "Markov"
    assert _model_by_name(lab, "RuleBased", "rockyou").name == "RuleBased"
    with pytest.raises(KeyError):
        _model_by_name(lab, "nonsense", "rockyou")
