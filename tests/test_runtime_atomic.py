"""Atomic write primitive: all-or-nothing file replacement."""

import pytest

from repro.runtime import atomic_write, atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_roundtrip_bytes(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_roundtrip_text(self, tmp_path):
        path = tmp_path / "guesses.txt"
        atomic_write_text(path, "password1\nletmein\n")
        assert path.read_text() == "password1\nletmein\n"

    def test_replaces_existing_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.txt"
        atomic_write_text(path, "deep")
        assert path.read_text() == "deep"

    def test_failure_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "survivor")
        with pytest.raises(RuntimeError):
            with atomic_write(path, "w") as fh:
                fh.write("half a wri")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "survivor"

    def test_failure_cleans_up_temp_file(self, tmp_path):
        path = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(path, "w") as fh:
                fh.write("x")
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []  # no temp litter, no target

    def test_no_partial_target_on_first_write_failure(self, tmp_path):
        path = tmp_path / "fresh.txt"
        with pytest.raises(ValueError):
            with atomic_write(path, "w") as fh:
                fh.write("partial")
                raise ValueError("interrupted")
        assert not path.exists()
