"""Cooperative budgets: limits, polling, signal integration, telemetry."""

import json
import signal as _signal

import pytest

from repro import telemetry
from repro.runtime import Budget, CampaignInterrupted, signals


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wall_seconds": 0},
            {"wall_seconds": -1.0},
            {"max_guesses": 0},
            {"max_guesses": -5},
            {"max_model_calls": 0},
        ],
    )
    def test_non_positive_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)

    def test_limitless_budget_is_fine(self):
        assert Budget().exceeded() is None


class TestLimits:
    def test_deadline_trips_on_injected_clock(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        assert budget.exceeded() is None
        clock.t = 9.999
        assert budget.exceeded() is None
        clock.t = 10.0
        assert budget.exceeded() == "deadline"
        assert budget.elapsed() == pytest.approx(10.0)

    def test_deadline_classmethod(self):
        budget = Budget.deadline(5.0)
        assert budget.wall_seconds == 5.0
        assert budget.max_guesses is None

    def test_guess_quota_needs_reported_counter(self):
        budget = Budget(max_guesses=100)
        assert budget.exceeded() is None  # nothing reported, nothing tripped
        assert budget.exceeded(guesses=99) is None
        assert budget.exceeded(guesses=100) == "guesses"

    def test_model_call_quota(self):
        budget = Budget(max_model_calls=3)
        assert budget.exceeded(model_calls=2) is None
        assert budget.exceeded(model_calls=3) == "model_calls"

    def test_signal_outranks_every_limit(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, max_guesses=1, clock=clock)
        clock.t = 99.0
        signals.request(_signal.SIGTERM)
        assert budget.exceeded(guesses=10**9) == "signal"


class TestPoll:
    def test_within_budget_is_noop(self):
        Budget(max_guesses=10).poll(guesses=3)

    def test_trip_raises_with_reason_and_progress(self):
        budget = Budget(max_guesses=5)
        with pytest.raises(CampaignInterrupted) as info:
            budget.poll(guesses=7, tasks=2)
        assert info.value.reason == "guesses"
        assert info.value.progress == {"guesses": 7, "tasks": 2}
        assert "guesses=7" in str(info.value)

    def test_interrupt_is_base_exception(self):
        # Must cut through ``except Exception`` rescue paths.
        assert not issubclass(CampaignInterrupted, Exception)

    def test_trip_emits_telemetry_event(self, tmp_path):
        telemetry.start_session(tmp_path, run_id="deadline-test")
        try:
            with pytest.raises(CampaignInterrupted):
                Budget(max_guesses=1).poll(guesses=4)
        finally:
            telemetry.end_session(emit_snapshot=False)
        events = []
        for stream in tmp_path.glob("*.jsonl"):
            for line in stream.read_text().splitlines():
                rec = json.loads(line)
                if rec.get("event") == "campaign_interrupted":
                    events.append(rec)
        assert len(events) == 1
        assert events[0]["fields"]["reason"] == "guesses"
        assert events[0]["fields"]["guesses"] == 4

    def test_stopper_closure_polls_current_progress(self):
        budget = Budget(max_guesses=10)
        progress = {"guesses": 0}
        stop = budget.stopper(lambda: dict(progress))
        stop()  # within budget
        progress["guesses"] = 10
        with pytest.raises(CampaignInterrupted) as info:
            stop()
        assert info.value.progress["guesses"] == 10


class TestSignals:
    def test_request_and_reset(self):
        assert signals.requested() is None
        signals.request(_signal.SIGINT)
        assert signals.requested() == int(_signal.SIGINT)
        signals.reset()
        assert signals.requested() is None

    def test_graceful_shutdown_converts_first_signal(self):
        import os

        with signals.graceful_shutdown():
            os.kill(os.getpid(), _signal.SIGTERM)
            assert signals.requested() == int(_signal.SIGTERM)
            with pytest.raises(CampaignInterrupted) as info:
                Budget().poll(guesses=1)
            assert info.value.reason == "signal"
        # Handler restored and request cleared on exit.
        assert signals.requested() is None

    def test_worker_initializer_makes_sigterm_lethal_again(self):
        """A pool worker forks while graceful_shutdown's handler is
        installed; the initializer must restore SIGTERM's default
        disposition or ``Pool.terminate`` joins a worker that swallows
        its kill signal — and must drop any stop request the fork
        inherited, since the parent owns the shutdown decision."""
        with signals.graceful_shutdown():
            signals.request(_signal.SIGTERM)  # pending stop at fork time
            signals.ignore_in_worker()
            assert _signal.getsignal(_signal.SIGTERM) is _signal.SIG_DFL
            assert _signal.getsignal(_signal.SIGINT) is _signal.SIG_IGN
            assert signals.requested() is None
