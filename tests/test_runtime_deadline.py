"""Cooperative budgets: limits, polling, signal integration, telemetry."""

import json
import signal as _signal

import pytest

from repro import telemetry
from repro.runtime import Budget, CampaignInterrupted, signals


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wall_seconds": 0},
            {"wall_seconds": -1.0},
            {"max_guesses": 0},
            {"max_guesses": -5},
            {"max_model_calls": 0},
        ],
    )
    def test_non_positive_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)

    def test_limitless_budget_is_fine(self):
        assert Budget().exceeded() is None


class TestLimits:
    def test_deadline_trips_on_injected_clock(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        assert budget.exceeded() is None
        clock.t = 9.999
        assert budget.exceeded() is None
        clock.t = 10.0
        assert budget.exceeded() == "deadline"
        assert budget.elapsed() == pytest.approx(10.0)

    def test_deadline_classmethod(self):
        budget = Budget.deadline(5.0)
        assert budget.wall_seconds == 5.0
        assert budget.max_guesses is None

    def test_guess_quota_needs_reported_counter(self):
        budget = Budget(max_guesses=100)
        assert budget.exceeded() is None  # nothing reported, nothing tripped
        assert budget.exceeded(guesses=99) is None
        assert budget.exceeded(guesses=100) == "guesses"

    def test_model_call_quota(self):
        budget = Budget(max_model_calls=3)
        assert budget.exceeded(model_calls=2) is None
        assert budget.exceeded(model_calls=3) == "model_calls"

    def test_signal_outranks_every_limit(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, max_guesses=1, clock=clock)
        clock.t = 99.0
        signals.request(_signal.SIGTERM)
        assert budget.exceeded(guesses=10**9) == "signal"


class TestPoll:
    def test_within_budget_is_noop(self):
        Budget(max_guesses=10).poll(guesses=3)

    def test_trip_raises_with_reason_and_progress(self):
        budget = Budget(max_guesses=5)
        with pytest.raises(CampaignInterrupted) as info:
            budget.poll(guesses=7, tasks=2)
        assert info.value.reason == "guesses"
        assert info.value.progress == {"guesses": 7, "tasks": 2}
        assert "guesses=7" in str(info.value)

    def test_interrupt_is_base_exception(self):
        # Must cut through ``except Exception`` rescue paths.
        assert not issubclass(CampaignInterrupted, Exception)

    def test_trip_emits_telemetry_event(self, tmp_path):
        telemetry.start_session(tmp_path, run_id="deadline-test")
        try:
            with pytest.raises(CampaignInterrupted):
                Budget(max_guesses=1).poll(guesses=4)
        finally:
            telemetry.end_session(emit_snapshot=False)
        events = []
        for stream in tmp_path.glob("*.jsonl"):
            for line in stream.read_text().splitlines():
                rec = json.loads(line)
                if rec.get("event") == "campaign_interrupted":
                    events.append(rec)
        assert len(events) == 1
        assert events[0]["fields"]["reason"] == "guesses"
        assert events[0]["fields"]["guesses"] == 4

    def test_stopper_closure_polls_current_progress(self):
        budget = Budget(max_guesses=10)
        progress = {"guesses": 0}
        stop = budget.stopper(lambda: dict(progress))
        stop()  # within budget
        progress["guesses"] = 10
        with pytest.raises(CampaignInterrupted) as info:
            stop()
        assert info.value.progress["guesses"] == 10


class TestSignals:
    def test_request_and_reset(self):
        assert signals.requested() is None
        signals.request(_signal.SIGINT)
        assert signals.requested() == int(_signal.SIGINT)
        signals.reset()
        assert signals.requested() is None

    def test_graceful_shutdown_converts_first_signal(self):
        import os

        with signals.graceful_shutdown():
            os.kill(os.getpid(), _signal.SIGTERM)
            assert signals.requested() == int(_signal.SIGTERM)
            with pytest.raises(CampaignInterrupted) as info:
                Budget().poll(guesses=1)
            assert info.value.reason == "signal"
        # Handler restored and request cleared on exit.
        assert signals.requested() is None

    def test_worker_initializer_makes_sigterm_lethal_again(self):
        """A pool worker forks while graceful_shutdown's handler is
        installed; the initializer must restore SIGTERM's default
        disposition or ``Pool.terminate`` joins a worker that swallows
        its kill signal — and must drop any stop request the fork
        inherited, since the parent owns the shutdown decision."""
        with signals.graceful_shutdown():
            signals.request(_signal.SIGTERM)  # pending stop at fork time
            signals.ignore_in_worker()
            assert _signal.getsignal(_signal.SIGTERM) is _signal.SIG_DFL
            assert _signal.getsignal(_signal.SIGINT) is _signal.SIG_IGN
            assert signals.requested() is None


class TestRemaining:
    def test_limitless_budget_has_no_remaining(self):
        assert Budget().remaining() is None

    def test_counts_down_with_the_clock(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        assert budget.remaining() == pytest.approx(10.0)
        clock.t = 4.0
        assert budget.remaining() == pytest.approx(6.0)

    def test_clamps_at_zero_after_expiry(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        clock.t = 25.0
        assert budget.remaining() == 0.0  # never negative


class TestMerge:
    def test_all_none_merges_to_none(self):
        assert Budget.merge() is None
        assert Budget.merge(None, None) is None

    def test_single_budget_survives_with_none_partner(self):
        merged = Budget.merge(None, Budget(max_guesses=7))
        assert merged is not None
        assert merged.max_guesses == 7
        assert merged.wall_seconds is None
        assert merged.max_model_calls is None

    def test_wall_min_wins_on_remaining_not_original(self):
        clock = FakeClock()
        server = Budget(wall_seconds=100.0, clock=clock)
        clock.t = 95.0  # the server budget is nearly spent...
        request = Budget(wall_seconds=60.0, clock=clock)
        merged = Budget.merge(server, request, clock=clock)
        # ...so the request gets the server's 5s remainder, not 60s.
        assert merged.wall_seconds == pytest.approx(5.0)
        clock.t = 99.0
        assert merged.exceeded() is None
        clock.t = 100.0
        assert merged.exceeded() == "deadline"

    def test_quotas_min_win_independently(self):
        merged = Budget.merge(
            Budget(max_guesses=100, max_model_calls=50),
            Budget(max_guesses=10),
        )
        assert merged.max_guesses == 10
        assert merged.max_model_calls == 50

    def test_already_expired_contributor_trips_first_poll(self):
        clock = FakeClock()
        spent = Budget(wall_seconds=5.0, clock=clock)
        clock.t = 30.0  # way past the limit before the merge happens
        merged = Budget.merge(spent, Budget(max_guesses=1000), clock=clock)
        assert merged.wall_seconds == 0.0
        assert merged.exceeded() == "deadline"
        with pytest.raises(CampaignInterrupted) as info:
            merged.poll(guesses=0)
        assert info.value.reason == "deadline"

    def test_merged_budget_still_observes_stop_requests(self):
        merged = Budget.merge(Budget(), Budget(max_guesses=1000))
        signals.request(_signal.SIGTERM)
        try:
            with pytest.raises(CampaignInterrupted) as info:
                merged.poll(guesses=1)
            assert info.value.reason == "signal"
        finally:
            signals.reset()


class TestSecondSignalHardExit:
    def test_second_sigterm_kills_while_asyncio_loop_runs(self):
        """First SIGTERM during an asyncio loop converts to a graceful
        stop request; a second SIGTERM restores the default disposition
        and re-kills, so the process dies instead of looping forever.
        This is the server operator's escape hatch: one SIGTERM drains,
        two SIGTERMs always terminate."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        child = (
            "import asyncio, os, signal\n"
            "from repro.runtime import signals\n"
            "\n"
            "async def main():\n"
            "    os.kill(os.getpid(), signal.SIGTERM)\n"
            "    await asyncio.sleep(0)  # let the handler run\n"
            "    assert signals.requested() == int(signal.SIGTERM)\n"
            "    print('FIRST-OK', flush=True)\n"
            "    os.kill(os.getpid(), signal.SIGTERM)\n"
            "    await asyncio.sleep(5)\n"
            "    print('NOT-REACHED', flush=True)\n"
            "\n"
            "with signals.graceful_shutdown():\n"
            "    asyncio.run(main())\n"
            "print('NOT-REACHED', flush=True)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        proc = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True, text=True, timeout=60, env=env,
        )
        assert proc.returncode == -int(_signal.SIGTERM), proc.stderr
        assert "FIRST-OK" in proc.stdout
        assert "NOT-REACHED" not in proc.stdout
