"""Markov / OMEN model tests."""

import numpy as np
import pytest

from repro.datasets import build_corpus
from repro.models import MarkovModel
from repro.tokenizer.charset import VISIBLE_ASCII


@pytest.fixture(scope="module")
def fitted():
    corpus = build_corpus(
        ["hello1", "hello2", "help99", "world1", "worlds", "password", "pass123"]
    )
    return MarkovModel(order=2, smoothing=0.01).fit(corpus)


class TestFit:
    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovModel(order=0)
        with pytest.raises(ValueError):
            MarkovModel(smoothing=0)

    def test_distributions_normalised(self, fitted):
        for dist in fitted._probs.values():
            assert dist.sum() == pytest.approx(1.0)

    def test_log_prob_finite_and_ordered(self, fitted):
        seen = fitted.log_prob("hello1")
        unseen = fitted.log_prob("zzzzzz")
        assert np.isfinite(seen) and np.isfinite(unseen)
        assert seen > unseen

    def test_log_prob_requires_fit(self):
        with pytest.raises(RuntimeError):
            MarkovModel().log_prob("abc")


class TestGeneration:
    def test_charset_and_length(self, fitted):
        out = fitted.generate(200, seed=0)
        assert len(out) == 200
        for pw in out:
            assert len(pw) <= 12
            assert all(c in VISIBLE_ASCII for c in pw)

    def test_deterministic_per_seed(self, fitted):
        assert fitted.generate(50, seed=1) == fitted.generate(50, seed=1)
        assert fitted.generate(50, seed=1) != fitted.generate(50, seed=2)

    def test_samples_reflect_training(self, fitted):
        out = fitted.generate(500, seed=0)
        with_hel = sum(1 for pw in out if "hel" in pw or "wor" in pw or "pas" in pw)
        assert with_hel > 100  # learned trigram structure dominates


class TestOrderedEnumeration:
    def test_no_duplicates_in_prefix(self, fitted):
        out = fitted.generate_ordered(300)
        assert len(out) == len(set(out))

    def test_levels_ascend(self, fitted):
        """OMEN property: total level of emitted passwords is
        non-decreasing along the enumeration."""
        levels = []
        width = 0.7
        for pw in fitted.generate_ordered(200):
            padded = " " * fitted.order + pw + "\x00"
            total = 0
            for i in range(fitted.order, len(padded)):
                dist = fitted._dist(padded[i - fitted.order : i])
                p = dist[fitted._char_index[padded[i]]]
                total += int(round(-np.log(p) / width))
            levels.append(total)
        assert levels == sorted(levels)

    def test_head_contains_training_like_passwords(self, fitted):
        head = set(fitted.generate_ordered(100))
        assert any("hell" in pw or "worl" in pw or "pass" in pw for pw in head)
