"""Shared fixtures: corpora and (cheaply) trained models.

Session-scoped so the expensive pieces — leak synthesis and tiny GPT
training — happen once per pytest run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.datasets import build_corpus, clean_leak, generate_leak, split_dataset
from repro.models import PagPassGPT, PassGPT
from repro.nn import GPT2Config
from repro.runtime import faults, signals
from repro.training import TrainConfig


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    """No fault directive leaks between tests; counters start fresh."""
    monkeypatch.delenv(faults.FAULT_ENV, raising=False)
    monkeypatch.delenv(faults.FAULT_STATE_ENV, raising=False)
    monkeypatch.delenv(faults.HANG_SECONDS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(autouse=True)
def _clean_signals():
    """No graceful-stop request leaks between tests."""
    signals.reset()
    yield
    signals.reset()


@pytest.fixture(autouse=True)
def _no_leaked_telemetry_session():
    """A test that starts a telemetry session must not leak it onward."""
    yield
    telemetry.end_session(emit_snapshot=False)


@pytest.fixture(scope="session")
def rockyou_tiny():
    """Cleaned synthetic RockYou slice plus 7:1:2 splits."""
    cleaned, report = clean_leak(generate_leak("rockyou", 4_000, seed=7))
    splits = split_dataset(cleaned, seed=7)
    return {
        "cleaned": cleaned,
        "report": report,
        "splits": splits,
        "train_corpus": build_corpus(splits.train, name="rockyou-train"),
        "test_corpus": build_corpus(splits.test, name="rockyou-test"),
    }


def _tiny_gpt_config(vocab_size: int, block_size: int) -> GPT2Config:
    return GPT2Config(
        vocab_size=vocab_size,
        block_size=block_size,
        dim=32,
        n_layers=2,
        n_heads=4,
        dropout=0.0,
    )


@pytest.fixture(scope="session")
def trained_pagpassgpt(rockyou_tiny) -> PagPassGPT:
    """A PagPassGPT trained a couple of epochs — enough for mechanics."""
    model = PagPassGPT(
        model_config=_tiny_gpt_config(135, 32),
        train_config=TrainConfig(epochs=2, batch_size=128, lr=2e-3, seed=0),
        seed=0,
    )
    model.fit(rockyou_tiny["train_corpus"])
    return model


@pytest.fixture(scope="session")
def trained_passgpt(rockyou_tiny) -> PassGPT:
    """A PassGPT trained a couple of epochs."""
    model = PassGPT(
        model_config=_tiny_gpt_config(135, 16),
        train_config=TrainConfig(epochs=2, batch_size=128, lr=2e-3, seed=0),
        seed=0,
    )
    model.fit(rockyou_tiny["train_corpus"])
    return model


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
