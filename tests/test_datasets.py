"""Data pipeline tests: synthesis, cleaning, splits, corpora."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    DEFAULT_SIZES,
    SITES,
    PasswordCorpus,
    build_corpus,
    clean_leak,
    generate_leak,
    is_clean,
    split_dataset,
)
from repro.tokenizer import Pattern, extract_pattern


class TestSyntheticLeaks:
    def test_deterministic_for_seed(self):
        assert generate_leak("rockyou", 500, seed=3) == generate_leak("rockyou", 500, seed=3)

    def test_different_seeds_differ(self):
        assert generate_leak("rockyou", 500, seed=1) != generate_leak("rockyou", 500, seed=2)

    def test_unknown_site_rejected(self):
        with pytest.raises(KeyError):
            generate_leak("facebook", 10)

    def test_default_sizes_used(self):
        assert len(generate_leak("myspace", seed=0)) == DEFAULT_SIZES["myspace"]

    def test_all_sites_produce_data(self):
        for site in SITES:
            leak = generate_leak(site, 200, seed=0)
            assert len(leak) == 200
            assert all(isinstance(pw, str) and pw for pw in leak)

    def test_contains_duplicates_like_real_leaks(self):
        leak = generate_leak("rockyou", 5000, seed=0)
        assert len(set(leak)) < len(leak)

    def test_top_patterns_converge_across_sites(self):
        """The paper's observation: top-10 patterns are consistent across
        datasets.  Require a strong overlap between any two sites."""
        tops = {}
        for site in ("rockyou", "linkedin", "phpbb"):
            cleaned, _ = clean_leak(generate_leak(site, 8000, seed=1))
            tops[site] = {p for p, _ in build_corpus(cleaned).top_patterns(10)}
        assert len(tops["rockyou"] & tops["linkedin"]) >= 6
        assert len(tops["rockyou"] & tops["phpbb"]) >= 6


class TestCleaning:
    def test_rules(self):
        assert is_clean("abcd")
        assert is_clean("a" * 12)
        assert not is_clean("abc")           # too short
        assert not is_clean("a" * 13)        # too long
        assert not is_clean("with space")
        assert not is_clean("niñas123")

    def test_clean_leak_deduplicates(self):
        cleaned, report = clean_leak(["abcd", "abcd", "efgh1"])
        assert cleaned == ["abcd", "efgh1"]
        assert report.raw_entries == 3
        assert report.unique == 2
        assert report.cleaned == 2

    def test_report_retention(self):
        _, report = clean_leak(["abcd", "ab", "x" * 20, "good123"])
        assert report.unique == 4
        assert report.cleaned == 2
        assert report.retention_rate == pytest.approx(0.5)

    def test_empty_leak(self):
        cleaned, report = clean_leak([])
        assert cleaned == []
        assert report.retention_rate == 0.0

    def test_retention_rates_match_table2_shape(self):
        """LinkedIn has the lowest retention, the three small sites the
        highest — the ordering Table II reports."""
        rates = {}
        for site in SITES:
            _, report = clean_leak(generate_leak(site, 6000, seed=2))
            rates[site] = report.retention_rate
        assert rates["linkedin"] == min(rates.values())
        assert rates["rockyou"] < rates["phpbb"]
        assert rates["rockyou"] < rates["yahoo"]


class TestSplits:
    def test_ratios(self):
        cleaned, _ = clean_leak(generate_leak("rockyou", 5000, seed=0))
        splits = split_dataset(cleaned, seed=0)
        total = len(cleaned)
        assert len(splits.train) == pytest.approx(0.7 * total, abs=2)
        assert len(splits.val) == pytest.approx(0.1 * total, abs=2)
        assert len(splits.train) + len(splits.val) + len(splits.test) == total

    def test_disjoint(self):
        cleaned, _ = clean_leak(generate_leak("rockyou", 3000, seed=0))
        splits = split_dataset(cleaned, seed=0)
        assert not set(splits.train) & set(splits.test)
        assert not set(splits.val) & set(splits.test)

    def test_deterministic(self):
        cleaned, _ = clean_leak(generate_leak("rockyou", 2000, seed=0))
        s1 = split_dataset(cleaned, seed=5)
        s2 = split_dataset(cleaned, seed=5)
        assert s1.train == s2.train and s1.test == s2.test

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            split_dataset(["aaaa", "aaaa", "bbbb"])

    def test_rejects_bad_ratios(self):
        with pytest.raises(ValueError):
            split_dataset(["aaaa", "bbbb"], ratios=(0.5, 0.2, 0.2))


class TestCorpus:
    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            PasswordCorpus(["abcd", "abcd"])

    def test_build_corpus_dedups_preserving_order(self):
        corpus = build_corpus(["bbbb", "aaaa", "bbbb", "cccc"])
        assert corpus.passwords == ["bbbb", "aaaa", "cccc"]

    def test_pattern_probs_sum_to_one(self):
        cleaned, _ = clean_leak(generate_leak("rockyou", 2000, seed=0))
        corpus = build_corpus(cleaned)
        assert sum(corpus.pattern_probs.values()) == pytest.approx(1.0)

    def test_length_probs_sum_to_one(self):
        cleaned, _ = clean_leak(generate_leak("rockyou", 2000, seed=0))
        corpus = build_corpus(cleaned)
        assert sum(corpus.length_probs.values()) == pytest.approx(1.0)

    def test_conforming(self):
        corpus = build_corpus(["hello12", "world13", "nope", "a1b2c3"])
        assert set(corpus.conforming(Pattern.parse("L5N2"))) == {"hello12", "world13"}

    def test_conforming_by_category(self):
        corpus = build_corpus(["hello12", "nope", "a1b2"])
        assert corpus.conforming_by_category(2) == ["hello12"]
        assert corpus.conforming_by_category(1) == ["nope"]
        assert corpus.conforming_by_category(4) == ["a1b2"]

    def test_top_patterns_sorted(self):
        corpus = build_corpus(["aaaa1", "bbbb2", "cccc3", "123456"])
        top = corpus.top_patterns(2)
        assert top[0][0] == "L4N1"
        assert top[0][1] == pytest.approx(0.75)

    def test_membership(self):
        corpus = build_corpus(["abcd"])
        assert "abcd" in corpus
        assert "efgh" not in corpus


@settings(max_examples=50, deadline=None)
@given(st.lists(st.text(alphabet=st.sampled_from("abcdef123!"), min_size=1, max_size=15), max_size=50))
def test_cleaning_invariants(raw):
    cleaned, report = clean_leak(raw)
    assert len(cleaned) == report.cleaned <= report.unique <= report.raw_entries
    assert len(set(cleaned)) == len(cleaned)
    assert all(is_clean(pw) for pw in cleaned)
    assert all(4 <= len(pw) <= 12 for pw in cleaned)
