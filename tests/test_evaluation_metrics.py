"""Metric tests with hand-computed values (eqs. 4-7)."""

import numpy as np
import pytest

from repro.datasets import build_corpus
from repro.evaluation import (
    category_hit_rate,
    hit_rate,
    hits,
    length_distance,
    pattern_distance,
    pattern_hit_rate,
    repeat_rate,
    word_integrity,
)
from repro.tokenizer import Pattern


class TestHitRate:
    def test_basic(self):
        assert hit_rate(["a", "b", "c"], ["b", "c", "d", "e"]) == pytest.approx(0.5)

    def test_duplicates_ignored(self):
        assert hit_rate(["b", "b", "b"], ["b", "d"]) == pytest.approx(0.5)

    def test_empty_test_set_rejected(self):
        with pytest.raises(ValueError):
            hit_rate(["a"], [])

    def test_hits_count(self):
        assert hits(["a", "b", "b"], ["b", "c"]) == 1


class TestRepeatRate:
    def test_no_repeats(self):
        assert repeat_rate(["a", "b", "c"]) == 0.0

    def test_all_repeats(self):
        assert repeat_rate(["a", "a", "a", "a"]) == pytest.approx(0.75)

    def test_paper_definition(self):
        # 10 guesses, 7 unique -> 30% repeats.
        guesses = list("abcdefg") + ["a", "b", "c"]
        assert repeat_rate(guesses) == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            repeat_rate([])


class TestCategoryAndPatternHitRate:
    def test_category(self):
        test_corpus = build_corpus(["hello12", "world99", "abc", "a1b2"])
        generated = ["hello12", "nohit88"]
        # Category 2 segments: hello12, world99 -> 1 of 2 hit.
        assert category_hit_rate(generated, test_corpus, 2) == pytest.approx(0.5)
        assert category_hit_rate(generated, test_corpus, 1) == 0.0
        assert category_hit_rate(generated, test_corpus, 7) == 0.0  # empty category

    def test_pattern(self):
        test_corpus = build_corpus(["hello12", "world99", "foo1"])
        generated = ["hello12", "world99", "zzz"]
        assert pattern_hit_rate(generated, test_corpus, Pattern.parse("L5N2")) == 1.0
        assert pattern_hit_rate(generated, test_corpus, Pattern.parse("L3N1")) == 0.0


class TestWordIntegrity:
    def test_intact_words_score_one(self):
        assert word_integrity(["mountain12", "dragon!99"]) == pytest.approx(1.0)

    def test_truncations_score_zero(self):
        assert word_integrity(["mounta12", "drago!99"]) == pytest.approx(0.0)

    def test_mixed(self):
        score = word_integrity(["mountain1", "mounta12"])
        assert score == pytest.approx(0.5)

    def test_unrelated_segments_ignored(self):
        assert word_integrity(["zzqqxx12"]) == pytest.approx(1.0)


class TestDistances:
    def test_length_distance_identical_distributions(self):
        corpus = build_corpus(["abcd1", "efgh2", "ijklm9"])
        generated = ["abcd1", "efgh2", "ijklm9"]
        assert length_distance(generated, corpus) == pytest.approx(0.0, abs=1e-9)

    def test_length_distance_hand_computed(self):
        corpus = build_corpus(["aaaa", "bbbb"])  # all length 4
        generated = ["ccccc", "ddddd"]  # all length 5
        # diff at len4 = 1, at len5 = -1 -> sqrt(2)
        assert length_distance(generated, corpus) == pytest.approx(np.sqrt(2.0))

    def test_length_distance_out_of_range_generated(self):
        corpus = build_corpus(["aaaa"])
        # Length-2 guesses contribute nothing inside the 4..12 window.
        assert length_distance(["xy"], corpus) == pytest.approx(1.0)

    def test_pattern_distance_identical(self):
        corpus = build_corpus(["abcd1", "efgh2"])
        assert pattern_distance(["wxyz3", "qrst9"], corpus) == pytest.approx(0.0, abs=1e-9)

    def test_pattern_distance_hand_computed(self):
        corpus = build_corpus(["abcd1"])  # 100% L4N1
        generated = ["12345"]  # 100% N5
        # top pattern list = [L4N1 with p=1]; generated has 0 there -> distance 1.
        assert pattern_distance(generated, corpus) == pytest.approx(1.0)

    def test_pattern_distance_top_k_restriction(self):
        corpus = build_corpus(["abcd1", "efgh2", "wxyz!"])
        # Only the top-1 pattern is compared.
        d = pattern_distance(["zzzz9"], corpus, top_k=1)
        assert d == pytest.approx(abs(2 / 3 - 1.0))

    def test_empty_generated_rejected(self):
        corpus = build_corpus(["abcd1"])
        with pytest.raises(ValueError):
            length_distance([], corpus)
        with pytest.raises(ValueError):
            pattern_distance([], corpus)

    def test_unpatternable_guesses_skipped(self):
        corpus = build_corpus(["abcd1"])
        # Empty strings can't have a pattern; must not crash.
        assert pattern_distance(["", "abcd1"], corpus) >= 0.0
