"""Extended (longer-password) configuration tests (paper §V)."""

import numpy as np
import pytest

from repro.datasets import build_corpus
from repro.models import PagPassGPT
from repro.tokenizer import (
    Pattern,
    Vocabulary,
    build_extended_tokenizer,
    extended_gpt2_config,
)
from repro.training import TrainConfig


class TestExtendedVocabulary:
    def test_sizes_scale_with_segment_length(self):
        assert len(Vocabulary(max_segment_length=12)) == 135
        assert len(Vocabulary(max_segment_length=20)) == 5 + 60 + 94

    def test_extended_pattern_tokens_resolve(self):
        vocab = Vocabulary(max_segment_length=16)
        assert vocab.id_of("L16") != vocab.unk_id
        assert vocab.id_of("L17") == vocab.unk_id
        assert vocab.is_pattern(vocab.id_of("N15"))

    def test_validation(self):
        with pytest.raises(ValueError):
            Vocabulary(max_segment_length=0)


class TestExtendedTokenizer:
    def test_roundtrip_long_password(self):
        tok = build_extended_tokenizer(24)
        password = "correcthorsebattery99!"
        ids = tok.encode_rule(password)
        assert len(ids) == tok.block_size
        assert tok.decode_password(ids) == password

    def test_long_run_pattern_token_used(self):
        tok = build_extended_tokenizer(20)
        ids = tok.encode_rule("abcdefghijklmnop", pad=False)
        tokens = tok.decode_tokens(ids)
        assert tokens[1] == "L16"

    def test_standard_tokenizer_rejects_long(self):
        from repro.tokenizer import PasswordTokenizer

        with pytest.raises(ValueError):
            PasswordTokenizer().encode_rule("abcdefghijklmnop")

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            build_extended_tokenizer(3)
        with pytest.raises(ValueError):
            build_extended_tokenizer(64)

    def test_vocab_tokenizer_consistency_enforced(self):
        from repro.tokenizer import PasswordTokenizer

        with pytest.raises(ValueError):
            PasswordTokenizer(
                vocab=Vocabulary(max_segment_length=12),
                block_size=64,
                max_password_length=20,
            )


class TestExtendedModel:
    def test_train_and_generate_long_passwords(self):
        """The §V extension end to end: a PagPassGPT over 16-char
        passwords trains and generates conforming long passwords."""
        tok = build_extended_tokenizer(16)
        config = extended_gpt2_config(tok, dim=32, n_layers=1, n_heads=2, dropout=0.0)
        model = PagPassGPT(
            model_config=config,
            train_config=TrainConfig(epochs=1, batch_size=32),
            tokenizer=tok,
            seed=0,
        )
        rng = np.random.default_rng(0)
        words = ["correcthorse", "longpassword", "verybigsecret", "extralongword"]
        corpus = build_corpus(
            [w + str(rng.integers(10, 9999)) for w in words for _ in range(10)],
            max_segment_length=16,
        )
        model.fit(corpus)
        pattern = Pattern.parse("L12N4", max_segment_length=16)
        out = model.generate_with_pattern(pattern, 8, seed=0)
        assert len(out) == 8
        assert all(len(pw) == 16 for pw in out)
        assert all(pattern.matches(pw) for pw in out)

        free = model.generate(16, seed=1)
        assert all(len(pw) <= 16 for pw in free)
