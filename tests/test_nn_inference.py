"""Equivalence tests: numpy inference path vs the autograd training path."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.nn import GPT2Config, GPT2Inference, GPT2Model


@pytest.fixture(scope="module")
def model_and_ids():
    cfg = GPT2Config(vocab_size=30, block_size=16, dim=32, n_layers=2, n_heads=4, dropout=0.0)
    model = GPT2Model(cfg, seed=3)
    model.eval()
    ids = np.random.default_rng(0).integers(0, 30, (4, 12))
    return model, ids


class TestFullForward:
    def test_matches_training_path(self, model_and_ids):
        model, ids = model_and_ids
        with no_grad():
            expected = model.forward(ids).data
        actual = GPT2Inference(model).logits(ids)
        assert np.allclose(actual, expected, atol=1e-4)

    def test_rejects_overlong(self, model_and_ids):
        model, _ = model_and_ids
        inf = GPT2Inference(model)
        with pytest.raises(ValueError):
            inf.logits(np.zeros((1, 17), dtype=np.int64))


class TestCachedDecoding:
    def test_start_matches_last_position(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        full = inf.logits(ids)
        last, cache = inf.start(ids[:, :6])
        assert cache.length == 6
        assert np.allclose(last, full[:, 5], atol=1e-4)

    def test_step_by_step_matches_full(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        full = inf.logits(ids)
        last, cache = inf.start(ids[:, :4])
        for t in range(4, ids.shape[1]):
            last = inf.step(ids[:, t], cache)
            assert np.allclose(last, full[:, t], atol=1e-4), f"mismatch at step {t}"

    def test_cache_overflow_raises(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        _, cache = inf.start(np.zeros((2, 16), dtype=np.int64))
        with pytest.raises(ValueError):
            inf.step(np.zeros(2, dtype=np.int64), cache)

    def test_cache_select_rows(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        _, cache = inf.start(ids[:, :5])
        sub = cache.select(np.array([0, 2]))
        assert sub.batch == 2
        full = inf.logits(ids[[0, 2]])
        last = inf.step(ids[[0, 2], 5], sub)
        assert np.allclose(last, full[:, 5], atol=1e-4)

    def test_cache_repeat_rows(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        _, cache = inf.start(ids[:, :5])
        rep = cache.repeat_rows(1, 3)
        assert rep.batch == 3
        last = inf.step(np.array([7, 7, 7]), rep)
        assert np.allclose(last[0], last[1], atol=1e-6)
        expected_rows = np.repeat(ids[1:2, :5], 3, axis=0)
        expected = inf.logits(np.concatenate([expected_rows, np.full((3, 1), 7)], axis=1))
        assert np.allclose(last, expected[:, 5], atol=1e-4)

    def test_weights_snapshot_semantics(self, model_and_ids):
        """Inference is a snapshot: mutating model weights after
        construction does not change inference outputs."""
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        before = inf.logits(ids)
        original = model.ln_f.bias.data.copy()
        try:
            model.ln_f.bias.data += 100.0
            # The snapshot shares arrays, so this *does* change -- this test
            # documents the sharing: rebuilding is required after training.
            after = inf.logits(ids)
            assert not np.allclose(before, after)
        finally:
            model.ln_f.bias.data[...] = original
