"""Property tests for the best-first ordered enumerator.

The ordered backend's whole value is a *provable* contract — the stream
is the model's true top-k, in order, without duplicates.  These tests
check that contract from the outside:

* **brute force equivalence** — on a dim=16 model with deliberately tiny
  pattern spaces, full enumeration of every candidate password (scored
  through the *full-forward* ``inference.logits`` path, independent of
  the KV ``gather``/``extend`` path the enumerator uses) must agree with
  the ordered stream on both membership and scores;
* **monotonicity / uniqueness** — across beam widths and both prompt
  modes the emitted log-probs never increase and no password repeats;
* **truncation accounting** — a frontier cap small enough to prune must
  show up in :class:`OrderedStats` and the metrics registry, never
  silently.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import telemetry
from repro.generation import OrderedConfig, OrderedGenerator, prompts_digest
from repro.generation.sampler import constrained_distribution
from repro.models import PagPassGPT
from repro.nn import GPT2Config
from repro.tokenizer.patterns import Pattern

#: Small enough to brute-force exhaustively: 52*10 + 10*10 = 620 strings.
TINY_PATTERNS = {"L1N1": 0.6, "N2": 0.4}


@pytest.fixture(scope="module")
def tiny_model() -> PagPassGPT:
    """dim=16 deterministic-weight model over a brute-forceable space."""
    model = PagPassGPT(
        model_config=GPT2Config(
            vocab_size=135, block_size=32, dim=16, n_layers=1, n_heads=2, dropout=0.0
        ),
        seed=3,
    )
    model._fitted = True
    model.pattern_probs = dict(TINY_PATTERNS)
    return model


def brute_force_scores(model: PagPassGPT) -> dict[str, float]:
    """Log-prob of EVERY password in the pattern mixture, full-forward.

    Deliberately shares no code with the enumerator's scoring loop: all
    candidates of a pattern are scored in one ``inference.logits`` call
    (no KV cache, no ``gather``, no ``extend``) and the per-position
    probabilities are read off the full logit cube.
    """
    tokenizer = model.tokenizer
    mass = sum(TINY_PATTERNS.values())
    out: dict[str, float] = {}
    for name, prob in TINY_PATTERNS.items():
        pattern = Pattern.parse(name)
        prior = math.log(prob / mass)
        prompt = np.asarray(tokenizer.encode_prompt(pattern), dtype=np.int64)
        allowed = [tokenizer.allowed_ids_at(pattern, i) for i in range(pattern.length)]
        # Cartesian product of the per-position alphabets.
        combos = np.array(np.meshgrid(*allowed, indexing="ij")).reshape(
            pattern.length, -1
        ).T
        ids = np.concatenate(
            [np.tile(prompt, (len(combos), 1)), combos], axis=1
        )
        logits = model.inference.logits(ids)  # (B, S, vocab)
        scores = np.full(len(combos), prior, dtype=np.float64)
        token_strs = tokenizer.vocab.token_array
        for position in range(pattern.length):
            step_logits = logits[:, len(prompt) - 1 + position, :]
            probs = constrained_distribution(step_logits, allowed[position])
            lookup = np.full(len(tokenizer.vocab), -1, dtype=np.int64)
            lookup[allowed[position]] = np.arange(len(allowed[position]))
            column = lookup[combos[:, position]]
            scores += np.log(
                probs[np.arange(len(combos)), column].astype(np.float64)
            )
        for row, score in zip(combos, scores):
            out["".join(token_strs[row])] = float(score)
    return out


class TestBruteForceEquivalence:
    def test_topk_matches_full_enumeration(self, tiny_model):
        """First k of the ordered stream == top-k of the whole space."""
        truth = brute_force_scores(tiny_model)
        ranked = sorted(truth.items(), key=lambda item: -item[1])
        k = 100
        gen = OrderedGenerator.for_patterns(
            tiny_model, config=OrderedConfig(beam_width=16, max_frontier=200_000)
        )
        stream = gen.generate_scored(k)
        assert gen.stats.truncated_nodes == 0  # exactness needs no pruning
        assert [pw for pw, _ in stream] == [pw for pw, _ in ranked[:k]]
        # The reference path (one full-forward attention pass) and the
        # enumerator's KV extend path accumulate float32 rounding in
        # different orders, so scores agree to ~1e-7, not bitwise.
        for (pw, got), (_, want) in zip(stream, ranked):
            assert got == pytest.approx(want, abs=1e-6), pw

    def test_exhaustive_stream_covers_whole_space(self, tiny_model):
        """Asking for more than exists yields every password exactly once."""
        truth = brute_force_scores(tiny_model)
        gen = OrderedGenerator.for_patterns(
            tiny_model, config=OrderedConfig(beam_width=64, max_frontier=200_000)
        )
        stream = gen.generate(len(truth) + 50)
        assert gen.stats.exhausted
        assert len(stream) == len(truth)
        assert set(stream) == set(truth)


class TestOrderingProperties:
    @pytest.mark.parametrize("beam_width", [1, 7, 64])
    def test_scores_non_increasing_and_unique(self, tiny_model, beam_width):
        gen = OrderedGenerator.for_patterns(
            tiny_model,
            config=OrderedConfig(beam_width=beam_width, max_frontier=200_000),
        )
        stream = gen.generate_scored(80)
        scores = [score for _, score in stream]
        assert all(a >= b for a, b in zip(scores, scores[1:]))
        passwords = [pw for pw, _ in stream]
        assert len(set(passwords)) == len(passwords)

    def test_stream_is_beam_width_invariant(self, tiny_model):
        """beam_width is a throughput knob: the emitted bytes don't move."""
        streams = [
            OrderedGenerator.for_patterns(
                tiny_model,
                config=OrderedConfig(beam_width=w, max_frontier=200_000),
            ).generate(60)
            for w in (1, 16)
        ]
        assert streams[0] == streams[1]

    def test_unconditional_mode_properties(self, tiny_model):
        """PassGPT-style mode: <EOS>-terminated, capped length, ordered."""
        gen = OrderedGenerator.unconditional(
            tiny_model,
            config=OrderedConfig(beam_width=16, max_chars=2, max_frontier=200_000),
        )
        stream = gen.generate_scored(40)
        scores = [score for _, score in stream]
        assert all(a >= b for a, b in zip(scores, scores[1:]))
        passwords = [pw for pw, _ in stream]
        assert len(set(passwords)) == len(passwords)
        assert all(len(pw) <= 2 for pw in passwords)


class TestTruncationAccounting:
    def test_frontier_cap_is_reported_not_silent(self, tiny_model):
        registry = telemetry.get_registry()
        before = registry.counter("ordered.truncated").value
        gen = OrderedGenerator.for_patterns(
            tiny_model, config=OrderedConfig(beam_width=8, max_frontier=16)
        )
        gen.generate(30)
        assert gen.stats.truncated_nodes > 0
        assert gen.stats.truncated_mass > 0.0
        assert registry.counter("ordered.truncated").value - before == (
            gen.stats.truncated_nodes
        )

    def test_exhaustion_is_flagged(self, tiny_model):
        """A drained frontier reports exhausted instead of spinning."""
        gen = OrderedGenerator.unconditional(
            tiny_model,
            config=OrderedConfig(beam_width=16, max_chars=1, max_frontier=200_000),
        )
        stream = gen.generate(1000)
        assert gen.stats.exhausted
        # <=1-char space: the empty password plus every single character.
        assert len(stream) == 1 + len(tiny_model.tokenizer.vocab.char_ids)


class TestConfigAndDigest:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beam_width": 0},
            {"beam_width": 32, "max_frontier": 16},
            {"snapshot_every": 0},
            {"max_patterns": 0},
            {"max_chars": 0},
        ],
    )
    def test_config_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            OrderedConfig(**kwargs)

    def test_prompts_digest_tracks_priors_and_patterns(self, tiny_model):
        base = OrderedGenerator.for_patterns(tiny_model)
        same = OrderedGenerator.for_patterns(tiny_model)
        assert prompts_digest(base.prompts) == prompts_digest(same.prompts)
        other = OrderedGenerator.for_patterns(
            tiny_model, pattern_probs={"L1N1": 0.5, "N2": 0.5}
        )
        assert prompts_digest(base.prompts) != prompts_digest(other.prompts)

    def test_requires_pattern_distribution(self):
        model = PagPassGPT(
            model_config=GPT2Config(
                vocab_size=135, block_size=32, dim=16, n_layers=1, n_heads=2,
                dropout=0.0,
            ),
            seed=0,
        )
        model._fitted = True  # fitted but with an empty S_p
        with pytest.raises(ValueError, match="pattern distribution"):
            OrderedGenerator.for_patterns(model)
