"""Tokenizer encode/decode tests (Fig. 4-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenizer import (
    DIGITS,
    LETTERS,
    SPECIALS,
    VOCAB,
    Pattern,
    PasswordOnlyTokenizer,
    PasswordTokenizer,
    extract_pattern,
)

password_chars = st.sampled_from(LETTERS + DIGITS + SPECIALS)
passwords = st.text(alphabet=password_chars, min_size=1, max_size=12)


@pytest.fixture(scope="module")
def tok():
    return PasswordTokenizer()


@pytest.fixture(scope="module")
def pot():
    return PasswordOnlyTokenizer()


class TestRuleEncoding:
    def test_rule_structure(self, tok):
        ids = tok.encode_rule("Pass123$", pad=False)
        # <BOS> L4 N3 S1 <SEP> P a s s 1 2 3 $ <EOS>
        assert ids[0] == VOCAB.bos_id
        assert ids[4] == VOCAB.sep_id
        assert ids[-1] == VOCAB.eos_id
        assert len(ids) == 1 + 3 + 1 + 8 + 1
        assert VOCAB.is_pattern(ids[1]) and VOCAB.is_pattern(ids[3])

    def test_padding_to_block(self, tok):
        ids = tok.encode_rule("abc123")
        assert len(ids) == tok.block_size
        assert ids[-1] == VOCAB.pad_id

    def test_prompt_encoding(self, tok):
        prompt = tok.encode_prompt(Pattern.parse("L4N3S1"))
        assert prompt[0] == VOCAB.bos_id
        assert prompt[-1] == VOCAB.sep_id
        assert len(prompt) == 5

    def test_encode_corpus_shape(self, tok):
        mat = tok.encode_corpus(["abc123", "Pass123$"])
        assert mat.shape == (2, tok.block_size)
        assert mat.dtype == np.int64

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            PasswordTokenizer(block_size=20)

    def test_class_char_ids_sizes(self, tok):
        # The paper's candidate counts: 52 letters, 10 digits, 32 specials.
        assert len(tok.class_char_ids["L"]) == 52
        assert len(tok.class_char_ids["N"]) == 10
        assert len(tok.class_char_ids["S"]) == 32


class TestDecoding:
    def test_decode_stops_at_eos(self, tok):
        ids = tok.encode_rule("abc123")
        ids = ids + [VOCAB.id_of("x")]  # junk after pad
        assert tok.decode_password(ids) == "abc123"

    def test_decode_tokens(self, tok):
        tokens = tok.decode_tokens(tok.encode_rule("a1", pad=False))
        assert tokens == ["<BOS>", "L1", "N1", "<SEP>", "a", "1", "<EOS>"]

    def test_decode_ignores_pattern_tokens_after_sep(self, tok):
        # Corrupt stream: pattern token after SEP must be skipped, not crash.
        ids = [VOCAB.bos_id, VOCAB.id_of("L1"), VOCAB.sep_id, VOCAB.id_of("L2"), VOCAB.id_of("a")]
        assert tok.decode_password(ids) == "a"


class TestAllowedIds:
    def test_classes_by_position(self, tok):
        p = Pattern.parse("L2N1S1")
        assert len(tok.allowed_ids_at(p, 0)) == 52
        assert len(tok.allowed_ids_at(p, 1)) == 52
        assert len(tok.allowed_ids_at(p, 2)) == 10
        assert len(tok.allowed_ids_at(p, 3)) == 32
        assert list(tok.allowed_ids_at(p, 4)) == [VOCAB.eos_id]
        with pytest.raises(IndexError):
            tok.allowed_ids_at(p, 5)

    def test_pattern_token_tables(self, tok):
        assert tok.pattern_token_info[tok.pattern_token_id["L"][4]] == ("L", 4)
        assert len(tok.pattern_token_info) == 36


class TestPasswordOnlyTokenizer:
    def test_encoding_structure(self, pot):
        ids = pot.encode("abc1", pad=False)
        assert ids[0] == VOCAB.bos_id
        assert ids[-1] == VOCAB.eos_id
        assert len(ids) == 6

    def test_too_long_rejected(self, pot):
        with pytest.raises(ValueError):
            pot.encode("a" * 15)

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            PasswordOnlyTokenizer(block_size=10)


# ----------------------------------------------------------------------
# Property-based: encode/decode must round-trip for every valid password
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(passwords)
def test_rule_roundtrip(password):
    tok = PasswordTokenizer()
    assert tok.decode_password(tok.encode_rule(password)) == password


@settings(max_examples=200, deadline=None)
@given(passwords)
def test_password_only_roundtrip(password):
    pot = PasswordOnlyTokenizer()
    assert pot.decode(pot.encode(password)) == password


@settings(max_examples=100, deadline=None)
@given(passwords)
def test_rule_pattern_prefix_matches_extraction(password):
    tok = PasswordTokenizer()
    ids = tok.encode_rule(password, pad=False)
    sep = ids.index(VOCAB.sep_id)
    pattern_tokens = [VOCAB.token_of(i) for i in ids[1:sep]]
    assert "".join(pattern_tokens) == extract_pattern(password).string
