"""D&C-GEN tests (Algorithm 1 invariants).

These run against an *untrained* PagPassGPT: the algorithm's guarantees
(non-overlapping subtasks, budget conservation, conformity) must hold for
any next-token distribution, so training is unnecessary.
"""

import numpy as np
import pytest

from repro.datasets import build_corpus
from repro.generation import DCGenConfig, DCGenerator, remaining_search_space
from repro.models import PagPassGPT
from repro.nn import GPT2Config
from repro.tokenizer import Pattern, extract_pattern


@pytest.fixture(scope="module")
def untrained_pag():
    model = PagPassGPT(
        model_config=GPT2Config(vocab_size=135, block_size=32, dim=32, n_layers=1, n_heads=2, dropout=0.0),
        seed=0,
    )
    # Mark fitted with a hand-made pattern distribution; weights stay random.
    model._fitted = True
    model.pattern_probs = {"L4N2": 0.5, "N6": 0.3, "L3S1N2": 0.2}
    return model


class TestRemainingSearchSpace:
    def test_full_pattern(self):
        assert remaining_search_space(Pattern.parse("N3"), 0) == 1000
        assert remaining_search_space(Pattern.parse("L1N1"), 0) == 520

    def test_partial(self):
        p = Pattern.parse("L2N2")
        assert remaining_search_space(p, 1) == 52 * 100
        assert remaining_search_space(p, 4) == 1

    def test_matches_pattern_search_space(self):
        p = Pattern.parse("L4N3S1")
        assert remaining_search_space(p, 0) == p.search_space()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DCGenConfig(threshold=0)
        with pytest.raises(ValueError):
            DCGenConfig(min_count=0)
        with pytest.raises(ValueError):
            DCGenConfig(gen_batch=0)
        with pytest.raises(ValueError):
            DCGenConfig(workers=0)


class TestAlgorithm:
    def test_requires_fitted_model(self):
        model = PagPassGPT(
            model_config=GPT2Config(vocab_size=135, block_size=32, dim=32, n_layers=1, n_heads=2, dropout=0.0)
        )
        with pytest.raises(RuntimeError):
            DCGenerator(model).generate(10)

    def test_requires_pattern_distribution(self, untrained_pag):
        gen = DCGenerator(untrained_pag)
        with pytest.raises(ValueError):
            gen.generate(10, pattern_probs={})

    def test_output_conforms_to_input_patterns(self, untrained_pag):
        gen = DCGenerator(untrained_pag, DCGenConfig(threshold=50))
        out = gen.generate(400, seed=0)
        allowed = set(untrained_pag.pattern_probs)
        assert out
        for pw in out:
            assert extract_pattern(pw).string in allowed

    def test_budget_allocation_proportional(self, untrained_pag):
        gen = DCGenerator(untrained_pag, DCGenConfig(threshold=100))
        out = gen.generate(1000, seed=0)
        counts = {}
        for pw in out:
            counts[extract_pattern(pw).string] = counts.get(pw and extract_pattern(pw).string, 0) + 1
        total = len(out)
        assert counts["L4N2"] / total == pytest.approx(0.5, abs=0.1)
        assert counts["N6"] / total == pytest.approx(0.3, abs=0.1)

    def test_search_space_cap(self, untrained_pag):
        """A pattern with a tiny search space cannot be asked for more
        guesses than exist (optimisation 2, §III-C3)."""
        gen = DCGenerator(untrained_pag, DCGenConfig(threshold=10))
        out = gen.generate(100_000, pattern_probs={"S1": 1.0}, seed=0)
        assert len(out) <= 32
        assert len(set(out)) == len(out)  # full division -> all distinct

    def test_full_division_eliminates_duplicates(self, untrained_pag):
        """With threshold 1 every leaf is a single fully-specified prefix,
        so the output must be duplicate-free (the paper's T->1 limit)."""
        gen = DCGenerator(untrained_pag, DCGenConfig(threshold=1))
        out = gen.generate(300, pattern_probs={"N4": 1.0}, seed=0)
        assert len(set(out)) == len(out)

    def test_low_threshold_reduces_repeats(self, untrained_pag):
        big = DCGenerator(untrained_pag, DCGenConfig(threshold=4096))
        small = DCGenerator(untrained_pag, DCGenConfig(threshold=16))
        guesses_big = big.generate(3000, pattern_probs={"N4": 1.0}, seed=1)
        guesses_small = small.generate(3000, pattern_probs={"N4": 1.0}, seed=1)

        def rep(g):
            return 1 - len(set(g)) / len(g)

        assert rep(guesses_small) <= rep(guesses_big)

    def test_stats_populated(self, untrained_pag):
        gen = DCGenerator(untrained_pag, DCGenConfig(threshold=20))
        out = gen.generate(500, seed=0)
        stats = gen.stats
        assert stats.generated == len(out)
        assert stats.patterns_used >= 1
        assert stats.leaves >= stats.patterns_used
        assert stats.model_calls > 0

    def test_max_patterns_limits_coverage(self, untrained_pag):
        gen = DCGenerator(untrained_pag, DCGenConfig(threshold=100, max_patterns=1))
        out = gen.generate(300, seed=0)
        patterns = {extract_pattern(pw).string for pw in out}
        assert patterns == {"L4N2"}  # highest-probability pattern only

    def test_total_close_to_requested(self, untrained_pag):
        gen = DCGenerator(untrained_pag, DCGenConfig(threshold=64))
        out = gen.generate(2000, seed=0)
        assert len(out) == pytest.approx(2000, rel=0.25)

    def test_deterministic_division_tree(self, untrained_pag):
        g1 = DCGenerator(untrained_pag, DCGenConfig(threshold=32)).generate(500, seed=9)
        g2 = DCGenerator(untrained_pag, DCGenConfig(threshold=32)).generate(500, seed=9)
        assert g1 == g2

    def test_determinism_regression(self, untrained_pag):
        """Two independent runs with one seed/config are byte-identical —
        guess list AND stats (the reproducibility contract the parallel
        backend builds on)."""
        first = DCGenerator(untrained_pag, DCGenConfig(threshold=32))
        second = DCGenerator(untrained_pag, DCGenConfig(threshold=32))
        out1 = first.generate(700, seed=9)
        out2 = second.generate(700, seed=9)
        assert "\n".join(out1).encode() == "\n".join(out2).encode()
        assert first.stats == second.stats

    def test_gen_batch_does_not_change_output(self, untrained_pag):
        """The model-call batch width is a pure throughput knob: every
        leaf pre-draws its randomness, so repacking rows into different
        batches cannot change what is sampled."""
        base = DCGenerator(untrained_pag, DCGenConfig(threshold=64)).generate(800, seed=5)
        for gen_batch in (7, 64, 1024):
            gen = DCGenerator(untrained_pag, DCGenConfig(threshold=64, gen_batch=gen_batch))
            assert gen.generate(800, seed=5) == base


class TestDedupedPriming:
    """Physical forward work must match the logical stats and the plan."""

    def test_cold_serial_run_physical_equals_logical(self, untrained_pag):
        model = untrained_pag
        model.invalidate_inference()  # cold weight snapshot + prompt cache
        gen = DCGenerator(model, DCGenConfig(threshold=40, gen_batch=64))
        counters = model.inference.counters
        counters.reset()
        out = gen.generate(600, seed=1)
        assert out
        # In a cold serial run every logical call happens physically
        # exactly once; a mismatch means hidden re-priming (or phantom
        # accounting) crept in.
        assert counters.calls == gen.stats.model_calls

    def test_execute_counters_match_planned_costs(self, untrained_pag):
        from repro.generation import build_batches, planned_execute_costs

        model = untrained_pag
        model.invalidate_inference()
        gen = DCGenerator(model, DCGenConfig(threshold=40, gen_batch=64))
        leaves = gen.plan(600)  # warms every pattern prompt
        batches = build_batches(leaves, 64)
        planned = planned_execute_costs(batches)
        counters = model.inference.counters
        counters.reset()
        gen._execute(batches, 1)
        assert counters.calls == planned["model_calls"]
        assert counters.prime_positions == planned["primed_positions"]

    def test_priming_flops_proxy_reduced_at_least_2x(self, untrained_pag):
        """The headline dedup win: primed rows x prefix length drops >=2x
        vs per-row priming (what execute_batch did before the fast path)."""
        from repro.generation import build_batches, planned_execute_costs

        model = untrained_pag
        model.invalidate_inference()
        gen = DCGenerator(model, DCGenConfig(threshold=40, gen_batch=64))
        leaves = gen.plan(600)
        batches = build_batches(leaves, 64)
        legacy = sum(
            batch.rows
            * (batch.slices[0][0].prompt_len + batch.slices[0][0].done_chars)
            for batch in batches
            if Pattern.parse(batch.slices[0][0].pattern).length
            > batch.slices[0][0].done_chars
        )
        prompts = {leaf.pattern: leaf.prompt_len for leaf in leaves}
        deduped = planned_execute_costs(batches)["primed_positions"] + sum(
            prompts.values()
        )
        assert legacy >= 2 * deduped
