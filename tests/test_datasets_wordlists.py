"""Sanity checks on the embedded lexical material."""

from repro.datasets import wordlists as wl
from repro.tokenizer import is_visible_ascii


class TestWordlists:
    def test_no_duplicates_within_lists(self):
        for lst in (wl.COMMON_WORDS, wl.FIRST_NAMES, wl.KEYBOARD_WALKS,
                    wl.DIGIT_SUFFIXES, wl.SPECIAL_FAVOURITES):
            assert len(lst) == len(set(lst))

    def test_all_entries_visible_ascii_lowercase(self):
        for word in wl.COMMON_WORDS + wl.FIRST_NAMES + wl.KEYBOARD_WALKS:
            assert is_visible_ascii(word)
            assert word == word.lower()

    def test_sizes_support_zipf_head(self):
        assert len(wl.COMMON_WORDS) >= 300
        assert len(wl.FIRST_NAMES) >= 150
        assert len(wl.DIGIT_SUFFIXES) >= 60

    def test_digit_suffixes_are_digits(self):
        assert all(s.isdigit() for s in wl.DIGIT_SUFFIXES)

    def test_leet_map_is_class_changing(self):
        """Every leet substitution changes the character class — that's
        what makes leet words produce multi-segment patterns."""
        from repro.tokenizer import char_class

        for src, dst in wl.LEET_MAP.items():
            assert char_class(src) == "L"
            assert char_class(dst) in ("N", "S")

    def test_specials_are_specials(self):
        from repro.tokenizer import char_class

        assert all(char_class(s) == "S" for s in wl.SPECIAL_FAVOURITES)
