"""Campaign-level telemetry integration (ISSUE 5 acceptance tests).

Four contracts pinned here:

1. **Zero interference** — running the golden campaign inside a
   telemetry session emits the byte-identical stream the committed
   fixture records.  Observability must never alter sampling.
2. **Determinism** — two identically-seeded campaigns produce identical
   event streams (after :func:`stable_events` strips timestamps, pids
   and durations) and identical session metric deltas.
3. **Conservation** — a 2-worker journaled campaign's merged summary
   matches the planned budget from ``planned_execute_costs`` exactly:
   fleet guess count, model calls, prompt-cache hits, task count.
4. **Fault accounting** — an injected worker crash shows up as a
   counted ``task_failed``/``task_recovered`` pair with nothing
   unaccounted, and a crash/resume run's merged summary records the
   resume while still passing :func:`check_summary`.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro import telemetry
from repro.generation import DCGenConfig, DCGenerator, build_batches, planned_execute_costs
from repro.runtime import faults

from tests.goldens import GOLDEN_PATH, SPEC, build_model

#: Smaller-than-golden campaign used by the accounting tests (the golden
#: scale is reserved for the byte-identity test, which must match the
#: committed fixture exactly).
TOTAL = 600
SEED = 11
THRESHOLD = 48


def _generator(workers: int = 1, gen_batch: int = 128) -> DCGenerator:
    model = build_model()
    return DCGenerator(
        model, DCGenConfig(threshold=THRESHOLD, gen_batch=gen_batch, workers=workers)
    )


def _summary_events(directory):
    out = []
    for path in telemetry.campaign_files(directory):
        out.extend(telemetry.read_events(path))
    return out


# ----------------------------------------------------------------------
# 1. Telemetry never changes the stream
# ----------------------------------------------------------------------

def test_golden_stream_byte_identical_with_telemetry(tmp_path):
    golden = json.loads(GOLDEN_PATH.read_text())
    dc = SPEC["dcgen"]
    with telemetry.session(tmp_path, run_id="golden"):
        model = build_model()
        gen = DCGenerator(model, DCGenConfig(threshold=dc["threshold"]))
        dcgen_stream = gen.generate(dc["total"], seed=dc["seed"])
        free_stream = model.generate(SPEC["free"]["n"], seed=SPEC["free"]["seed"])
    assert hashlib.sha256("\n".join(dcgen_stream).encode()).hexdigest() == golden["dcgen_sha256"]
    assert hashlib.sha256("\n".join(free_stream).encode()).hexdigest() == golden["free_sha256"]
    # ...and the run actually traced: both campaigns planned + spanned.
    events = telemetry.read_events(tmp_path / "telemetry.jsonl")
    plans = [e["fields"] for e in events if e["event"] == "campaign_plan"]
    assert [p["kind"] for p in plans] == ["dcgen", "free"]
    span_names = {e["fields"]["name"] for e in events if e["event"] == "span"}
    assert {"campaign", "dcgen.plan", "dcgen.execute_batch", "free.chunk"} <= span_names


# ----------------------------------------------------------------------
# 2. Identical campaigns -> identical traces
# ----------------------------------------------------------------------

def _traced_campaign(directory) -> list[str]:
    # Force the lazy inference engine into existence *before* the
    # session: registering its counter group replaces any prior model's
    # values, and that replacement must be part of the session's registry
    # mark — deltas then depend only on this campaign's work.
    model = build_model()
    model.inference
    gen = DCGenerator(model, DCGenConfig(threshold=THRESHOLD, gen_batch=128))
    with telemetry.session(directory, run_id="det") as sess:
        stream = gen.generate(TOTAL, seed=SEED)
        delta = sess.metrics_delta()
    return stream, delta


def test_identical_campaigns_emit_identical_telemetry(tmp_path):
    stream_a, delta_a = _traced_campaign(tmp_path / "a")
    stream_b, delta_b = _traced_campaign(tmp_path / "b")
    assert stream_a == stream_b
    assert delta_a == delta_b

    events_a = telemetry.stable_events(telemetry.read_events(tmp_path / "a" / "telemetry.jsonl"))
    events_b = telemetry.stable_events(telemetry.read_events(tmp_path / "b" / "telemetry.jsonl"))
    assert events_a == events_b

    summary_a = telemetry.summarize_campaign(tmp_path / "a")
    summary_b = telemetry.summarize_campaign(tmp_path / "b")
    for key in ("planned", "executed", "total_guesses", "faults", "resumed"):
        assert summary_a[key] == summary_b[key], key


def test_two_worker_merge_is_deterministic(tmp_path):
    """Worker split does not change the merged accounting."""
    for sub in ("a", "b"):
        model = build_model()
        gen = DCGenerator(model, DCGenConfig(threshold=THRESHOLD, gen_batch=128, workers=2))
        with telemetry.session(tmp_path / sub, run_id="det"):
            gen.generate(TOTAL, seed=SEED)
    summary_a = telemetry.summarize_campaign(tmp_path / "a")
    summary_b = telemetry.summarize_campaign(tmp_path / "b")
    for key in ("planned", "executed", "total_guesses", "faults", "resumed"):
        assert summary_a[key] == summary_b[key], key
    assert telemetry.check_summary(summary_a) == []
    assert telemetry.check_summary(summary_b) == []


# ----------------------------------------------------------------------
# 3. Merged summary == planned budget (the acceptance criterion)
# ----------------------------------------------------------------------

def test_two_worker_journaled_campaign_matches_planned_budget(tmp_path):
    model = build_model()
    gen = DCGenerator(model, DCGenConfig(threshold=THRESHOLD, gen_batch=128, workers=2))
    with telemetry.session(tmp_path / "tele", run_id="campaign"):
        stream = gen.generate(TOTAL, seed=SEED, journal=tmp_path / "run.jsonl")

    batches = build_batches(gen.leaf_tasks, 128)
    planned = planned_execute_costs(batches)

    summary = telemetry.summarize_campaign(tmp_path / "tele")
    assert summary["planned"]["rows"] == len(stream)
    executed = summary["executed"]
    assert executed["tasks"] == len(batches)
    assert executed["guesses"] == len(stream)
    assert executed["model_calls"] == planned["model_calls"]
    assert executed["prompt_cache_hits"] == planned["prompt_cache_hits"]
    assert summary["total_guesses"] == len(stream)
    assert telemetry.check_summary(summary) == []

    # Per-worker traces exist and the merge saw every source.
    workers = [name for name in summary["files"] if name.startswith("telemetry-worker-")]
    assert workers, "no per-worker telemetry streams were written"
    assert sum(w["tasks"] for w in summary["workers"].values()) == len(batches)

    # Journal writes were spanned and counted.
    assert summary["journal_records"] >= len(batches)


def test_serial_campaign_also_passes_check(tmp_path):
    gen = _generator(workers=1)
    with telemetry.session(tmp_path, run_id="serial"):
        stream = gen.generate(TOTAL, seed=SEED)
    summary = telemetry.summarize_campaign(tmp_path)
    assert summary["total_guesses"] == len(stream)
    assert telemetry.check_summary(summary) == []


# ----------------------------------------------------------------------
# 4. Fault accounting
# ----------------------------------------------------------------------

def test_worker_crash_retry_is_counted(tmp_path, monkeypatch):
    reference = _generator(workers=1).generate(TOTAL, seed=SEED)

    # One-shot crash of pool task #1: the first attempt dies, the retry
    # succeeds (the state dir marks the directive as already tripped).
    monkeypatch.setenv(faults.FAULT_ENV, "crash:worker:1")
    monkeypatch.setenv(faults.FAULT_STATE_ENV, str(tmp_path / "faults"))

    gen = _generator(workers=2)
    with telemetry.session(tmp_path / "tele", run_id="retry"):
        stream = gen.generate(TOTAL, seed=SEED)
    assert stream == reference  # the retry changed nothing downstream

    summary = telemetry.summarize_campaign(tmp_path / "tele")
    assert summary["faults"]["task_failed"] >= 1
    assert summary["faults"]["task_recovered"] >= 1
    assert summary["faults"]["unaccounted"] == []
    assert any(
        "InjectedFault" in detail["error"] for detail in summary["faults"]["details"]
    )
    assert telemetry.check_summary(summary) == []


def test_crash_resume_campaign_is_accounted(tmp_path, monkeypatch):
    reference = _generator(workers=1).generate(TOTAL, seed=SEED)
    journal = tmp_path / "run.jsonl"
    tele_dir = tmp_path / "tele"

    # Crash the parent after two journaled leaf batches...
    monkeypatch.setenv(faults.FAULT_ENV, "crash:leaf_batch:2")
    telemetry.start_session(tele_dir, run_id="resume")
    with pytest.raises(faults.InjectedFault):
        _generator(workers=1).generate(TOTAL, seed=SEED, journal=journal)

    # ...then clear the fault and resume into the same telemetry dir.
    monkeypatch.delenv(faults.FAULT_ENV)
    faults.reset()
    stream = _generator(workers=1).generate(TOTAL, seed=SEED, journal=journal, resume=True)
    telemetry.end_session()
    assert stream == reference  # resume is byte-identical

    summary = telemetry.summarize_campaign(tele_dir)
    assert summary["resumed"]["tasks"] >= 1  # the resume replayed journaled work
    assert summary["resumed"]["guesses"] > 0
    # The crash fired *before* the journal write, so the interrupted
    # batch ran twice: executed totals may exceed the plan but the
    # resume-aware invariants must still hold.
    assert summary["total_guesses"] >= len(reference)
    assert telemetry.check_summary(summary) == []

    events = _summary_events(tele_dir)
    assert any(e["event"] == "campaign_resume" for e in events)
