"""Chaos harness: seeded random faults, byte-identical resume invariant.

The full acceptance sweep (20+ schedules per strategy) runs via
``repro chaos``; these tests keep CI-sized shapes while exercising every
leg of the harness — schedule determinism, crash/signal/disk-full/torn
cases, and the survived-fault path.
"""

import pytest

from repro.cli import main
from repro.runtime.chaos import ChaosCase, build_schedule, run_case, run_chaos


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    root = tmp_path_factory.mktemp("chaos")
    leak = root / "leak.txt"
    cleaned = root / "cleaned.txt"
    assert main(["synth", "--site", "rockyou", "--entries", "3000",
                 "--out", str(leak)]) == 0
    assert main(["clean", "--input", str(leak), "--out", str(cleaned)]) == 0
    ckpt = root / "model.npz"
    assert main(["train", "--input", str(cleaned), "--out", str(ckpt),
                 "--dim", "32", "--layers", "1", "--heads", "2",
                 "--epochs", "1", "--batch-size", "128"]) == 0
    return ckpt


class TestSchedule:
    def test_same_seed_replays_the_same_schedule(self):
        a = build_schedule(7, ["sampled", "dcgen", "ordered"], [1, 2], 3)
        b = build_schedule(7, ["sampled", "dcgen", "ordered"], [1, 2], 3)
        assert a == b

    def test_different_seed_differs(self):
        a = build_schedule(7, ["sampled", "dcgen"], [1, 2], 4)
        b = build_schedule(8, ["sampled", "dcgen"], [1, 2], 4)
        assert a != b

    def test_ordered_is_serial_only(self):
        cases = build_schedule(0, ["ordered"], [1, 2], 2)
        assert cases and all(c.workers == 1 for c in cases)

    def test_worker_faults_only_with_workers(self):
        cases = build_schedule(0, ["sampled"], [1], 50)
        assert all("worker" not in c.fault for c in cases)


class TestRunCase:
    def test_dcgen_crash_resume_is_byte_identical(self, checkpoint, tmp_path):
        case = ChaosCase(0, "dcgen", 1, seed=9, fault="crash:leaf_batch:2")
        result = run_case(case, checkpoint, tmp_path, n=400)
        assert result.ok, result.failure
        assert result.chaos_outcome == "raise:InjectedFault"
        assert result.resume_exit == 0
        assert result.identical and result.check_ok

    def test_sampled_signal_exits_4_and_resumes(self, checkpoint, tmp_path):
        case = ChaosCase(0, "sampled", 1, seed=3, fault="signal:free_chunk:1")
        result = run_case(case, checkpoint, tmp_path, n=1200)
        assert result.ok, result.failure
        assert result.chaos_outcome == "exit:4"
        assert result.identical and result.check_ok

    def test_disk_full_exits_1_and_resumes(self, checkpoint, tmp_path):
        case = ChaosCase(0, "dcgen", 1, seed=5, fault="disk_full:journal:2")
        result = run_case(case, checkpoint, tmp_path, n=400)
        assert result.ok, result.failure
        assert result.chaos_outcome == "exit:1"
        assert result.identical and result.check_ok

    def test_corrupt_tail_repair_then_resume(self, checkpoint, tmp_path):
        case = ChaosCase(0, "dcgen", 1, seed=11, fault="corrupt_tail")
        result = run_case(case, checkpoint, tmp_path, n=400)
        assert result.ok, result.failure
        assert result.repair_exit in (0, 2)  # repaired, or discarded as unrepairable
        assert result.identical and result.check_ok

    def test_ordered_crash_resume(self, checkpoint, tmp_path):
        case = ChaosCase(0, "ordered", 1, seed=0, fault="crash:frontier:1")
        result = run_case(case, checkpoint, tmp_path, n=60)
        assert result.ok, result.failure
        assert result.identical and result.check_ok


class TestRunChaos:
    def test_small_sweep_holds_the_invariant(self, checkpoint, tmp_path):
        report = run_chaos(
            checkpoint,
            tmp_path / "sweep",
            base_seed=1,
            strategies=["dcgen"],
            workers_list=[1],
            per_strategy=2,
            n=400,
        )
        assert len(report.cases) == 2
        assert report.ok, [r.failure for r in report.failures]
        payload = report.to_dict()
        assert payload["total"] == 2 and payload["failed"] == 0

    def test_cli_chaos_command(self, checkpoint, tmp_path, capsys):
        code = main([
            "chaos", "--workdir", str(tmp_path / "wd"),
            "--checkpoint", str(checkpoint),
            "--seed", "2", "--per-strategy", "1",
            "--strategies", "dcgen", "--workers", "1", "-n", "400",
        ])
        assert code == 0
        assert (tmp_path / "wd" / "chaos-report.json").exists()
        assert "0 failure(s)" in capsys.readouterr().out
