"""Artifact integrity: journal scan/repair, manifests, checkpoint checks."""

import json

import pytest

from repro.runtime import (
    Finding,
    RunJournal,
    repair_journal,
    scan_journal,
    verify_manifest,
    verify_paths,
    write_manifest,
)
from repro.runtime.integrity import journal_header_digest, verify_checkpoint

HEADER = {"kind": "dcgen", "seed": 7, "total": 100, "plan": "abc123"}


def make_journal(path, n_records=5):
    journal = RunJournal.create(path, HEADER)
    for i in range(n_records):
        journal.record("leaf_batch", i, {"guesses": [f"pw{i}"], "model_calls": i})
    journal.close()
    return path


def kinds(findings):
    return [f.kind for f in findings]


class TestFinding:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Finding("fatal", "torn_tail", "x", "nope")

    def test_to_dict_is_json_serialisable(self):
        f = Finding("error", "torn_tail", "j.jsonl", "torn", {"valid_bytes": 10})
        assert json.loads(json.dumps(f.to_dict()))["kind"] == "torn_tail"


class TestScanJournal:
    def test_clean_journal_yields_nothing(self, tmp_path):
        path = make_journal(tmp_path / "run.journal.jsonl")
        assert scan_journal(path) == []

    def test_missing_file(self, tmp_path):
        assert kinds(scan_journal(tmp_path / "none.jsonl")) == ["missing_file"]

    def test_partial_last_line(self, tmp_path):
        path = make_journal(tmp_path / "run.journal.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "leaf_batch", "task_id": 9, "payl')
        findings = scan_journal(path)
        assert kinds(findings) == ["torn_tail"]
        assert findings[0].data["dropped_lines"] == 1
        assert findings[0].data["valid_records"] == 5

    def test_multi_record_tear(self, tmp_path):
        """A tear can take several trailing records; all are untrusted."""
        path = make_journal(tmp_path / "run.journal.jsonl", n_records=6)
        lines = path.read_text().splitlines()
        tampered = json.loads(lines[3])
        tampered["payload"]["guesses"] = ["evil"]  # digest mismatch on line 4
        lines[3] = json.dumps(tampered)
        path.write_text("\n".join(lines) + "\n")
        findings = scan_journal(path)
        assert kinds(findings) == ["torn_tail"]
        # Line 4 and the 3 lines after it are all dropped, even though
        # those later lines are individually valid.
        assert findings[0].data["first_bad_line"] == 3
        assert findings[0].data["dropped_lines"] == 4
        assert findings[0].data["valid_records"] == 2

    def test_headerless_file_is_bad_header(self, tmp_path):
        path = tmp_path / "run.journal.jsonl"
        path.write_text('{"not": "a header"}\n')
        assert kinds(scan_journal(path)) == ["bad_header"]

    def test_expected_header_conflict(self, tmp_path):
        path = make_journal(tmp_path / "run.journal.jsonl")
        findings = scan_journal(path, expected_header=dict(HEADER, seed=8))
        assert kinds(findings) == ["header_conflict"]


class TestRepairJournal:
    def test_repair_truncates_to_last_valid_record(self, tmp_path):
        path = make_journal(tmp_path / "run.journal.jsonl")
        good = path.read_bytes()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        findings = repair_journal(path)
        assert kinds(findings) == ["repaired"]
        assert path.read_bytes() == good
        # The repaired journal opens cleanly with every record intact.
        journal = RunJournal.open(path)
        assert set(journal.completed("leaf_batch")) == {0, 1, 2, 3, 4}
        assert journal.recovered_tail == 0
        journal.close()

    def test_repair_multi_record_tear(self, tmp_path):
        path = make_journal(tmp_path / "run.journal.jsonl", n_records=6)
        lines = path.read_text().splitlines()
        lines[4] = lines[4][:-10]  # truncate a middle-ish record
        path.write_text("\n".join(lines) + "\n")
        assert kinds(repair_journal(path)) == ["repaired"]
        journal = RunJournal.open(path)
        assert set(journal.completed("leaf_batch")) == {0, 1, 2}
        journal.close()

    def test_clean_journal_untouched(self, tmp_path):
        path = make_journal(tmp_path / "run.journal.jsonl")
        before = path.read_bytes()
        assert repair_journal(path) == []
        assert path.read_bytes() == before

    def test_headerless_is_unrepairable(self, tmp_path):
        path = tmp_path / "run.journal.jsonl"
        path.write_text("garbage\n")
        findings = repair_journal(path)
        assert kinds(findings) == ["unrepairable"]
        assert findings[0].severity == "error"


class TestManifest:
    def make_tree(self, tmp_path):
        out = tmp_path / "guesses.txt"
        out.write_text("hunter2\npassword\n")
        journal = make_journal(tmp_path / "run.journal.jsonl")
        manifest = tmp_path / "MANIFEST.json"
        write_manifest(manifest, [out, journal], run={"seed": 7})
        return out, journal, manifest

    def test_roundtrip_verifies_clean(self, tmp_path):
        *_, manifest = self.make_tree(tmp_path)
        assert verify_manifest(manifest) == []

    def test_digest_mismatch_is_flagged_not_accepted(self, tmp_path):
        out, _, manifest = self.make_tree(tmp_path)
        out.write_text("hunter2\nTAMPERED\n")  # same byte count
        findings = verify_manifest(manifest)
        assert "digest_mismatch" in kinds(findings)
        assert all(f.severity == "error" for f in findings)

    def test_size_mismatch(self, tmp_path):
        out, _, manifest = self.make_tree(tmp_path)
        out.write_text("short\n")
        assert "size_mismatch" in kinds(verify_manifest(manifest))

    def test_missing_file(self, tmp_path):
        out, _, manifest = self.make_tree(tmp_path)
        out.unlink()
        assert kinds(verify_manifest(manifest)) == ["missing_file"]

    def test_swapped_journal_is_a_run_identity_conflict(self, tmp_path):
        _, journal, manifest = self.make_tree(tmp_path)
        # Replace the journal with one from a *different* run; the file
        # is internally consistent, so only the header pin catches it.
        journal.unlink()
        other = RunJournal.create(journal, dict(HEADER, seed=999))
        other.record("leaf_batch", 0, {"guesses": ["x"], "model_calls": 0})
        other.close()
        findings = verify_manifest(manifest)
        assert "header_conflict" in kinds(findings)

    def test_header_digest_distinguishes_runs(self, tmp_path):
        a = make_journal(tmp_path / "a.journal.jsonl")
        b = RunJournal.create(tmp_path / "b.journal.jsonl", dict(HEADER, seed=8))
        b.close()
        assert journal_header_digest(a) != journal_header_digest(b.path)


class TestVerifyCheckpoint:
    def test_corrupt_npz_is_flagged(self, tmp_path):
        bad = tmp_path / "model.npz"
        bad.write_bytes(b"PK\x03\x04 definitely not a checkpoint")
        assert kinds(verify_checkpoint(bad)) == ["unreadable_checkpoint"]

    def test_missing_checkpoint(self, tmp_path):
        assert kinds(verify_checkpoint(tmp_path / "no.npz")) == ["missing_file"]


class TestVerifyPaths:
    def test_directory_walk_covers_all_artifact_types(self, tmp_path):
        make_journal(tmp_path / "run.journal.jsonl")
        (tmp_path / "model.npz").write_bytes(b"junk")
        findings = verify_paths([tmp_path])
        assert kinds(findings).count("checked") == 2
        assert "unreadable_checkpoint" in kinds(findings)

    def test_repair_flag_repairs_journals(self, tmp_path):
        path = make_journal(tmp_path / "run.journal.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        without = verify_paths([path])
        assert "torn_tail" in kinds(without)  # scan only, no mutation
        with_repair = verify_paths([path], repair=True)
        assert "repaired" in kinds(with_repair)
        assert scan_journal(path) == []

    def test_unknown_file_is_skipped_info(self, tmp_path):
        other = tmp_path / "notes.txt"
        other.write_text("hello\n")
        findings = verify_paths([other])
        assert kinds(findings) == ["skipped"]
        assert findings[0].severity == "info"

    def test_journal_detected_by_content_not_just_name(self, tmp_path):
        # Operators name journals freely (the README uses run.jsonl):
        # the header line, not the filename, marks a journal.
        path = make_journal(tmp_path / "run.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        findings = verify_paths([path])
        assert "torn_tail" in kinds(findings)
        assert "skipped" not in kinds(findings)

    def test_non_journal_jsonl_still_skipped(self, tmp_path):
        # A telemetry stream is .jsonl but has no header record.
        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"event": "campaign_plan", "fields": {}}\n')
        findings = verify_paths([path])
        assert kinds(findings) == ["skipped"]
