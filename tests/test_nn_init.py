"""Weight-initialiser statistics tests."""

import numpy as np

from repro.nn import init


class TestInitialisers:
    def test_normal_statistics(self):
        w = init.normal(np.random.default_rng(0), (2000, 50), std=0.02)
        assert w.dtype == np.float32
        assert abs(w.mean()) < 1e-3
        assert abs(w.std() - 0.02) < 2e-3

    def test_zeros_ones(self):
        assert init.zeros((3, 4)).sum() == 0
        assert init.ones((3, 4)).sum() == 12

    def test_xavier_uniform_bounds(self):
        w = init.xavier_uniform(np.random.default_rng(0), (100, 100))
        limit = np.sqrt(6.0 / 200)
        assert w.min() >= -limit and w.max() <= limit
        assert abs(w.mean()) < limit / 10

    def test_he_normal_variance(self):
        w = init.he_normal(np.random.default_rng(0), (4000, 10))
        assert abs(w.std() - np.sqrt(2.0 / 4000)) < 5e-4
