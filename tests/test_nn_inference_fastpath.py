"""Fast-path v2 equivalence: decode kernel, gather, prompt cache, counters.

The seq==1 decode kernel, `last_only` projection and prefix-deduplicated
priming must be drop-in numerical replacements for the general path —
these tests pin them against the autograd training forward, against a
float64 reference replicating the pre-fast-path `logits()` numerics, and
against each other.
"""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.nn import GPT2Config, GPT2Inference, GPT2Model, PromptCache


@pytest.fixture(scope="module")
def model_and_ids():
    cfg = GPT2Config(vocab_size=30, block_size=16, dim=32, n_layers=2, n_heads=4, dropout=0.0)
    model = GPT2Model(cfg, seed=3)
    model.eval()
    ids = np.random.default_rng(0).integers(0, 30, (4, 12))
    return model, ids


def _reference_logits(model: GPT2Model, ids: np.ndarray) -> np.ndarray:
    """The pre-fast-path `logits()` numerics: float64 after the first
    attention-score division (a python-float scale upcasts the chain)."""
    cfg = model.config
    head_dim = cfg.dim // cfg.n_heads
    seq = ids.shape[1]

    def layer_norm(x, w, b, eps=1e-5):
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mu) / np.sqrt(var + eps) * w.data + b.data

    def gelu(x):
        return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))

    x = model.token_emb.weight.data[ids] + model.pos_emb.weight.data[:seq]
    mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
    for block in model.blocks:
        h = layer_norm(x, block.ln1.weight, block.ln1.bias)
        qkv = h @ block.attn.qkv.weight.data + block.attn.qkv.bias.data
        qkv = qkv.reshape(*ids.shape, 3, cfg.n_heads, head_dim).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = q @ np.swapaxes(k, -1, -2) / np.sqrt(head_dim)  # float64 upcast
        scores = np.where(mask[None, None], -1e9, scores)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        att = np.exp(shifted)
        att /= att.sum(axis=-1, keepdims=True)
        out = (att @ v).transpose(0, 2, 1, 3).reshape(*ids.shape, cfg.dim)
        x = x + out @ block.attn.proj.weight.data + block.attn.proj.bias.data
        h2 = layer_norm(x, block.ln2.weight, block.ln2.bias)
        x = x + gelu(h2 @ block.fc.weight.data + block.fc.bias.data) @ block.fc_proj.weight.data + block.fc_proj.bias.data
    x = layer_norm(x, model.ln_f.weight, model.ln_f.bias)
    head = model.lm_head.weight.data if model.lm_head is not None else model.token_emb.weight.data.T
    return x @ head


class TestNumericalEquivalence:
    def test_logits_match_autograd_forward(self, model_and_ids):
        model, ids = model_and_ids
        with no_grad():
            expected = model.forward(ids).data
        actual = GPT2Inference(model).logits(ids)
        assert np.allclose(actual, expected, atol=1e-5)

    def test_logits_match_prechange_float64_reference(self, model_and_ids):
        model, ids = model_and_ids
        expected = _reference_logits(model, ids)
        actual = GPT2Inference(model).logits(ids)
        assert np.allclose(actual, expected, atol=1e-5)

    def test_step_kernel_matches_autograd_forward(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        with no_grad():
            expected = model.forward(ids).data
        last, cache = inf.start(ids[:, :4])
        for t in range(4, ids.shape[1]):
            last = inf.step(ids[:, t], cache)
            assert np.allclose(last, expected[:, t], atol=1e-5), f"step {t}"

    def test_step_kernel_matches_prechange_reference(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        expected = _reference_logits(model, ids)
        last, cache = inf.start(ids[:, :1])
        for t in range(1, ids.shape[1]):
            last = inf.step(ids[:, t], cache)
            assert np.allclose(last, expected[:, t], atol=1e-5), f"step {t}"

    def test_all_paths_float32(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        assert inf.logits(ids).dtype == np.float32
        last, cache = inf.start(ids[:, :5])
        assert last.dtype == np.float32
        assert inf.step(ids[:, 5], cache).dtype == np.float32
        assert all(k.dtype == np.float32 for k in cache.keys)

    def test_last_only_projection(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        full = inf.logits(ids)
        last = inf.logits(ids, last_only=True)
        assert last.shape == (ids.shape[0], model.config.vocab_size)
        np.testing.assert_array_equal(last, full[:, -1])

    def test_extend_matches_fused_priming(self, model_and_ids):
        """Split prompt+suffix priming equals one fused pass.

        Tolerance is float32-rounding-level only (BLAS kernel blocking
        varies with matmul shape); stream-level identity is pinned
        separately by the golden-stream tests.
        """
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        fused, _ = inf.start(ids)
        first, cache = inf.start(ids[:, :5])
        split = inf.extend(ids[:, 5:], cache)
        assert np.allclose(split, fused, atol=1e-6)
        assert cache.length == ids.shape[1]


class TestGather:
    def test_arbitrary_reorder_and_repeat(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        _, cache = inf.start(ids[:, :5])
        idx = np.array([2, 0, 0, 3, 1, 2])
        sub = cache.gather(idx)
        assert sub.batch == len(idx)
        assert sub.length == cache.length
        assert sub.capacity == cache.capacity
        for layer in range(len(cache.keys)):
            np.testing.assert_array_equal(
                sub.keys[layer][:, :, :5], cache.keys[layer][idx][:, :, :5]
            )

    def test_gather_decode_matches_fresh_priming(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        _, cache = inf.start(ids[:, :5])
        idx = np.array([3, 1, 1, 0])
        sub = cache.gather(idx)
        stepped = inf.step(ids[idx, 5], sub)
        fresh_last, fresh = inf.start(ids[idx][:, :5])
        expected = inf.step(ids[idx, 5], fresh)
        np.testing.assert_array_equal(stepped, expected)

    def test_gather_copies_storage(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        _, cache = inf.start(ids[:, :5])
        sub = cache.gather(np.array([0, 1]))
        sub.keys[0][...] = 1e9
        assert not np.any(cache.keys[0] >= 1e9)

    def test_gather_preserves_decode_capacity(self, model_and_ids):
        """A gathered cache can still decode to the full block size."""
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        _, cache = inf.start(ids[:, :5])
        sub = cache.gather(np.array([0, 2]))
        for t in range(5, model.config.block_size):
            inf.step(ids[[0, 2], t % ids.shape[1]], sub)
        assert sub.length == model.config.block_size
        with pytest.raises(ValueError):
            inf.step(np.zeros(2, dtype=np.int64), sub)

    def test_trimmed_roundtrip(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        _, cache = inf.start(ids[:, :5])
        compact = cache.trimmed()
        assert compact.keys[0].shape[2] == 5  # dense: filled region only
        assert compact.capacity == cache.capacity
        restored = compact.gather(np.arange(cache.batch))
        assert restored.keys[0].shape == cache.keys[0].shape
        for layer in range(len(cache.keys)):
            np.testing.assert_array_equal(restored.keys[layer], cache.keys[layer])
            np.testing.assert_array_equal(restored.values[layer], cache.values[layer])

    def test_zero_row_gather(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        _, cache = inf.start(ids[:, :5])
        empty = cache.gather(np.array([], dtype=np.intp))
        assert empty.batch == 0
        assert empty.length == 5


class TestPromptCache:
    def test_expand_matches_tiled_priming(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        pc = PromptCache(inf)
        prompt = ids[0, :5]
        logits, cache = pc.expand(prompt, 3)
        expected_logits, expected_cache = inf.start(np.tile(prompt, (3, 1)))
        # float32-rounding tolerance: batch-1 and batch-3 matmuls may use
        # different BLAS blocking; golden-stream tests pin stream identity.
        assert np.allclose(logits, expected_logits, atol=1e-6)
        next_ids = np.array([7, 8, 9])
        assert np.allclose(
            inf.step(next_ids, cache), inf.step(next_ids, expected_cache), atol=1e-6
        )

    def test_hit_miss_accounting(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        pc = PromptCache(inf)
        inf.counters.reset()
        pc.lookup(ids[0, :5])
        pc.lookup(ids[0, :5])
        pc.expand(ids[0, :5], 4)
        assert (pc.misses, pc.hits) == (1, 2)
        assert inf.counters.prime_calls == 1  # one physical prime only
        assert inf.counters.prime_positions == 5
        pc.lookup(ids[1, :5])
        assert pc.misses == 2

    def test_lru_eviction(self, model_and_ids):
        model, ids = model_and_ids
        pc = PromptCache(GPT2Inference(model), maxsize=2)
        a, b, c = ids[0, :3], ids[1, :3], ids[2, :3]
        pc.lookup(a)
        pc.lookup(b)
        pc.lookup(a)  # refresh a; b is now least recent
        pc.lookup(c)  # evicts b
        assert len(pc) == 2
        pc.lookup(a)
        assert pc.misses == 3  # a, b, c — a stayed resident
        pc.lookup(b)
        assert pc.misses == 4  # b was evicted and re-primed

    def test_maxsize_validation(self, model_and_ids):
        model, _ = model_and_ids
        with pytest.raises(ValueError):
            PromptCache(GPT2Inference(model), maxsize=0)


class TestCounters:
    def test_phases_accounted(self, model_and_ids):
        model, ids = model_and_ids
        inf = GPT2Inference(model)
        inf.counters.reset()
        inf.logits(ids)
        _, cache = inf.start(ids[:, :5])
        inf.extend(ids[:, 5:7], cache)
        inf.step(ids[:, 7], cache)
        c = inf.counters
        assert (c.full_calls, c.full_positions) == (1, ids.size)
        assert (c.prime_calls, c.prime_positions) == (2, 4 * 5 + 4 * 2)
        assert (c.step_calls, c.step_rows) == (1, 4)
        assert c.calls == 4
        c.reset()
        assert c.calls == c.prime_positions == c.step_rows == 0
