"""Legacy setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` cannot use PEP 660 editable builds; this shim lets pip
fall back to ``setup.py develop``. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
