"""Checkpointing: save/load module state dicts as compressed npz files.

Writes are atomic (temp file + fsync + ``os.replace`` via
:mod:`repro.runtime.atomic`): a crash mid-save leaves the previous
checkpoint intact, never a truncated npz.  Loads raise
:class:`CheckpointError` — with the path and cause — for truncated or
corrupt files and for state dicts that do not match the module, instead
of leaking raw ``zipfile``/``KeyError`` tracebacks.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Any, Optional

import numpy as np

from ..runtime import atomic_write, maybe_corrupt
from .module import Module

_META_KEY = "__meta_json__"


class CheckpointError(RuntimeError):
    """A checkpoint could not be read: missing, corrupt, or mismatched."""


def save_checkpoint(module: Module, path: str | Path, meta: Optional[dict[str, Any]] = None) -> None:
    """Atomically write ``module``'s parameters (+ JSON metadata) to npz."""
    path = Path(path)
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with reserved key {_META_KEY}")
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(json.dumps(meta or {}).encode(), dtype=np.uint8)
    with atomic_write(path) as fh:
        np.savez_compressed(fh, **payload)
    maybe_corrupt("checkpoint", path)  # fault-injection hook (tests only)


def _load_npz(path: Path) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Read an npz checkpoint; raises CheckpointError on any damage."""
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        with np.load(path) as data:
            meta = (
                json.loads(bytes(data[_META_KEY]).decode()) if _META_KEY in data.files else {}
            )
            state = {k: data[k] for k in data.files if k != _META_KEY}
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
        raise CheckpointError(f"checkpoint {path} is truncated or corrupt: {exc}") from exc
    return state, meta


def read_checkpoint_meta(path: str | Path) -> dict[str, Any]:
    """Read only the JSON metadata of a checkpoint (model loaders peek here)."""
    _, meta = _load_npz(Path(path))
    return meta


def load_checkpoint(module: Module, path: str | Path) -> dict[str, Any]:
    """Load parameters into ``module``; returns the stored metadata dict.

    Raises :class:`CheckpointError` if the file is damaged or its state
    dict has missing/unexpected keys or mismatched shapes for ``module``.
    """
    path = Path(path)
    state, meta = _load_npz(path)
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path} does not match the module: {exc}"
        ) from exc
    return meta
