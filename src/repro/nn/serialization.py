"""Checkpointing: save/load module state dicts as compressed npz files."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

import numpy as np

from .module import Module

_META_KEY = "__meta_json__"


def save_checkpoint(module: Module, path: str | Path, meta: Optional[dict[str, Any]] = None) -> None:
    """Write ``module``'s parameters (and optional JSON metadata) to npz."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with reserved key {_META_KEY}")
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(json.dumps(meta or {}).encode(), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_checkpoint(module: Module, path: str | Path) -> dict[str, Any]:
    """Load parameters into ``module``; returns the stored metadata dict."""
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data[_META_KEY]).decode()) if _META_KEY in data else {}
        state = {k: data[k] for k in data.files if k != _META_KEY}
    module.load_state_dict(state)
    return meta
