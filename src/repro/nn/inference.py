"""Fast numpy-only inference path for :class:`GPT2Model` with a KV cache.

Generation (especially D&C-GEN, which queries thousands of next-token
distributions) dominates runtime, so this module re-implements the GPT-2
forward pass in plain numpy with a pre-allocated key/value cache instead of
walking the autograd graph.  Equivalence with the training path is
enforced by tests (`tests/test_nn_inference.py`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .transformer import GPT2Model

_NEG_INF = -1e9


def _gelu(x: np.ndarray) -> np.ndarray:
    # x*x*x instead of x**3: numpy's pow loop is ~100x slower elementwise.
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * (x * x * x))))


def _layer_norm(x: np.ndarray, w: np.ndarray, b: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps) * w + b


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


@dataclass
class _BlockWeights:
    ln1_w: np.ndarray
    ln1_b: np.ndarray
    qkv_w: np.ndarray
    qkv_b: np.ndarray
    proj_w: np.ndarray
    proj_b: np.ndarray
    ln2_w: np.ndarray
    ln2_b: np.ndarray
    fc_w: np.ndarray
    fc_b: np.ndarray
    fc_proj_w: np.ndarray
    fc_proj_b: np.ndarray


class KVCache:
    """Pre-allocated per-layer key/value cache for a generation batch."""

    def __init__(self, n_layers: int, batch: int, n_heads: int, block_size: int, head_dim: int) -> None:
        shape = (batch, n_heads, block_size, head_dim)
        self.keys = [np.zeros(shape, dtype=np.float32) for _ in range(n_layers)]
        self.values = [np.zeros(shape, dtype=np.float32) for _ in range(n_layers)]
        self.length = 0
        self.batch = batch

    def select(self, rows: np.ndarray) -> "KVCache":
        """Return a new cache containing only the given batch rows.

        Used by D&C-GEN when a task batch is split into surviving
        sub-prefixes.
        """
        out = KVCache.__new__(KVCache)
        out.keys = [k[rows].copy() for k in self.keys]
        out.values = [v[rows].copy() for v in self.values]
        out.length = self.length
        out.batch = int(len(rows))
        return out

    def repeat_rows(self, row: int, count: int) -> "KVCache":
        """Return a cache with one row replicated ``count`` times."""
        out = KVCache.__new__(KVCache)
        out.keys = [np.repeat(k[row : row + 1], count, axis=0) for k in self.keys]
        out.values = [np.repeat(v[row : row + 1], count, axis=0) for v in self.values]
        out.length = self.length
        out.batch = count
        return out


class GPT2Inference:
    """Numpy forward pass over a trained :class:`GPT2Model`'s weights.

    The instance snapshots the model weights at construction time; rebuild
    it after further training steps.
    """

    def __init__(self, model: GPT2Model) -> None:
        cfg = model.config
        self.config = cfg
        self.token_emb = model.token_emb.weight.data
        self.pos_emb = model.pos_emb.weight.data
        self.ln_f_w = model.ln_f.weight.data
        self.ln_f_b = model.ln_f.bias.data
        if model.lm_head is not None:
            self.lm_head = model.lm_head.weight.data
        else:
            self.lm_head = self.token_emb.T
        self.blocks = [
            _BlockWeights(
                ln1_w=b.ln1.weight.data,
                ln1_b=b.ln1.bias.data,
                qkv_w=b.attn.qkv.weight.data,
                qkv_b=b.attn.qkv.bias.data,
                proj_w=b.attn.proj.weight.data,
                proj_b=b.attn.proj.bias.data,
                ln2_w=b.ln2.weight.data,
                ln2_b=b.ln2.bias.data,
                fc_w=b.fc.weight.data,
                fc_b=b.fc.bias.data,
                fc_proj_w=b.fc_proj.weight.data,
                fc_proj_b=b.fc_proj.bias.data,
            )
            for b in model.blocks
        ]

    # ------------------------------------------------------------------
    # Full-sequence forward (no cache)
    # ------------------------------------------------------------------
    def logits(self, ids: np.ndarray) -> np.ndarray:
        """Next-token logits for every position; ids shape ``(B, S)``."""
        ids = np.asarray(ids)
        batch, seq = ids.shape
        cfg = self.config
        if seq > cfg.block_size:
            raise ValueError(f"sequence length {seq} exceeds block size {cfg.block_size}")
        x = self.token_emb[ids] + self.pos_emb[:seq]
        mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        for bw in self.blocks:
            x = x + self._attention(_layer_norm(x, bw.ln1_w, bw.ln1_b), bw, mask)
            h = _layer_norm(x, bw.ln2_w, bw.ln2_b)
            x = x + _gelu(h @ bw.fc_w + bw.fc_b) @ bw.fc_proj_w + bw.fc_proj_b
        x = _layer_norm(x, self.ln_f_w, self.ln_f_b)
        return x @ self.lm_head

    def _attention(self, x: np.ndarray, bw: _BlockWeights, mask: np.ndarray) -> np.ndarray:
        cfg = self.config
        batch, seq, _ = x.shape
        qkv = x @ bw.qkv_w + bw.qkv_b
        qkv = qkv.reshape(batch, seq, 3, cfg.n_heads, cfg.dim // cfg.n_heads)
        qkv = qkv.transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = q @ np.swapaxes(k, -1, -2) / np.sqrt(cfg.dim // cfg.n_heads)
        scores = np.where(mask[None, None], _NEG_INF, scores)
        out = _softmax(scores) @ v
        out = out.transpose(0, 2, 1, 3).reshape(batch, seq, cfg.dim)
        return out @ bw.proj_w + bw.proj_b

    # ------------------------------------------------------------------
    # Cached incremental decoding
    # ------------------------------------------------------------------
    def start(self, prompt_ids: np.ndarray) -> tuple[np.ndarray, KVCache]:
        """Prime a KV cache with a common prompt.

        Parameters
        ----------
        prompt_ids:
            ``(batch, prompt_len)`` token ids (all rows may differ).

        Returns
        -------
        (last_logits, cache):
            ``last_logits`` has shape ``(batch, vocab)`` — the distribution
            for the token following the prompt.
        """
        prompt_ids = np.asarray(prompt_ids)
        batch, seq = prompt_ids.shape
        cfg = self.config
        cache = KVCache(cfg.n_layers, batch, cfg.n_heads, cfg.block_size, cfg.dim // cfg.n_heads)
        logits = self._forward_cached(prompt_ids, cache)
        return logits, cache

    def step(self, next_ids: np.ndarray, cache: KVCache) -> np.ndarray:
        """Feed one more token per row; returns ``(batch, vocab)`` logits."""
        next_ids = np.asarray(next_ids).reshape(-1, 1)
        return self._forward_cached(next_ids, cache)

    def _forward_cached(self, ids: np.ndarray, cache: KVCache) -> np.ndarray:
        cfg = self.config
        batch, seq = ids.shape
        start = cache.length
        stop = start + seq
        if stop > cfg.block_size:
            raise ValueError(f"cache overflow: {stop} > block size {cfg.block_size}")
        head_dim = cfg.dim // cfg.n_heads
        x = self.token_emb[ids] + self.pos_emb[start:stop]
        # causal mask restricted to the new queries attending over [0, stop)
        mask = np.triu(np.ones((seq, stop), dtype=bool), k=1 + start)
        for layer, bw in enumerate(self.blocks):
            h = _layer_norm(x, bw.ln1_w, bw.ln1_b)
            qkv = h @ bw.qkv_w + bw.qkv_b
            qkv = qkv.reshape(batch, seq, 3, cfg.n_heads, head_dim).transpose(2, 0, 3, 1, 4)
            q, k_new, v_new = qkv[0], qkv[1], qkv[2]
            cache.keys[layer][:, :, start:stop] = k_new
            cache.values[layer][:, :, start:stop] = v_new
            k = cache.keys[layer][:, :, :stop]
            v = cache.values[layer][:, :, :stop]
            scores = q @ np.swapaxes(k, -1, -2) / np.sqrt(head_dim)
            scores = np.where(mask[None, None], _NEG_INF, scores)
            att = _softmax(scores) @ v
            att = att.transpose(0, 2, 1, 3).reshape(batch, seq, cfg.dim)
            x = x + att @ bw.proj_w + bw.proj_b
            h2 = _layer_norm(x, bw.ln2_w, bw.ln2_b)
            x = x + _gelu(h2 @ bw.fc_w + bw.fc_b) @ bw.fc_proj_w + bw.fc_proj_b
        cache.length = stop
        x_last = _layer_norm(x[:, -1], self.ln_f_w, self.ln_f_b)
        return x_last @ self.lm_head
