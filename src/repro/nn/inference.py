"""Fast numpy-only inference path for :class:`GPT2Model` with a KV cache.

Generation (especially D&C-GEN, which queries thousands of next-token
distributions) dominates runtime, so this module re-implements the GPT-2
forward pass in plain numpy with a pre-allocated key/value cache instead of
walking the autograd graph.  Equivalence with the training path is
enforced by tests (`tests/test_nn_inference.py`,
`tests/test_nn_inference_fastpath.py`).

Fast-path design (inference fast-path v2):

* **float32 end-to-end** — weights are stored in float32; every kernel
  keeps activations in float32 (the scale constant is a float32 scalar,
  so numpy's NEP-50 promotion never silently upcasts a matmul chain to
  float64).
* **seq==1 decode kernel** (:meth:`GPT2Inference.step`) — single-token
  decoding skips causal-mask construction and ``np.where`` entirely (a
  lone query attends to everything cached), avoids the 5-D
  reshape/transpose round-trip of the general path, and reuses
  per-cache scratch buffers for the QKV/attention/MLP matmuls.
* **prompt deduplication** (:class:`PromptCache` +
  :meth:`KVCache.gather`) — a shared prompt is primed once, stored
  trimmed to its filled region, and fanned out to any batch width with
  a vectorised row gather instead of being recomputed per row.
* **instrumentation** (:class:`InferenceCounters`) — every forward
  records how many rows×positions it primed, which is the FLOPs proxy
  the throughput bench and CI use to detect de-dedup regressions.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass, fields

import numpy as np

from ..telemetry.metrics import get_registry
from .transformer import GPT2Model

_NEG_INF = -1e9

# One backend_fallback warning/event per process: campaigns build many
# GPT2Inference instances (per worker, per lab model) and a missing
# compiler should not flood stderr or the telemetry stream.
_BACKEND_FALLBACK_EMITTED = False


def _note_backend_fallback(reason: str) -> None:
    global _BACKEND_FALLBACK_EMITTED
    get_registry().counter("backend.fallbacks").inc()
    if _BACKEND_FALLBACK_EMITTED:
        return
    _BACKEND_FALLBACK_EMITTED = True
    print(
        f"repro: compiled backend unavailable, falling back to numpy: {reason}",
        file=sys.stderr,
    )
    from ..telemetry.tracing import emit

    emit("backend_fallback", requested="compiled", active="numpy", reason=reason)


# Python-float constant: a np.float64 scalar here would upcast every
# activation chain to float64 under NEP-50 promotion.
_GELU_C = float(np.sqrt(2.0 / np.pi))


def _gelu(x: np.ndarray) -> np.ndarray:
    # x*x*x instead of x**3: numpy's pow loop is ~100x slower elementwise.
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * (x * x * x))))


def _layer_norm(x: np.ndarray, w: np.ndarray, b: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps) * w + b


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


@dataclass
class _BlockWeights:
    ln1_w: np.ndarray
    ln1_b: np.ndarray
    qkv_w: np.ndarray
    qkv_b: np.ndarray
    proj_w: np.ndarray
    proj_b: np.ndarray
    ln2_w: np.ndarray
    ln2_b: np.ndarray
    fc_w: np.ndarray
    fc_b: np.ndarray
    fc_proj_w: np.ndarray
    fc_proj_b: np.ndarray


@dataclass
class InferenceCounters:
    """Physical forward-pass accounting for one :class:`GPT2Inference`.

    ``prime_positions`` (rows × tokens written into KV caches) is the
    priming FLOPs proxy: with prefix-deduplicated priming it grows with
    the number of *unique* prefixes, not the number of sampled rows.
    The throughput bench compares it against the planned budget to catch
    accidental de-deduplication deterministically.
    """

    calls: int = 0  # every forward invocation (full + prime + step)
    full_calls: int = 0
    full_positions: int = 0
    prime_calls: int = 0
    prime_positions: int = 0
    step_calls: int = 0
    step_rows: int = 0

    def reset(self) -> None:
        for field in fields(self):
            setattr(self, field.name, 0)

    def as_dict(self) -> dict[str, int]:
        """Flat view — the provider registered as the ``inference`` metric
        group on the default :class:`~repro.telemetry.MetricsRegistry`."""
        return {field.name: getattr(self, field.name) for field in fields(self)}


class KVCache:
    """Pre-allocated per-layer key/value cache for a generation batch.

    Invariant: positions ``[0, length)`` of every buffer are filled; the
    remainder up to ``capacity`` is zeroed headroom for future decode
    steps.  Row operations (:meth:`gather` and its :meth:`select` /
    :meth:`repeat_rows` conveniences) therefore copy only the filled
    region while allocating full-capacity buffers, so a gathered cache
    keeps the same remaining decode capacity as its source.
    """

    def __init__(self, n_layers: int, batch: int, n_heads: int, block_size: int, head_dim: int) -> None:
        shape = (batch, n_heads, block_size, head_dim)
        self.keys = [np.zeros(shape, dtype=np.float32) for _ in range(n_layers)]
        self.values = [np.zeros(shape, dtype=np.float32) for _ in range(n_layers)]
        self.length = 0
        self.batch = batch
        #: Total positions each buffer can hold (the model's block size).
        self.capacity = block_size
        #: Per-layer scratch reused by the seq==1 decode kernel.
        self._scratch: dict | None = None

    def gather(self, indices: np.ndarray) -> "KVCache":
        """Return a new cache whose rows are ``self``'s rows at ``indices``.

        ``indices`` may repeat and reorder rows arbitrarily, which makes
        this the one primitive behind batch splitting (``select``),
        prompt fan-out (``repeat_rows``) and D&C-GEN's unique-prefix →
        full-row expansion.  Only the filled ``[0, length)`` region is
        copied; the result owns fresh full-capacity buffers (storage is
        never shared with the source).
        """
        indices = np.asarray(indices, dtype=np.intp)
        out = KVCache.__new__(KVCache)
        n = int(len(indices))
        filled = self.length
        out.keys = []
        out.values = []
        for k, v in zip(self.keys, self.values):
            heads, head_dim = k.shape[1], k.shape[3]
            nk = np.zeros((n, heads, self.capacity, head_dim), dtype=np.float32)
            nv = np.zeros((n, heads, self.capacity, head_dim), dtype=np.float32)
            if filled:
                nk[:, :, :filled] = k[indices, :, :filled]
                nv[:, :, :filled] = v[indices, :, :filled]
            out.keys.append(nk)
            out.values.append(nv)
        out.length = filled
        out.batch = n
        out.capacity = self.capacity
        out._scratch = None
        return out

    def select(self, rows: np.ndarray) -> "KVCache":
        """Gather the given batch rows into a new cache.

        Used by D&C-GEN when a task batch is split into surviving
        sub-prefixes.
        """
        return self.gather(rows)

    def repeat_rows(self, row: int, count: int) -> "KVCache":
        """Return a cache with one row replicated ``count`` times."""
        return self.gather(np.full(count, row, dtype=np.intp))

    def trimmed(self) -> "KVCache":
        """Compact deep copy holding only the filled ``[0, length)`` region.

        Used by :class:`PromptCache` to store primed prompts densely;
        :meth:`gather` on a trimmed cache restores full-capacity buffers,
        so decode headroom is preserved across the round trip.
        """
        out = KVCache.__new__(KVCache)
        filled = self.length
        out.keys = [np.ascontiguousarray(k[:, :, :filled]) for k in self.keys]
        out.values = [np.ascontiguousarray(v[:, :, :filled]) for v in self.values]
        out.length = filled
        out.batch = self.batch
        out.capacity = self.capacity
        out._scratch = None
        return out


class GPT2Inference:
    """Numpy forward pass over a trained :class:`GPT2Model`'s weights.

    The instance snapshots the model weights at construction time (the
    arrays are shared, not copied); rebuild it after further training
    steps.  All paths compute in float32.

    ``backend`` selects the seq==1 decode kernel: ``"numpy"`` (default)
    is the reference implementation below; ``"compiled"`` swaps
    :meth:`step` for the fused C kernels in :mod:`repro.nn.backend`,
    which reproduce the reference bit-for-bit (enforced by an init-time
    parity canary; any failure degrades to numpy with a warning).  When
    ``backend`` is None the ``REPRO_BACKEND`` environment variable
    decides.  Priming (:meth:`start`/:meth:`extend`) always runs the
    numpy path.
    """

    def __init__(self, model: GPT2Model, backend: str | None = None) -> None:
        cfg = model.config
        self.config = cfg
        self.token_emb = model.token_emb.weight.data
        self.pos_emb = model.pos_emb.weight.data
        self.ln_f_w = model.ln_f.weight.data
        self.ln_f_b = model.ln_f.bias.data
        if model.lm_head is not None:
            self.lm_head = model.lm_head.weight.data
        else:
            self.lm_head = self.token_emb.T
        self.blocks = [
            _BlockWeights(
                ln1_w=b.ln1.weight.data,
                ln1_b=b.ln1.bias.data,
                qkv_w=b.attn.qkv.weight.data,
                qkv_b=b.attn.qkv.bias.data,
                proj_w=b.attn.proj.weight.data,
                proj_b=b.attn.proj.bias.data,
                ln2_w=b.ln2.weight.data,
                ln2_b=b.ln2.bias.data,
                fc_w=b.fc.weight.data,
                fc_b=b.fc.bias.data,
                fc_proj_w=b.fc_proj.weight.data,
                fc_proj_b=b.fc_proj.bias.data,
            )
            for b in model.blocks
        ]
        # float32 scalar: dividing by a float64 scalar would upcast the
        # whole activation chain to float64 under NEP-50 promotion.
        self._kscale = np.float32(np.sqrt(cfg.dim // cfg.n_heads))
        self.counters = InferenceCounters()
        # Absorb the counters into the telemetry registry as a metric
        # group: span deltas and campaign snapshots see them as
        # ``inference.<field>``.  The newest engine owns the name (one
        # live model per process in practice); the provider holds only
        # the small counters dataclass, never the weights.
        get_registry().register_group("inference", self.counters.as_dict)

        from .backend import requested_backend

        self._compiled = None
        self.backend_name = "numpy"
        if requested_backend(backend) == "compiled":
            try:
                from .backend import CompiledStepBackend

                self._compiled = CompiledStepBackend(self)
                self.backend_name = "compiled"
            except Exception as exc:  # missing cc, compile error, parity failure
                _note_backend_fallback(str(exc))

    # ------------------------------------------------------------------
    # Full-sequence forward (no cache)
    # ------------------------------------------------------------------
    def logits(self, ids: np.ndarray, last_only: bool = False) -> np.ndarray:
        """Next-token logits; ids shape ``(B, S)``.

        By default every position is projected through ``lm_head`` and
        the result has shape ``(B, S, vocab)``.  ``last_only=True``
        projects just the final position — shape ``(B, vocab)`` — which
        is what next-token queries need and skips ``(S-1)/S`` of the
        output-projection work.
        """
        ids = np.asarray(ids)
        batch, seq = ids.shape
        cfg = self.config
        if seq > cfg.block_size:
            raise ValueError(f"sequence length {seq} exceeds block size {cfg.block_size}")
        self.counters.calls += 1
        self.counters.full_calls += 1
        self.counters.full_positions += batch * seq
        x = self.token_emb[ids] + self.pos_emb[:seq]
        mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        for bw in self.blocks:
            x = x + self._attention(_layer_norm(x, bw.ln1_w, bw.ln1_b), bw, mask)
            h = _layer_norm(x, bw.ln2_w, bw.ln2_b)
            x = x + _gelu(h @ bw.fc_w + bw.fc_b) @ bw.fc_proj_w + bw.fc_proj_b
        if last_only:
            return _layer_norm(x[:, -1], self.ln_f_w, self.ln_f_b) @ self.lm_head
        x = _layer_norm(x, self.ln_f_w, self.ln_f_b)
        return x @ self.lm_head

    def _attention(self, x: np.ndarray, bw: _BlockWeights, mask: np.ndarray) -> np.ndarray:
        cfg = self.config
        batch, seq, _ = x.shape
        qkv = x @ bw.qkv_w + bw.qkv_b
        qkv = qkv.reshape(batch, seq, 3, cfg.n_heads, cfg.dim // cfg.n_heads)
        qkv = qkv.transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = q @ np.swapaxes(k, -1, -2) / self._kscale
        scores = np.where(mask[None, None], _NEG_INF, scores)
        out = _softmax(scores) @ v
        out = out.transpose(0, 2, 1, 3).reshape(batch, seq, cfg.dim)
        return out @ bw.proj_w + bw.proj_b

    # ------------------------------------------------------------------
    # Cached incremental decoding
    # ------------------------------------------------------------------
    def start(self, prompt_ids: np.ndarray) -> tuple[np.ndarray, KVCache]:
        """Prime a fresh KV cache with a prompt.

        Parameters
        ----------
        prompt_ids:
            ``(batch, prompt_len)`` token ids (all rows may differ).

        Returns
        -------
        (last_logits, cache):
            ``last_logits`` has shape ``(batch, vocab)`` — the distribution
            for the token following the prompt.
        """
        prompt_ids = np.asarray(prompt_ids)
        batch, seq = prompt_ids.shape
        cfg = self.config
        cache = KVCache(cfg.n_layers, batch, cfg.n_heads, cfg.block_size, cfg.dim // cfg.n_heads)
        logits = self._forward_cached(prompt_ids, cache)
        return logits, cache

    def extend(self, ids: np.ndarray, cache: KVCache) -> np.ndarray:
        """Feed ``(batch, seq)`` further tokens into an existing cache.

        The multi-token counterpart of :meth:`step`: D&C-GEN uses it to
        append a leaf's already-decided characters onto a shared primed
        prompt instead of re-running the prompt forward per row.
        Returns ``(batch, vocab)`` logits for the next position.
        """
        return self._forward_cached(np.asarray(ids), cache)

    def step(self, next_ids: np.ndarray, cache: KVCache) -> np.ndarray:
        """Feed one more token per row; returns ``(batch, vocab)`` logits.

        Single-token decode kernel: no causal mask is needed (the one
        new query may attend to every cached position), activations stay
        2-D ``(batch, dim)`` end to end, and the QKV/attention/MLP
        matmuls write into scratch buffers kept on the cache.
        """
        ids = np.asarray(next_ids).reshape(-1)
        cfg = self.config
        batch = ids.shape[0]
        if cache.length + 1 > cfg.block_size:
            raise ValueError(
                f"cache overflow: {cache.length + 1} > block size {cfg.block_size}"
            )
        self.counters.calls += 1
        self.counters.step_calls += 1
        self.counters.step_rows += batch
        backend = self._compiled
        if backend is not None and backend.supports(ids, cache):
            return backend.step(ids, cache)
        return self._step_numpy(ids, cache)

    def _step_numpy(self, ids: np.ndarray, cache: KVCache) -> np.ndarray:
        """Reference seq==1 kernel (counter-free; ids already flattened)."""
        cfg = self.config
        batch = ids.shape[0]
        pos = cache.length
        stop = pos + 1
        dim = cfg.dim
        n_heads = cfg.n_heads
        head_dim = dim // n_heads
        scratch = cache._scratch
        if scratch is None or scratch["qkv"].shape[0] != batch:
            scratch = {
                "qkv": np.empty((batch, 3 * dim), dtype=np.float32),
                "att": np.empty((batch, n_heads, 1, head_dim), dtype=np.float32),
                "ff": np.empty((batch, self.blocks[0].fc_w.shape[1]), dtype=np.float32),
            }
            cache._scratch = scratch
        x = self.token_emb[ids] + self.pos_emb[pos]
        for layer, bw in enumerate(self.blocks):
            h = _layer_norm(x, bw.ln1_w, bw.ln1_b)
            qkv = np.matmul(h, bw.qkv_w, out=scratch["qkv"])
            qkv += bw.qkv_b
            q = qkv[:, :dim].reshape(batch, n_heads, 1, head_dim)
            cache.keys[layer][:, :, pos] = qkv[:, dim : 2 * dim].reshape(batch, n_heads, head_dim)
            cache.values[layer][:, :, pos] = qkv[:, 2 * dim :].reshape(batch, n_heads, head_dim)
            k = cache.keys[layer][:, :, :stop]
            v = cache.values[layer][:, :, :stop]
            scores = q @ np.swapaxes(k, -1, -2)  # (batch, heads, 1, stop)
            scores /= self._kscale
            scores -= scores.max(axis=-1, keepdims=True)
            np.exp(scores, out=scores)
            scores /= scores.sum(axis=-1, keepdims=True)
            att = np.matmul(scores, v, out=scratch["att"])
            x += att.reshape(batch, dim) @ bw.proj_w
            x += bw.proj_b
            h2 = _layer_norm(x, bw.ln2_w, bw.ln2_b)
            ff = np.matmul(h2, bw.fc_w, out=scratch["ff"])
            ff += bw.fc_b
            x += _gelu(ff) @ bw.fc_proj_w
            x += bw.fc_proj_b
        cache.length = stop
        return _layer_norm(x, self.ln_f_w, self.ln_f_b) @ self.lm_head

    def _forward_cached(self, ids: np.ndarray, cache: KVCache) -> np.ndarray:
        cfg = self.config
        batch, seq = ids.shape
        start = cache.length
        stop = start + seq
        if stop > cfg.block_size:
            raise ValueError(f"cache overflow: {stop} > block size {cfg.block_size}")
        self.counters.calls += 1
        self.counters.prime_calls += 1
        self.counters.prime_positions += batch * seq
        head_dim = cfg.dim // cfg.n_heads
        x = self.token_emb[ids] + self.pos_emb[start:stop]
        # causal mask restricted to the new queries attending over [0, stop)
        mask = np.triu(np.ones((seq, stop), dtype=bool), k=1 + start)
        for layer, bw in enumerate(self.blocks):
            h = _layer_norm(x, bw.ln1_w, bw.ln1_b)
            qkv = h @ bw.qkv_w + bw.qkv_b
            qkv = qkv.reshape(batch, seq, 3, cfg.n_heads, head_dim).transpose(2, 0, 3, 1, 4)
            q, k_new, v_new = qkv[0], qkv[1], qkv[2]
            cache.keys[layer][:, :, start:stop] = k_new
            cache.values[layer][:, :, start:stop] = v_new
            k = cache.keys[layer][:, :, :stop]
            v = cache.values[layer][:, :, :stop]
            scores = q @ np.swapaxes(k, -1, -2) / self._kscale
            scores = np.where(mask[None, None], _NEG_INF, scores)
            att = _softmax(scores) @ v
            att = att.transpose(0, 2, 1, 3).reshape(batch, seq, cfg.dim)
            x = x + att @ bw.proj_w + bw.proj_b
            h2 = _layer_norm(x, bw.ln2_w, bw.ln2_b)
            x = x + _gelu(h2 @ bw.fc_w + bw.fc_b) @ bw.fc_proj_w + bw.fc_proj_b
        cache.length = stop
        x_last = _layer_norm(x[:, -1], self.ln_f_w, self.ln_f_b)
        return x_last @ self.lm_head


class PromptCache:
    """LRU of primed prompt KV states, keyed by the prompt's token ids.

    D&C-GEN, pattern-guided generation and free generation all prime
    thousands of rows that share one short prompt (``<BOS> pattern
    <SEP>`` or a bare ``<BOS>``).  This cache primes each distinct
    prompt once through :meth:`GPT2Inference.start`, stores the result
    trimmed to its filled region, and fans it out to any batch width
    via :meth:`KVCache.gather` — turning O(rows × prompt_len) priming
    into O(distinct prompts × prompt_len).

    Entries are immutable by convention: callers must never decode into
    a cache returned by :meth:`lookup` (use :meth:`expand`, which
    returns fresh buffers).  Under the ``fork`` start method a warm
    cache is inherited copy-on-write by worker processes, so prompts
    primed in the parent (e.g. during the D&C-GEN divide phase) are
    never re-primed by workers.
    """

    def __init__(self, inference: GPT2Inference, maxsize: int = 512) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.inference = inference
        self.maxsize = maxsize
        self._entries: OrderedDict[bytes, tuple[np.ndarray, KVCache]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Lifetime hit/miss/eviction counts plus the current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
        }

    def lookup(self, prompt_ids: np.ndarray) -> tuple[np.ndarray, KVCache]:
        """``(logits, trimmed_cache)`` for a 1-D prompt, priming on miss.

        ``logits`` has shape ``(1, vocab)``; the cache holds one row.
        Both are shared cache state — treat them as read-only.
        """
        ids = np.ascontiguousarray(np.asarray(prompt_ids, dtype=np.int64).reshape(-1))
        key = ids.tobytes()
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            get_registry().counter("prompt_cache.hits").inc()
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        get_registry().counter("prompt_cache.misses").inc()
        logits, cache = self.inference.start(ids[None, :])
        entry = (logits, cache.trimmed())
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            get_registry().counter("prompt_cache.evictions").inc()
        return entry

    def expand(self, prompt_ids: np.ndarray, rows: int) -> tuple[np.ndarray, KVCache]:
        """Fan the primed prompt out to ``rows`` identical batch rows.

        Returns ``(logits, cache)`` with ``logits`` of shape
        ``(rows, vocab)`` and a freshly-allocated full-capacity cache
        that is safe to decode into.
        """
        logits, cache = self.lookup(prompt_ids)
        return (
            np.repeat(logits, rows, axis=0),
            cache.gather(np.zeros(rows, dtype=np.intp)),
        )
