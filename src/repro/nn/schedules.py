"""Learning-rate schedules (linear warmup + cosine/linear decay)."""

from __future__ import annotations

import numpy as np

from .optim import Optimizer


class LRSchedule:
    """Base schedule: call :meth:`step` once per optimisation step."""

    def __init__(self, optimizer: Optimizer, base_lr: float) -> None:
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.step_count = 0

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and apply the new learning rate."""
        lr = self.lr_at(self.step_count)
        self.optimizer.lr = lr
        self.step_count += 1
        return lr


class WarmupCosine(LRSchedule):
    """Linear warmup to ``base_lr`` then cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: Optimizer,
        base_lr: float,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer, base_lr)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.warmup_steps = max(0, warmup_steps)
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, progress)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * progress))


class WarmupLinear(LRSchedule):
    """Linear warmup then linear decay to zero (HF default for GPT-2 FT)."""

    def __init__(self, optimizer: Optimizer, base_lr: float, warmup_steps: int, total_steps: int) -> None:
        super().__init__(optimizer, base_lr)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.warmup_steps = max(0, warmup_steps)
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        remaining = max(0.0, self.total_steps - step)
        return self.base_lr * remaining / max(1, self.total_steps - self.warmup_steps)
