"""Weight initialisers used across the model zoo.

GPT-2 uses N(0, 0.02) for embeddings and projections, with the residual
projections scaled by 1/sqrt(2 * n_layers); the GAN/VAE/flow baselines use
Xavier/He schemes appropriate to their activations.
"""

from __future__ import annotations

import numpy as np


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """GPT-2 style normal init."""
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot uniform init for tanh/sigmoid networks."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Kaiming normal init for ReLU-family networks."""
    fan_in = shape[0]
    return (rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)).astype(np.float32)
