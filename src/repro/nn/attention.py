"""Causal multi-head self-attention, as in the GPT-2 decoder."""

from __future__ import annotations

import numpy as np

from ..autograd import functional as F
from ..autograd.tensor import Tensor
from .layers import Dropout, Linear
from .module import Module

_NEG_INF = -1e9


def causal_mask(seq_len: int) -> np.ndarray:
    """Boolean mask that is True at positions a query must NOT attend to."""
    return np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)


class CausalSelfAttention(Module):
    """Masked multi-head self-attention with fused QKV projection.

    Shapes follow GPT-2: input ``(batch, seq, dim)``, ``n_heads`` heads of
    size ``dim // n_heads``, upper-triangular causal masking, optional
    attention and residual dropout.
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng: np.random.Generator,
        attn_dropout: float = 0.0,
        resid_dropout: float = 0.0,
        proj_std: float = 0.02,
    ) -> None:
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng, std=proj_std)
        self.attn_drop = Dropout(attn_dropout, rng)
        self.resid_drop = Dropout(resid_dropout, rng)

    def forward(self, x: Tensor, pad_mask: np.ndarray | None = None) -> Tensor:
        """Apply attention.

        Parameters
        ----------
        x:
            Activations, shape ``(batch, seq, dim)``.
        pad_mask:
            Optional boolean array ``(batch, seq)`` that is True at padding
            positions; keys at those positions are masked out.
        """
        batch, seq, _ = x.shape
        qkv = self.qkv(x)  # (B, S, 3D)
        qkv = qkv.reshape(batch, seq, 3, self.n_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, S, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = q.matmul(k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        mask = causal_mask(seq)[None, None, :, :]
        if pad_mask is not None:
            mask = mask | pad_mask[:, None, None, :]
        scores = scores.masked_fill(mask, _NEG_INF)
        weights = F.softmax(scores, axis=-1)
        weights = self.attn_drop(weights)

        out = weights.matmul(v)  # (B, H, S, hd)
        out = out.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.resid_drop(self.proj(out))
