"""Core layers: Linear, Embedding, LayerNorm, Dropout, Sequential, MLP."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..autograd import functional as F
from ..autograd.tensor import Tensor
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine transform ``y = x W + b`` on the last axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        std: float = 0.02,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.normal(rng, (in_features, out_features), std=std))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator, std: float = 0.02) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal(rng, (num_embeddings, dim), std=std))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.min(initial=0) < 0 or (ids.size and ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()} max={ids.max()}"
            )
        return self.weight.take_rows(ids)


class LayerNorm(Module):
    """Layer normalisation over the last axis with learned affine."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.weight = Parameter(init.ones((dim,)))
        self.bias = Parameter(init.zeros((dim,)))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class Sequential(Module):
    """Run modules (or callables such as activations) in order."""

    def __init__(self, *steps) -> None:
        super().__init__()
        self.steps = list(steps)

    def forward(self, x):
        for step in self.steps:
            x = step(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    Used by the GAN/VAE/flow baselines; hidden layers use He init when the
    activation is ReLU-like, Xavier otherwise.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        activation: Callable[[Tensor], Tensor] = Tensor.relu,
        final_activation: Optional[Callable[[Tensor], Tensor]] = None,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.layers = [
            Linear(sizes[i], sizes[i + 1], rng, std=float(np.sqrt(2.0 / sizes[i])))
            for i in range(len(sizes) - 1)
        ]
        self.activation = activation
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers[:-1]:
            x = self.activation(layer(x))
        x = self.layers[-1](x)
        if self.final_activation is not None:
            x = self.final_activation(x)
        return x
