"""Optimisers: SGD, Adam, AdamW (the paper trains with AdamW, §IV-B1)."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from .module import Parameter


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for logging).
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad.astype(np.float64) ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class Optimizer:
    """Base optimiser over a fixed parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * (p.grad * p.grad)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    This is the optimiser the paper uses (initial lr 5e-5, §IV-B1).
    Weight decay is skipped for parameters listed in ``no_decay`` (by
    identity), typically biases and layer-norm gains.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 5e-5,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
        no_decay: Optional[Iterable[Parameter]] = None,
    ) -> None:
        super().__init__(params, lr=lr, betas=betas, eps=eps)
        self.weight_decay = weight_decay
        self._no_decay_ids = {id(p) for p in (no_decay or [])}

    def step(self) -> None:
        if self.weight_decay:
            for p in self.params:
                if p.grad is not None and id(p) not in self._no_decay_ids:
                    p.data -= self.lr * self.weight_decay * p.data
        super().step()
