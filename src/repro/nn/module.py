"""Module/Parameter abstractions, mirroring the torch.nn API surface.

A :class:`Module` discovers parameters and submodules by attribute
assignment, supports train/eval mode, gradient zeroing, and flat
state-dict export/import used by :mod:`repro.nn.serialization`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; those are discovered automatically for optimisation,
    serialization and mode switching.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for all trainable parameters."""
        for attr, value in vars(self).items():
            if attr == "training":
                continue
            full = f"{prefix}.{attr}" if prefix else attr
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters as a list."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Switch this module and descendants to training mode."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Switch this module and descendants to evaluation mode."""
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of dotted parameter names to array copies."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values in-place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: module {p.data.shape} vs state {value.shape}"
                )
            p.data[...] = value

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
