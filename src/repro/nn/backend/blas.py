"""Locate the BLAS numpy itself uses and resolve sgemm/sgemv from it.

The compiled backend does not link a BLAS of its own — it calls the very
same ``cblas_sgemm``/``cblas_sgemv`` entry points numpy dispatches to,
through function pointers injected at runtime.  That is what makes the
big matmuls bit-identical to the numpy reference *by construction*: the
same library code runs on the same operands.

Wheel-built numpy bundles its BLAS as a private shared object under
``numpy.libs/`` (scipy-openblas with ``scipy_``-prefixed, ``64_``-suffixed
ILP64 symbols).  Distro numpys may link a system OpenBLAS with plain
LP64 symbols instead, so several symbol flavours are probed; the ILP64
flag travels with the resolved pair because the generated C must use the
matching integer width.
"""

from __future__ import annotations

import ctypes
import glob
import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["BlasSymbols", "BlasUnavailable", "find_blas"]


class BlasUnavailable(RuntimeError):
    """No usable cblas sgemm/sgemv pair could be resolved."""


@dataclass(frozen=True)
class BlasSymbols:
    """A resolved (sgemm, sgemv) pair plus its integer-width contract."""

    path: str  # library the symbols came from ("<global>" for the process)
    sgemm: int  # raw function address, handed to repro_set_blas
    sgemv: int
    ilp64: bool  # True -> dims are int64 (suffix "64_"), else int32

    @property
    def flavor(self) -> str:
        return "ilp64" if self.ilp64 else "lp64"


# (sgemm symbol, sgemv symbol, ilp64) in probe order.  The scipy_ pair is
# what numpy>=1.26 wheels actually export.
_SYMBOL_FLAVORS: Tuple[Tuple[str, str, bool], ...] = (
    ("scipy_cblas_sgemm64_", "scipy_cblas_sgemv64_", True),
    ("cblas_sgemm64_", "cblas_sgemv64_", True),
    ("scipy_cblas_sgemm", "scipy_cblas_sgemv", False),
    ("cblas_sgemm", "cblas_sgemv", False),
)


def _candidate_libraries() -> List[str]:
    paths: List[str] = []
    try:
        import numpy as np

        libs_dir = os.path.join(os.path.dirname(os.path.dirname(np.__file__)), "numpy.libs")
        for pattern in ("libscipy_openblas*", "libopenblas*"):
            paths.extend(sorted(glob.glob(os.path.join(libs_dir, pattern))))
        # In-tree/source builds keep the BLAS next to the core module.
        core_dir = os.path.join(os.path.dirname(np.__file__), ".libs")
        paths.extend(sorted(glob.glob(os.path.join(core_dir, "libopenblas*"))))
    except Exception:
        pass
    return paths


def _resolve(lib: ctypes.CDLL, path: str) -> Optional[BlasSymbols]:
    for sgemm_name, sgemv_name, ilp64 in _SYMBOL_FLAVORS:
        try:
            sgemm = ctypes.cast(getattr(lib, sgemm_name), ctypes.c_void_p).value
            sgemv = ctypes.cast(getattr(lib, sgemv_name), ctypes.c_void_p).value
        except AttributeError:
            continue
        if sgemm and sgemv:
            return BlasSymbols(path=path, sgemm=sgemm, sgemv=sgemv, ilp64=ilp64)
    return None


def find_blas() -> BlasSymbols:
    """Resolve numpy's cblas sgemm/sgemv, or raise :class:`BlasUnavailable`."""
    tried: List[str] = []
    for path in _candidate_libraries():
        try:
            lib = ctypes.CDLL(path, mode=ctypes.RTLD_GLOBAL)
        except OSError:
            tried.append(path)
            continue
        found = _resolve(lib, path)
        if found is not None:
            return found
        tried.append(path)
    # Last resort: symbols already present in the process image (numpy
    # linked against a system BLAS).
    try:
        found = _resolve(ctypes.CDLL(None), "<global>")
        if found is not None:
            return found
    except OSError:
        pass
    raise BlasUnavailable(
        "could not resolve cblas_sgemm/cblas_sgemv from numpy's BLAS "
        f"(searched: {tried or 'no candidate libraries'})"
    )
