"""Compiled decode-step backend: render → cc → ctypes → verify.

One :class:`CompiledStepBackend` serves one ``GPT2Inference`` instance.
Construction renders the fused C source for the model's
:class:`~.graph.StepShape`, compiles it once (or reuses a cached shared
library — in-memory per process, on-disk under ``~/.cache/repro-kernels``
keyed by source digest), binds the model's weight pointers into the
context struct, and then runs a **parity canary**: a few decode steps at
batch 2 and batch 1 compared bit-for-bit against the numpy reference,
including the KV-cache contents.  Any mismatch, missing compiler, or
compile error raises :class:`BackendUnavailable` — the caller falls back
to numpy and the campaign continues.

``step()`` is a drop-in for the numpy single-token kernel: same
``(ids, KVCache) -> logits`` contract, same cache mutation, bit-identical
output.  ``supports()`` is the cheap per-call guard (contiguity, dtype,
capacity, position bounds); anything outside the guard silently takes
the numpy path for that call.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ...telemetry.metrics import get_registry
from .blas import BlasSymbols, BlasUnavailable, find_blas
from .cstyle import (
    CTX_CACHE_PTRS,
    CTX_GLOBAL_PTRS,
    CTX_LAYER_PTRS,
    CTX_SCRATCH_PTRS,
    RENDERER_VERSION,
    ctx_ctypes_struct,
    render_step_source,
)
from .graph import HostOp, Segment, StepShape, build_step_graph, fuse_segments

__all__ = [
    "BackendUnavailable",
    "CompiledStepBackend",
    "compiler_path",
    "compiler_available",
    "kernel_cache_dir",
    "build_library",
]

KERNEL_CACHE_ENV = "REPRO_KERNEL_CACHE"

# Flag sets tried in order.  -ffp-contract=off is non-negotiable (only
# explicit fmaf() calls may fuse); -march=native is preferred for the
# vector ISA but dropped if the local cc rejects it.
_FLAG_SETS: Tuple[Tuple[str, ...], ...] = (
    ("-O3", "-march=native", "-ffp-contract=off", "-shared", "-fPIC"),
    ("-O3", "-ffp-contract=off", "-shared", "-fPIC"),
)

# Process-wide library cache: digest -> loaded CDLL.  Shared across
# backend instances so a second model of the same shape pays nothing.
_LIB_CACHE: Dict[str, ctypes.CDLL] = {}

_COMPILE_SECONDS = 0.0


class BackendUnavailable(RuntimeError):
    """The compiled backend cannot be used; callers fall back to numpy."""


def compiler_path() -> Optional[str]:
    """Absolute path of the C compiler, honouring ``CC``; None if absent."""
    return shutil.which(os.environ.get("CC") or "cc")


def compiler_available() -> bool:
    return compiler_path() is not None


def kernel_cache_dir() -> str:
    override = os.environ.get(KERNEL_CACHE_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-kernels")


def _digest(source: str, flags: Tuple[str, ...]) -> str:
    h = hashlib.sha256()
    h.update(RENDERER_VERSION.encode())
    h.update(platform.machine().encode())
    h.update(" ".join(flags).encode())
    h.update(source.encode())
    return h.hexdigest()[:16]


def _compile(source: str, flags: Tuple[str, ...], out_path: str) -> None:
    cc = compiler_path()
    if cc is None:
        raise BackendUnavailable("no C compiler found (set CC or install cc)")
    cache_dir = os.path.dirname(out_path)
    os.makedirs(cache_dir, exist_ok=True)
    fd, src_path = tempfile.mkstemp(suffix=".c", dir=cache_dir)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(source)
        fd_so, tmp_so = tempfile.mkstemp(suffix=".so", dir=cache_dir)
        os.close(fd_so)
        try:
            proc = subprocess.run(
                [cc, *flags, "-o", tmp_so, src_path, "-lm"],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                raise BackendUnavailable(
                    f"cc failed ({' '.join(flags)}): {proc.stderr.strip()[:500]}"
                )
            os.replace(tmp_so, out_path)  # atomic publish
        finally:
            if os.path.exists(tmp_so):
                os.unlink(tmp_so)
        # Keep the source next to the library for auditability.
        try:
            os.replace(src_path, out_path[:-3] + ".c")
        except OSError:
            pass
    finally:
        if os.path.exists(src_path):
            os.unlink(src_path)


def build_library(source: str, tag: str = "step") -> ctypes.CDLL:
    """Compile ``source`` (or reuse a cached build) and load it.

    Counts ``backend.kernels_compiled`` / ``backend.cache_hits`` and
    accumulates ``backend.compile_seconds`` in the metrics registry.
    Raises :class:`BackendUnavailable` when no compiler is usable.
    """
    global _COMPILE_SECONDS
    registry = get_registry()
    cache_dir = kernel_cache_dir()
    digests = [(flags, _digest(source, flags)) for flags in _FLAG_SETS]

    for _flags, digest in digests:
        if digest in _LIB_CACHE:
            registry.counter("backend.cache_hits").inc()
            return _LIB_CACHE[digest]
    for _flags, digest in digests:
        so_path = os.path.join(cache_dir, f"{tag}-{digest}.so")
        if os.path.exists(so_path):
            try:
                lib = ctypes.CDLL(so_path)
            except OSError:
                continue  # stale/foreign build; fall through to recompile
            _LIB_CACHE[digest] = lib
            registry.counter("backend.cache_hits").inc()
            return lib

    errors: List[str] = []
    for flags, digest in digests:
        so_path = os.path.join(cache_dir, f"{tag}-{digest}.so")
        started = time.perf_counter()
        try:
            _compile(source, flags, so_path)
        except BackendUnavailable as exc:
            if str(exc) not in errors:
                errors.append(str(exc))
            continue
        _COMPILE_SECONDS += time.perf_counter() - started
        lib = ctypes.CDLL(so_path)
        _LIB_CACHE[digest] = lib
        registry.counter("backend.kernels_compiled").inc()
        registry.gauge("backend.compile_seconds").set(round(_COMPILE_SECONDS, 6))
        return lib
    raise BackendUnavailable("; ".join(errors) or "compilation failed")


def _as_f32_contiguous(arr: np.ndarray, keep: List[np.ndarray]) -> np.ndarray:
    out = np.ascontiguousarray(arr, dtype=np.float32)
    keep.append(out)  # pin: ctx holds raw pointers into this memory
    return out


class CompiledStepBackend:
    """ctypes driver for the fused decode-step kernels."""

    name = "compiled"

    def __init__(self, inference: Any) -> None:
        cfg = inference.config
        self._vocab = int(inference.token_emb.shape[0])
        self._block = int(inference.pos_emb.shape[0])
        head_trans, head_arr = self._head_layout(inference.lm_head)
        self.shape = StepShape(
            dim=int(cfg.dim),
            n_layers=int(cfg.n_layers),
            n_heads=int(cfg.n_heads),
            block_size=self._block,
            vocab_size=self._vocab,
            head_transposed=head_trans,
        )
        try:
            self.blas: BlasSymbols = find_blas()
        except BlasUnavailable as exc:
            raise BackendUnavailable(str(exc)) from exc
        source = render_step_source(self.shape, blas_int64=self.blas.ilp64)
        self._lib = build_library(source, tag="step")
        self._lib.repro_set_blas(
            ctypes.c_void_p(self.blas.sgemm), ctypes.c_void_p(self.blas.sgemv)
        )

        self._keep: List[np.ndarray] = []  # pins every array the ctx points into
        self._ctx = self._bind_weights(inference, head_arr)
        self._schedule = self._build_schedule()
        self._verify_against_reference(inference)

    # -- construction ---------------------------------------------------

    @staticmethod
    def _head_layout(lm_head: np.ndarray) -> Tuple[bool, np.ndarray]:
        """Match numpy's dispatch for ``h @ lm_head``.

        A C-contiguous (dim, vocab) head takes the NoTrans gemm; the tied
        head (a transpose view of token_emb) takes the Trans gemm on the
        (vocab, dim) base.  Anything else is copied to (dim, vocab) —
        the same buffering numpy itself performs.
        """
        if lm_head.flags.c_contiguous:
            return False, lm_head
        base = lm_head.T
        if base.flags.c_contiguous:
            return True, base
        return False, np.ascontiguousarray(lm_head)

    def _bind_weights(self, inference: Any, head_arr: np.ndarray) -> Any:
        shape = self.shape
        ctx_cls = ctx_ctypes_struct(shape.n_layers)
        ctx = ctx_cls()
        keep = self._keep

        def ptr(arr: np.ndarray) -> int:
            return _as_f32_contiguous(arr, keep).ctypes.data

        ctx.token_emb = ptr(inference.token_emb)
        ctx.pos_emb = ptr(inference.pos_emb)
        ctx.lnf_w = ptr(inference.ln_f_w)
        ctx.lnf_b = ptr(inference.ln_f_b)
        ctx.lm_head = ptr(head_arr)
        ctx.head_trans = 1 if shape.head_transposed else 0

        # _BlockWeights attribute names differ from the short C names
        # only for the second MLP matmul.
        attr_map = {"fcp_w": "fc_proj_w", "fcp_b": "fc_proj_b"}
        for field in CTX_LAYER_PTRS:
            arr_field = getattr(ctx, field)
            for layer, bw in enumerate(inference.blocks):
                arr_field[layer] = ptr(getattr(bw, attr_map.get(field, field)))
        self._ctx_ref = ctypes.byref(ctx)
        return ctx

    def _build_schedule(self) -> List[Tuple[str, Any]]:
        schedule: List[Tuple[str, Any]] = []
        for item in fuse_segments(build_step_graph(self.shape)):
            if isinstance(item, Segment):
                schedule.append(("seg", getattr(self._lib, item.name)))
            else:
                schedule.append((item.func, item.buf))
        return schedule

    def _make_scratch(self, batch: int) -> Dict[str, Any]:
        shape = self.shape
        sizes = {
            "x": batch * shape.dim,
            "h": batch * shape.dim,
            "qkv": batch * 3 * shape.dim,
            "scores": batch * shape.n_heads * shape.block_size,
            "att": batch * shape.dim,
            "ff": batch * shape.ff_dim,
            "t": batch * shape.ff_dim,
        }
        scratch: Dict[str, Any] = {
            name: np.empty(size, dtype=np.float32) for name, size in sizes.items()
        }
        scratch["logits"] = np.empty((batch, self._vocab), dtype=np.float32)
        scratch["batch"] = batch
        return scratch

    # -- per-call guard -------------------------------------------------

    def supports(self, ids: np.ndarray, cache: Any) -> bool:
        """True when this call is inside the kernel's validated domain."""
        shape = self.shape
        keys = getattr(cache, "keys", None)
        values = getattr(cache, "values", None)
        if keys is None or values is None or len(keys) != shape.n_layers:
            return False
        batch = ids.shape[0]
        if batch < 1 or cache.length >= self._block:
            return False
        for buf in (*keys, *values):
            if (
                buf.dtype != np.float32
                or not buf.flags.c_contiguous
                or buf.ndim != 4
                or buf.shape[0] != batch
                or buf.shape[1] != shape.n_heads
                or buf.shape[2] <= cache.length
                or buf.shape[3] != shape.head_dim
            ):
                return False
        return True

    # -- execution ------------------------------------------------------

    def step(self, next_ids: np.ndarray, cache: Any) -> np.ndarray:
        """Run one fused decode step; mirrors the numpy kernel exactly."""
        ids = np.ascontiguousarray(np.asarray(next_ids).reshape(-1), dtype=np.int64)
        batch = ids.shape[0]
        if ids.size and (ids.min() < 0 or ids.max() >= self._vocab):
            raise IndexError("token id out of range")
        pos = cache.length
        stop = pos + 1
        cap = cache.keys[0].shape[2]

        scratch = getattr(cache, "_compiled_scratch", None)
        if scratch is None or scratch["batch"] != batch:
            scratch = self._make_scratch(batch)
            cache._compiled_scratch = scratch

        ctx = self._ctx
        ctx.ids = ids.ctypes.data
        for name in CTX_SCRATCH_PTRS:
            setattr(ctx, name, scratch[name].ctypes.data)
        for layer in range(self.shape.n_layers):
            ctx.keys[layer] = cache.keys[layer].ctypes.data
            ctx.values[layer] = cache.values[layer].ctypes.data

        c_batch = ctypes.c_int64(batch)
        c_pos = ctypes.c_int64(pos)
        c_cap = ctypes.c_int64(cap)
        n_scores = batch * self.shape.n_heads * stop
        n_ff = batch * self.shape.ff_dim
        for kind, payload in self._schedule:
            if kind == "seg":
                payload(self._ctx_ref, c_batch, c_pos, c_cap)
            elif kind == "exp":
                flat = scratch["scores"][:n_scores]
                np.exp(flat, out=flat)
            else:  # tanh
                flat = scratch["t"][:n_ff]
                np.tanh(flat, out=flat)
        cache.length = stop
        return scratch["logits"].copy()

    # -- init-time parity canary ----------------------------------------

    def _verify_against_reference(self, inference: Any) -> None:
        """A few steps, bit-compared against numpy — logits and caches."""
        from ..inference import KVCache

        shape = self.shape
        rng = np.random.default_rng(0)
        for batch in (2, 1):
            steps = max(1, min(self._block - 1, 5))
            ref_cache = KVCache(shape.n_layers, batch, shape.n_heads, self._block, shape.head_dim)
            got_cache = KVCache(shape.n_layers, batch, shape.n_heads, self._block, shape.head_dim)
            for _ in range(steps):
                ids = rng.integers(0, self._vocab, size=batch, dtype=np.int64)
                ref = inference._step_numpy(ids, ref_cache)
                if not self.supports(ids, got_cache):
                    raise BackendUnavailable("parity canary: kernel rejected canonical cache")
                got = self.step(ids, got_cache)
                if ref.tobytes() != got.tobytes():
                    raise BackendUnavailable(
                        f"parity canary failed: logits differ at batch={batch}"
                    )
            for layer in range(shape.n_layers):
                if (
                    ref_cache.keys[layer].tobytes() != got_cache.keys[layer].tobytes()
                    or ref_cache.values[layer].tobytes() != got_cache.values[layer].tobytes()
                ):
                    raise BackendUnavailable(
                        f"parity canary failed: KV cache differs at layer {layer}"
                    )
