"""C-source renderer for the fused decode-step kernels.

Turns the op graph from :mod:`.graph` into one translation unit with a
``repro_seg<i>`` function per fused segment.  Design constraints, all in
service of the byte-identity contract with the numpy reference kernel:

* **Matmuls are delegated to numpy's own BLAS.**  The generated code
  never links a BLAS; it receives ``cblas_sgemm``/``cblas_sgemv``
  function pointers at runtime (``repro_set_blas``), resolved by
  :mod:`.blas` from the OpenBLAS shared object numpy itself bundles.
  Calling the same kernels numpy calls makes the large matmuls
  bit-identical by construction, at full BLAS speed.
* **Attention q·Kᵀ / scores·V use inline kernels** (``gemvt`` /
  ``gemvn``) that replicate the exact FMA/accumulation structure of the
  OpenBLAS sgemv microkernels — per-slice library calls dominate the
  profile at large batch.  The inline path is only emitted for the
  head-dim/seq-len domain it was validated on; outside it the code
  falls back to per-slice ``cblas_sgemv`` calls (the same calls numpy
  issues).
* **Reductions replicate numpy's pairwise summation** (``np_sum``):
  8-lane strided partials with the ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))``
  combine, recursive halving above 128 elements.
* **Transcendentals are host ops.** ``expf``/``tanhf`` from libm round
  differently from numpy's SIMD kernels, so segments stop at each
  ``exp``/``tanh`` and the Python driver applies numpy in place on the
  flat scratch buffer (identical linear element order ⇒ identical
  lanes ⇒ identical bits).
* Compiled with ``-ffp-contract=off`` so the only FMAs are the explicit
  ``fmaf()`` calls mirroring the BLAS microkernel structure.

The KV-cache row stride (``cap``) is a runtime argument, not a compile
constant: ``KVCache.gather``/``trimmed`` produce buffers whose capacity
differs from ``block_size``.
"""

from __future__ import annotations

import ctypes
from typing import Any, List, Tuple

import numpy as np

from .graph import HostOp, Op, Segment, StepShape, build_step_graph, fuse_segments

__all__ = [
    "RENDERER_VERSION",
    "CTX_GLOBAL_PTRS",
    "CTX_LAYER_PTRS",
    "CTX_CACHE_PTRS",
    "CTX_SCRATCH_PTRS",
    "INLINE_HEAD_DIMS",
    "INLINE_MAX_STOP",
    "ctx_ctypes_struct",
    "render_step_source",
    "render_op_test_source",
]

# Bump when emitted C changes in any way — part of the cache digest.
RENDERER_VERSION = "1"

# Domain on which the inline attention kernels were validated bitwise
# against numpy's stacked matmul (423/423 shape/seq combinations).
INLINE_HEAD_DIMS = (16, 32, 64)
INLINE_MAX_STOP = 48

# Context-struct layout, shared between the C side (rendered below) and
# the ctypes Structure (ctx_ctypes_struct).  Order matters.
CTX_GLOBAL_PTRS = ("token_emb", "pos_emb", "lnf_w", "lnf_b", "lm_head")
CTX_LAYER_PTRS = (
    "ln1_w", "ln1_b", "qkv_w", "qkv_b", "proj_w", "proj_b",
    "ln2_w", "ln2_b", "fc_w", "fc_b", "fcp_w", "fcp_b",
)
CTX_CACHE_PTRS = ("keys", "values")
CTX_SCRATCH_PTRS = ("x", "h", "qkv", "scores", "att", "ff", "t", "logits")


def ctx_ctypes_struct(n_layers: int) -> type:
    """ctypes mirror of the rendered ``Ctx`` struct (all 8-byte fields)."""
    fields: List[Tuple[str, Any]] = [(name, ctypes.c_void_p) for name in CTX_GLOBAL_PTRS]
    fields.append(("head_trans", ctypes.c_int64))
    for name in CTX_LAYER_PTRS:
        fields.append((name, ctypes.c_void_p * n_layers))
    for name in CTX_CACHE_PTRS:
        fields.append((name, ctypes.c_void_p * n_layers))
    fields.append(("ids", ctypes.c_void_p))
    for name in CTX_SCRATCH_PTRS:
        fields.append((name, ctypes.c_void_p))
    return type("Ctx", (ctypes.Structure,), {"_fields_": fields})


def _f32(value: float) -> str:
    """Render a value as a C hex-float literal equal to float32(value)."""
    return float(np.float32(value)).hex() + "f"


# ----------------------------------------------------------------------
# Shared C preamble: helpers replicated from the validated prototype.
# ----------------------------------------------------------------------

_BLAS_GLUE = """\
typedef void (*sgemm_fn)(int32_t,int32_t,int32_t,blasint,blasint,blasint,float,
                         const float*,blasint,const float*,blasint,float,float*,blasint);
typedef void (*sgemv_fn)(int32_t,int32_t,blasint,blasint,float,
                         const float*,blasint,const float*,blasint,float,float*,blasint);
static sgemm_fn SGEMM; static sgemv_fn SGEMV;
void repro_set_blas(void* gemm, void* gemv){ SGEMM=(sgemm_fn)gemm; SGEMV=(sgemv_fn)gemv; }
"""

# q @ K^T per attention slice (K is (n, hd) row-major): replicates the
# OpenBLAS sgemv_t HASWELL kernel's 4/2/1-column blocking and 8-lane FMA
# accumulation, so the result is bit-identical to the library call.
_GEMVT = """\
static void gemvt(const float*restrict q, const float*restrict K, float*restrict out,
                  long n, long hd){
  long j=0;
  for(; j+4<=n; j+=4){
    for(long cc=0;cc<4;cc++){
      const float*restrict k=K+(j+cc)*hd;
      float l[8]={0,0,0,0,0,0,0,0};
      long i=0;
      for(; i+8<=hd; i+=8)
        for(int u=0;u<8;u++) l[u]=fmaf(q[i+u],k[i+u],l[u]);
      float m0=l[0]+l[4], m1=l[1]+l[5], m2=l[2]+l[6], m3=l[3]+l[7];
      float s=(m0+m1)+(m2+m3);
      for(; i<hd; i++) s=fmaf(q[i],k[i],s);
      out[j+cc]=s;
    }
  }
  if(n-j>=2){
    for(long cc=0;cc<2;cc++){
      const float*restrict k=K+(j+cc)*hd;
      float l[4]={0,0,0,0};
      long i=0;
      for(; i+4<=hd; i+=4)
        for(int u=0;u<4;u++) l[u]=l[u]+q[i+u]*k[i+u];
      float s=(l[0]+l[1])+(l[2]+l[3]);
      for(; i<hd; i++) s+=q[i]*k[i];
      out[j+cc]=s;
    }
    j+=2;
  }
  if(j<n){
    const float*restrict k=K+j*hd;
    float l[8]={0,0,0,0,0,0,0,0};
    long i=0;
    for(; i+8<=hd; i+=8)
      for(int u=0;u<8;u++) l[u]=l[u]+q[i+u]*k[i+u];
    float m0=l[0]+l[4], m1=l[1]+l[5], m2=l[2]+l[6], m3=l[3]+l[7];
    float s=(m0+m1)+(m2+m3);
    for(; i<hd; i++) s+=q[i]*k[i];
    out[j]=s;
  }
}
"""

# scores @ V per slice (V is (n, hd) row-major): sequential fma per
# output column — the sgemv_n structure OpenBLAS uses for short n.
_GEMVN = """\
static void gemvn(const float*restrict s, const float*restrict V, float*restrict out,
                  long n, long hd){
  for(long d=0;d<hd;d++) out[d]=0.0f;
  for(long jj=0;jj<n;jj++){
    float sv=s[jj];
    const float*restrict v=V+jj*hd;
    for(long d=0;d<hd;d++) out[d]=fmaf(sv,v[d],out[d]);
  }
}
"""

# numpy float32 pairwise summation: plain loop under 8 elements, 8-lane
# strided partials up to 128, recursive halving (split rounded down to a
# multiple of 8) above.
_NP_SUM = """\
static float np_sum(const float* a, int64_t n){
  if (n < 8){ float s=a[0]; for(int64_t i=1;i<n;i++) s+=a[i]; return s; }
  if (n <= 128){
    float r[8]; for(int l=0;l<8;l++) r[l]=a[l];
    int64_t i=8;
    for(; i+8<=n; i+=8) for(int l=0;l<8;l++) r[l]+=a[i+l];
    float s=((r[0]+r[1])+(r[2]+r[3]))+((r[4]+r[5])+(r[6]+r[7]));
    for(; i<n; i++) s+=a[i];
    return s;
  }
  int64_t n2=n/2; n2-=n2%8;
  return np_sum(a,n2)+np_sum(a+n2,n-n2);
}
"""

# Compile-time specialisation of np_sum for n == DIM (fully unrollable,
# same arithmetic as the 8..128 branch above).
_SUM_DIM = """\
static float sum_dim(const float*restrict a){
#if DIM >= 8 && DIM <= 128
  float r[8];
  for(int l=0;l<8;l++) r[l]=a[l];
  int i=8;
  for(; i+8<=DIM; i+=8)
    for(int l=0;l<8;l++) r[l]+=a[i+l];
  float s=((r[0]+r[1])+(r[2]+r[3]))+((r[4]+r[5])+(r[6]+r[7]));
  for(; i<DIM; i++) s+=a[i];
  return s;
#else
  return np_sum(a, DIM);
#endif
}
"""

_LAYER_NORM = """\
static void layer_norm(const float* x, const float* w, const float* b, float* out, int64_t rows){
  for(int64_t r=0;r<rows;r++){
    const float* xr=x+r*DIM; float* o=out+r*DIM;
    float d[DIM], sq[DIM];
    float mu=sum_dim(xr)/(float)DIM;
    for(int i=0;i<DIM;i++){ d[i]=xr[i]-mu; sq[i]=d[i]*d[i]; }
    float var=sum_dim(sq)/(float)DIM;
    float s=sqrtf(var+EPS);
    for(int i=0;i<DIM;i++) o[i]=d[i]/s*w[i]+b[i];
  }
}
"""

# A @ B (row-major).  M==1 takes the sgemv path — that is what numpy
# itself does for a (1,K)@(K,N) matmul, and the two round differently.
_MM = """\
static void mm(const float* A, const float* B, float* C, int64_t M, int64_t K, int64_t N){
  if(M==1) SGEMV(101,112,K,N,1.0f,B,N,A,1,0.0f,C,1);
  else     SGEMM(101,111,111,M,N,K,1.0f,A,K,B,N,0.0f,C,N);
}
static void mm_t(const float* A, const float* Bt, float* C, int64_t M, int64_t K, int64_t N){
  if(M==1) SGEMV(101,111,N,K,1.0f,Bt,K,A,1,0.0f,C,1);
  else     SGEMM(101,111,112,M,N,K,1.0f,A,K,Bt,K,0.0f,C,N);
}
"""


def _preamble(blas_int64: bool) -> str:
    blasint = "int64_t" if blas_int64 else "int32_t"
    return (
        "#include <stdint.h>\n"
        "#include <math.h>\n"
        "#include <string.h>\n\n"
        f"typedef {blasint} blasint;\n" + _BLAS_GLUE
    )


def _ctx_struct_c(n_layers: int) -> str:
    lines = ["typedef struct {"]
    lines.append("  const float *" + ", *".join(CTX_GLOBAL_PTRS) + ";")
    lines.append("  int64_t head_trans;")
    for name in CTX_LAYER_PTRS:
        lines.append(f"  const float *{name}[{n_layers}];")
    for name in CTX_CACHE_PTRS:
        lines.append(f"  float *{name}[{n_layers}];")
    lines.append("  const int64_t *ids;")
    lines.append("  float *" + ", *".join(CTX_SCRATCH_PTRS) + ";")
    lines.append("} Ctx;")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Per-op emitters.  Each returns a brace-wrapped C block so declarations
# never collide across ops fused into one segment.
# ----------------------------------------------------------------------


def _wref(op: Op, attr: str) -> str:
    """C expression for a weight pointer: per-layer array or global."""
    name = op.attr(attr)
    if op.layer is None:
        return f"c->{name}"
    return f"c->{name}[{op.layer}]"


def _emit_embed(op: Op, shape: StepShape) -> str:
    return """\
  for(int64_t r=0;r<batch;r++){
    const float* te=c->token_emb+c->ids[r]*DIM;
    const float* pe=c->pos_emb+pos*DIM;
    float* xr=c->x+r*DIM;
    for(int i=0;i<DIM;i++) xr[i]=te[i]+pe[i];
  }
"""


def _emit_layernorm(op: Op, shape: StepShape) -> str:
    src, out = op.attr("src"), op.attr("out")
    return f"  layer_norm(c->{src}, {_wref(op, 'w')}, {_wref(op, 'b')}, c->{out}, batch);\n"


def _emit_matmul(op: Op, shape: StepShape) -> str:
    a, out = op.attr("a"), op.attr("out")
    k, n = op.attr("k"), op.attr("n")
    return f"  mm(c->{a}, {_wref(op, 'w')}, c->{out}, batch, {k}, {n});\n"


def _emit_bias_add(op: Op, shape: StepShape) -> str:
    buf, n = op.attr("buf"), op.attr("n")
    return f"""\
  for(int64_t r=0;r<batch;r++){{
    float* p=c->{buf}+r*{n}; const float* bb={_wref(op, 'b')};
    for(int i=0;i<{n};i++) p[i]+=bb[i];
  }}
"""


def _emit_cache_write(op: Op, shape: StepShape) -> str:
    layer = op.layer
    return f"""\
  for(int64_t r=0;r<batch;r++){{
    for(int hh=0;hh<NH;hh++){{
      float* kdst=c->keys[{layer}]+(((r*NH)+hh)*cap+pos)*HD;
      float* vdst=c->values[{layer}]+(((r*NH)+hh)*cap+pos)*HD;
      const float* ksrc=c->qkv+r*3*DIM+DIM+hh*HD;
      const float* vsrc=c->qkv+r*3*DIM+2*DIM+hh*HD;
      memcpy(kdst,ksrc,HD*sizeof(float));
      memcpy(vdst,vsrc,HD*sizeof(float));
    }}
  }}
"""


def _emit_attn_scores(op: Op, shape: StepShape) -> str:
    layer = op.layer
    blas = "SGEMV(101,111,stop,HD,1.0f,K,HD,q,1,0.0f,s,1);"
    if shape.head_dim in INLINE_HEAD_DIMS:
        dot = f"if(stop<={INLINE_MAX_STOP}) gemvt(q,K,s,stop,HD);\n      else {blas}"
    else:
        dot = blas
    return f"""\
  for(int64_t r=0;r<batch;r++){{
    for(int hh=0;hh<NH;hh++){{
      const float* q=c->qkv+r*3*DIM+hh*HD;
      const float* K=c->keys[{layer}]+((r*NH)+hh)*cap*HD;
      float* s=c->scores+((r*NH)+hh)*stop;
      {dot}
      float m=s[0]/KSCALE; s[0]=m;
      for(int64_t j=1;j<stop;j++){{ s[j]/=KSCALE; if(s[j]>m) m=s[j]; }}
      for(int64_t j=0;j<stop;j++) s[j]-=m;
    }}
  }}
"""


def _emit_softmax_norm(op: Op, shape: StepShape) -> str:
    return """\
  for(int64_t r=0;r<batch;r++){
    for(int hh=0;hh<NH;hh++){
      float* s=c->scores+((r*NH)+hh)*stop;
      float ssum=np_sum(s,stop);
      for(int64_t j=0;j<stop;j++) s[j]/=ssum;
    }
  }
"""


def _emit_attn_mix(op: Op, shape: StepShape) -> str:
    layer = op.layer
    blas = "SGEMV(101,112,stop,HD,1.0f,V,HD,s,1,0.0f,o,1);"
    if shape.head_dim in INLINE_HEAD_DIMS:
        mix = f"if(stop<={INLINE_MAX_STOP}) gemvn(s,V,o,stop,HD);\n      else {blas}"
    else:
        mix = blas
    return f"""\
  for(int64_t r=0;r<batch;r++){{
    for(int hh=0;hh<NH;hh++){{
      const float* s=c->scores+((r*NH)+hh)*stop;
      const float* V=c->values[{layer}]+((r*NH)+hh)*cap*HD;
      float* o=c->att+(r*NH+hh)*HD;
      {mix}
    }}
  }}
"""


def _emit_residual_add(op: Op, shape: StepShape) -> str:
    # Two separate loops on purpose: the reference does x += h then
    # x += bias as distinct numpy ops.
    return f"""\
  for(int64_t r=0;r<batch;r++){{
    float* xr=c->x+r*DIM; const float* hr=c->h+r*DIM; const float* pb={_wref(op, 'b')};
    for(int i=0;i<DIM;i++) xr[i]+=hr[i];
    for(int i=0;i<DIM;i++) xr[i]+=pb[i];
  }}
"""


def _emit_gelu_inner(op: Op, shape: StepShape) -> str:
    return """\
  { int64_t n=batch*FFDIM;
    for(int64_t i=0;i<n;i++){ float v=c->ff[i]; c->t[i]=GELU_C*(v+GELU_K*((v*v)*v)); } }
"""


def _emit_gelu_outer(op: Op, shape: StepShape) -> str:
    return """\
  { int64_t n=batch*FFDIM;
    for(int64_t i=0;i<n;i++) c->t[i]=(0.5f*c->ff[i])*(1.0f+c->t[i]); }
"""


def _emit_head(op: Op, shape: StepShape) -> str:
    return """\
  if(c->head_trans) mm_t(c->h, c->lm_head, c->logits, batch, DIM, VOCAB);
  else              mm(c->h, c->lm_head, c->logits, batch, DIM, VOCAB);
"""


_EMITTERS = {
    "embed": _emit_embed,
    "layernorm": _emit_layernorm,
    "matmul": _emit_matmul,
    "bias_add": _emit_bias_add,
    "cache_write": _emit_cache_write,
    "attn_scores": _emit_attn_scores,
    "softmax_norm": _emit_softmax_norm,
    "attn_mix": _emit_attn_mix,
    "residual_add": _emit_residual_add,
    "gelu_inner": _emit_gelu_inner,
    "gelu_outer": _emit_gelu_outer,
    "head": _emit_head,
}


def render_step_source(shape: StepShape, blas_int64: bool) -> str:
    """Render the full decode-step translation unit for ``shape``."""
    from .. import inference as _inf  # GELU constant lives with the reference

    shape.validate()
    program = fuse_segments(build_step_graph(shape))
    parts = [_preamble(blas_int64)]
    parts.append(
        f"""
#define DIM {shape.dim}
#define NH {shape.n_heads}
#define HD {shape.head_dim}
#define FFDIM {shape.ff_dim}
#define VOCAB {shape.vocab_size}
#define NL {shape.n_layers}
#define EPS {_f32(1e-5)}
#define KSCALE {_f32(shape.kscale)}
#define GELU_C {_f32(_inf._GELU_C)}
#define GELU_K {_f32(0.044715)}
"""
    )
    if shape.head_dim in INLINE_HEAD_DIMS:
        parts.append(_GEMVT)
        parts.append(_GEMVN)
    parts.append(_ctx_struct_c(shape.n_layers))
    parts.append(_NP_SUM)
    parts.append(_SUM_DIM)
    parts.append(_LAYER_NORM)
    parts.append(_MM)
    for item in program:
        if isinstance(item, HostOp):
            parts.append(f"/* host op: numpy {item.func} on flat '{item.buf}' */\n")
            continue
        body = "".join(_EMITTERS[op.kind](op, shape) for op in item.ops)
        parts.append(
            f"void {item.name}(Ctx* c, int64_t batch, int64_t pos, int64_t cap){{\n"
            "  int64_t stop=pos+1;\n"
            "  (void)stop; (void)cap;\n" + body + "}\n"
        )
    return "\n".join(parts)


def render_op_test_source(blas_int64: bool) -> str:
    """Standalone per-op kernels for the equivalence test-suite.

    Generic (runtime-dim) exports of the same emitter arithmetic, so each
    primitive can be validated against numpy in isolation.
    """
    from .. import inference as _inf

    gelu_c, gelu_k, eps = _f32(_inf._GELU_C), _f32(0.044715), _f32(1e-5)
    return (
        _preamble(blas_int64)
        + _GEMVT.replace("static void gemvt", "void repro_gemvt")
        + _GEMVN.replace("static void gemvn", "void repro_gemvn")
        + _NP_SUM.replace("static float np_sum", "float repro_sum")
        .replace("np_sum(a,n2)+np_sum(a+n2,n-n2)", "repro_sum(a,n2)+repro_sum(a+n2,n-n2)")
        + f"""
void repro_layer_norm(const float* x, const float* w, const float* b, float* out,
                      int64_t rows, int64_t dim){{
  for(int64_t r=0;r<rows;r++){{
    const float* xr=x+r*dim; float* o=out+r*dim;
    float d[dim], sq[dim];
    float mu=repro_sum(xr,dim)/(float)dim;
    for(int64_t i=0;i<dim;i++){{ d[i]=xr[i]-mu; sq[i]=d[i]*d[i]; }}
    float var=repro_sum(sq,dim)/(float)dim;
    float s=sqrtf(var+{eps});
    for(int64_t i=0;i<dim;i++) o[i]=d[i]/s*w[i]+b[i];
  }}
}}

void repro_gelu_inner(const float* x, float* t, int64_t n){{
  for(int64_t i=0;i<n;i++){{ float v=x[i]; t[i]={gelu_c}*(v+{gelu_k}*((v*v)*v)); }}
}}

void repro_gelu_outer(const float* x, float* t, int64_t n){{
  for(int64_t i=0;i<n;i++) t[i]=(0.5f*x[i])*(1.0f+t[i]);
}}

void repro_softmax_prep(float* s, int64_t n, float kscale){{
  float m=s[0]/kscale; s[0]=m;
  for(int64_t j=1;j<n;j++){{ s[j]/=kscale; if(s[j]>m) m=s[j]; }}
  for(int64_t j=0;j<n;j++) s[j]-=m;
}}

void repro_softmax_norm(float* s, int64_t n){{
  float ssum=repro_sum(s,n);
  for(int64_t j=0;j<n;j++) s[j]/=ssum;
}}

void repro_matmul(const float* A, const float* B, float* C,
                  int64_t M, int64_t K, int64_t N){{
  if(M==1) SGEMV(101,112,K,N,1.0f,B,N,A,1,0.0f,C,1);
  else     SGEMM(101,111,111,M,N,K,1.0f,A,K,B,N,0.0f,C,N);
}}

void repro_matmul_t(const float* A, const float* Bt, float* C,
                    int64_t M, int64_t K, int64_t N){{
  if(M==1) SGEMV(101,111,N,K,1.0f,Bt,K,A,1,0.0f,C,1);
  else     SGEMM(101,111,112,M,N,K,1.0f,A,K,Bt,K,0.0f,C,N);
}}
"""
    )
