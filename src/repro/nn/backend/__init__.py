"""Pluggable decode-step backends for :class:`~repro.nn.inference.GPT2Inference`.

Two implementations sit behind the same ``step()``/``KVCache`` surface:

* ``numpy`` — the reference kernel in :mod:`repro.nn.inference`; always
  available, defines correctness.
* ``compiled`` — the fused C kernels in :mod:`.compiled`: the decode
  step rendered from an explicit op graph (:mod:`.graph` →
  :mod:`.cstyle`), compiled once with ``cc`` and loaded via ``ctypes``,
  with numpy's own BLAS doing the matmuls so the output is bit-identical
  to the reference.

Selection is by the ``REPRO_BACKEND`` environment variable (or the
``backend=`` argument to ``GPT2Inference``); the CLI exposes it as
``--backend``.  An unavailable compiled backend (no compiler, compile
error, parity-canary failure) degrades to numpy with a warning — it
never fails a campaign.
"""

from __future__ import annotations

import os

from .blas import BlasSymbols, BlasUnavailable, find_blas
from .compiled import (
    BackendUnavailable,
    CompiledStepBackend,
    build_library,
    compiler_available,
    compiler_path,
    kernel_cache_dir,
)
from .cstyle import render_op_test_source, render_step_source
from .graph import HostOp, Op, Segment, StepShape, build_step_graph, fuse_segments

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "BackendUnavailable",
    "BlasSymbols",
    "BlasUnavailable",
    "CompiledStepBackend",
    "HostOp",
    "Op",
    "Segment",
    "StepShape",
    "build_library",
    "build_step_graph",
    "compiler_available",
    "compiler_path",
    "find_blas",
    "fuse_segments",
    "kernel_cache_dir",
    "render_op_test_source",
    "render_step_source",
    "requested_backend",
]

BACKEND_ENV = "REPRO_BACKEND"
BACKEND_NAMES = ("numpy", "compiled")


def requested_backend(explicit: str | None = None) -> str:
    """Resolve the backend request: explicit argument > env > ``numpy``."""
    name = explicit or os.environ.get(BACKEND_ENV) or "numpy"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r} (expected one of {', '.join(BACKEND_NAMES)})"
        )
    return name
