"""Explicit op graph for one cached decode step.

The numpy reference kernel (``GPT2Inference._step_numpy``) is a fixed
sequence of small dense ops on tiny tensors.  This module writes that
sequence down as data: :func:`build_step_graph` produces the per-layer op
list for a given :class:`StepShape`, and :func:`fuse_segments` splits it
into maximal runs of C-compilable ops separated by *host ops* — the two
transcendentals (``exp`` inside softmax, ``tanh`` inside GELU) that must
be evaluated by numpy itself so the compiled path reproduces the
reference bit-for-bit (libm's ``expf``/``tanhf`` round differently from
numpy's SIMD kernels).

The graph is deliberately concrete: buffer names refer to the fixed
scratch layout shared between the renderer (:mod:`.cstyle`) and the
runtime (:mod:`.compiled`).  There is no shape inference or generic
scheduling — the value of the IR is that the fusion boundaries, the op
order, and the buffer traffic are inspectable and testable instead of
being implicit in a hand-written C file.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "StepShape",
    "Op",
    "HostOp",
    "Segment",
    "build_step_graph",
    "fuse_segments",
    "HOST_KINDS",
]


@dataclass(frozen=True)
class StepShape:
    """Compile-time shape key for one decode-step kernel.

    Two models with equal ``StepShape`` share a compiled library (the
    weight *values* are passed at runtime through the context struct).
    ``block_size`` is the maximum sequence length the kernel must
    support; the actual KV-cache capacity is a runtime argument so
    ``KVCache.gather``/``trimmed`` buffers of any capacity work.
    """

    dim: int
    n_layers: int
    n_heads: int
    block_size: int
    vocab_size: int
    head_transposed: bool  # lm_head passed as (vocab, dim), used transposed

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads

    @property
    def ff_dim(self) -> int:
        return 4 * self.dim

    @property
    def kscale(self) -> float:
        """float32(sqrt(head_dim)) — the reference divides scores by this."""
        import numpy as np

        return float(np.float32(math.sqrt(float(self.head_dim))))

    def key(self) -> Tuple[Any, ...]:
        return (
            self.dim,
            self.n_layers,
            self.n_heads,
            self.block_size,
            self.vocab_size,
            self.head_transposed,
        )

    def validate(self) -> None:
        if self.dim <= 0 or self.n_layers <= 0 or self.n_heads <= 0:
            raise ValueError("StepShape dims must be positive")
        if self.dim % self.n_heads:
            raise ValueError("dim must be divisible by n_heads")
        if self.block_size <= 0 or self.vocab_size <= 0:
            raise ValueError("block_size and vocab_size must be positive")


# Host ops and the flat scratch buffer each one transforms in place.
HOST_KINDS: Dict[str, str] = {"host_exp": "scores", "host_tanh": "t"}


@dataclass(frozen=True)
class Op:
    """One primitive in the decode-step graph.

    ``kind`` selects the emitter in :mod:`.cstyle`; ``layer`` is the
    transformer block index (``None`` for the embed/final ops); ``attrs``
    carries emitter-specific operands (buffer and weight names, widths).
    """

    kind: str
    layer: Optional[int] = None
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def attr(self, name: str, default: Any = None) -> Any:
        for key, value in self.attrs:
            if key == name:
                return value
        return default

    @property
    def is_host(self) -> bool:
        return self.kind in HOST_KINDS


def _op(kind: str, layer: Optional[int] = None, **attrs: Any) -> Op:
    return Op(kind=kind, layer=layer, attrs=tuple(sorted(attrs.items())))


@dataclass(frozen=True)
class HostOp:
    """A fusion boundary: numpy applies ``func`` to flat buffer ``buf``."""

    func: str  # "exp" | "tanh"
    buf: str  # scratch name; active length depends on batch/stop


@dataclass
class Segment:
    """A maximal run of compilable ops, rendered as one C function."""

    index: int
    ops: List[Op] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"repro_seg{self.index}"


def build_step_graph(shape: StepShape) -> List[Op]:
    """The full op list for one decode step, mirroring the numpy kernel.

    Order and operand grouping follow ``GPT2Inference._step_numpy``
    exactly — any reordering (e.g. folding a bias add into a matmul
    epilogue) changes float32 rounding and breaks the byte-identity
    contract, so the graph is the reference ordering made explicit.
    """
    shape.validate()
    dim, ff = shape.dim, shape.ff_dim
    ops: List[Op] = [_op("embed")]
    for layer in range(shape.n_layers):
        ops.extend(
            [
                _op("layernorm", layer, src="x", out="h", w="ln1_w", b="ln1_b"),
                _op("matmul", layer, a="h", w="qkv_w", out="qkv", k=dim, n=3 * dim),
                _op("bias_add", layer, buf="qkv", b="qkv_b", n=3 * dim),
                _op("cache_write", layer),
                _op("attn_scores", layer),
                _op("host_exp", layer),
                _op("softmax_norm", layer),
                _op("attn_mix", layer),
                _op("matmul", layer, a="att", w="proj_w", out="h", k=dim, n=dim),
                _op("residual_add", layer, buf="x", src="h", b="proj_b", n=dim),
                _op("layernorm", layer, src="x", out="h", w="ln2_w", b="ln2_b"),
                _op("matmul", layer, a="h", w="fc_w", out="ff", k=dim, n=ff),
                _op("bias_add", layer, buf="ff", b="fc_b", n=ff),
                _op("gelu_inner", layer),
                _op("host_tanh", layer),
                _op("gelu_outer", layer),
                _op("matmul", layer, a="t", w="fcp_w", out="h", k=ff, n=dim),
                _op("residual_add", layer, buf="x", src="h", b="fcp_b", n=dim),
            ]
        )
    ops.append(_op("layernorm", None, src="x", out="h", w="lnf_w", b="lnf_b"))
    ops.append(_op("head"))
    return ops


def fuse_segments(ops: List[Op]) -> List[Union[Segment, HostOp]]:
    """Split the op list at host ops into compilable segments.

    Returns the interleaved schedule the runtime walks: C segment, host
    transcendental, C segment, ...  For an ``n_layers``-block model this
    yields ``2*n_layers + 1`` segments separated by ``2*n_layers`` host
    calls.
    """
    program: List[Union[Segment, HostOp]] = []
    current = Segment(index=0)
    for op in ops:
        if op.is_host:
            if current.ops:
                program.append(current)
            program.append(HostOp(func=op.kind.replace("host_", ""), buf=HOST_KINDS[op.kind]))
            current = Segment(index=len([p for p in program if isinstance(p, Segment)]))
        else:
            current.ops.append(op)
    if current.ops:
        program.append(current)
    return program
