"""GPT-2 decoder-only transformer (the paper's backbone for both models).

Architecture per Radford et al. 2019 and §III-B of the paper: token +
learned position embeddings, pre-LN transformer blocks (masked multi-head
self-attention, GELU MLP with 4x expansion), final layer norm, and a
language-modelling head tied to the token embedding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import functional as F
from ..autograd.tensor import Tensor
from .attention import CausalSelfAttention
from .layers import Dropout, Embedding, LayerNorm, Linear
from .module import Module


@dataclass(frozen=True)
class GPT2Config:
    """Hyper-parameters of the GPT-2 backbone.

    The paper's configuration is ``block_size=32``, ``dim=256``,
    ``n_layers=12``, ``n_heads=8`` (§IV-B1); the reproduction defaults to a
    CPU-sized variant and the tests shrink it further.
    """

    vocab_size: int
    block_size: int = 32
    dim: int = 128
    n_layers: int = 4
    n_heads: int = 4
    dropout: float = 0.1
    tie_lm_head: bool = True

    def __post_init__(self) -> None:
        if self.dim % self.n_heads != 0:
            raise ValueError("dim must be divisible by n_heads")
        if self.vocab_size <= 0 or self.block_size <= 0:
            raise ValueError("vocab_size and block_size must be positive")

    @classmethod
    def paper(cls, vocab_size: int) -> "GPT2Config":
        """The exact configuration reported in §IV-B1 of the paper."""
        return cls(vocab_size=vocab_size, block_size=32, dim=256, n_layers=12, n_heads=8)


class TransformerBlock(Module):
    """Pre-LN block: ``x + attn(ln(x))`` then ``x + mlp(ln(x))``."""

    def __init__(self, config: GPT2Config, rng: np.random.Generator) -> None:
        super().__init__()
        # GPT-2 scales residual projections by 1/sqrt(2 * n_layers).
        proj_std = 0.02 / np.sqrt(2 * config.n_layers)
        self.ln1 = LayerNorm(config.dim)
        self.attn = CausalSelfAttention(
            config.dim,
            config.n_heads,
            rng,
            attn_dropout=config.dropout,
            resid_dropout=config.dropout,
            proj_std=proj_std,
        )
        self.ln2 = LayerNorm(config.dim)
        self.fc = Linear(config.dim, 4 * config.dim, rng)
        self.fc_proj = Linear(4 * config.dim, config.dim, rng, std=proj_std)
        self.mlp_drop = Dropout(config.dropout, rng)

    def forward(self, x: Tensor, pad_mask: np.ndarray | None = None) -> Tensor:
        x = x + self.attn(self.ln1(x), pad_mask=pad_mask)
        x = x + self.mlp_drop(self.fc_proj(F.gelu(self.fc(self.ln2(x)))))
        return x


class GPT2Model(Module):
    """Decoder-only GPT-2 language model over a token vocabulary."""

    def __init__(self, config: GPT2Config, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.token_emb = Embedding(config.vocab_size, config.dim, rng)
        self.pos_emb = Embedding(config.block_size, config.dim, rng, std=0.01)
        self.drop = Dropout(config.dropout, rng)
        self.blocks = [TransformerBlock(config, rng) for _ in range(config.n_layers)]
        self.ln_f = LayerNorm(config.dim)
        if config.tie_lm_head:
            self.lm_head = None  # logits computed against token_emb.weight.T
        else:
            self.lm_head = Linear(config.dim, config.vocab_size, rng, bias=False)

    def forward(self, ids: np.ndarray, pad_mask: np.ndarray | None = None) -> Tensor:
        """Compute next-token logits for every position.

        Parameters
        ----------
        ids:
            Integer token array ``(batch, seq)`` with ``seq <= block_size``.
        pad_mask:
            Optional boolean array ``(batch, seq)``, True at pad positions.

        Returns
        -------
        Tensor
            Logits of shape ``(batch, seq, vocab_size)``.
        """
        ids = np.asarray(ids)
        if ids.ndim != 2:
            raise ValueError(f"ids must be 2-D (batch, seq), got shape {ids.shape}")
        _, seq = ids.shape
        if seq > self.config.block_size:
            raise ValueError(f"sequence length {seq} exceeds block size {self.config.block_size}")
        positions = np.arange(seq)
        x = self.token_emb(ids) + self.pos_emb(positions)
        x = self.drop(x)
        for block in self.blocks:
            x = block(x, pad_mask=pad_mask)
        x = self.ln_f(x)
        if self.lm_head is not None:
            return self.lm_head(x)
        return x.matmul(self.token_emb.weight.transpose())

    def loss(self, ids: np.ndarray, pad_token_id: int) -> Tensor:
        """Causal LM loss: predict ``ids[:, 1:]`` from ``ids[:, :-1]``.

        Positions whose *target* is ``pad_token_id`` are excluded from the
        loss, matching the paper's training on padded rule strings.
        """
        ids = np.asarray(ids)
        inputs, targets = ids[:, :-1], ids[:, 1:]
        pad_mask = inputs == pad_token_id
        logits = self.forward(inputs, pad_mask=pad_mask)
        return F.cross_entropy(logits, targets, ignore_index=pad_token_id)
