"""Neural-network library on top of :mod:`repro.autograd`."""

from .module import Module, Parameter
from .layers import Linear, Embedding, LayerNorm, Dropout, Sequential, MLP
from .attention import CausalSelfAttention, causal_mask
from .transformer import GPT2Config, GPT2Model, TransformerBlock
from .inference import GPT2Inference, InferenceCounters, KVCache, PromptCache
from .optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from .schedules import LRSchedule, WarmupCosine, WarmupLinear
from .serialization import CheckpointError, read_checkpoint_meta, save_checkpoint, load_checkpoint

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MLP",
    "CausalSelfAttention",
    "causal_mask",
    "GPT2Config",
    "GPT2Model",
    "TransformerBlock",
    "GPT2Inference",
    "InferenceCounters",
    "KVCache",
    "PromptCache",
    "SGD",
    "Adam",
    "AdamW",
    "Optimizer",
    "clip_grad_norm",
    "LRSchedule",
    "WarmupCosine",
    "WarmupLinear",
    "CheckpointError",
    "read_checkpoint_meta",
    "save_checkpoint",
    "load_checkpoint",
]
