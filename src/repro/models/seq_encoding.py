"""Fixed-length sequence encodings shared by the GAN/VAE/flow baselines.

PassGAN, VAEPass and PassFlow all operate on fixed-length representations:
each password is padded to :data:`SEQ_LEN` positions over an alphabet of
the 94 visible-ASCII characters plus one terminator/padding symbol.
"""

from __future__ import annotations

import numpy as np

from ..tokenizer.charset import VISIBLE_ASCII
from ..tokenizer.patterns import MAX_PASSWORD_LENGTH

#: Fixed sequence length (max cleaned password length, §IV-A1).
SEQ_LEN = MAX_PASSWORD_LENGTH
#: Alphabet: 94 visible-ASCII chars + terminator/pad at index 94.
ALPHABET = VISIBLE_ASCII + "\x00"
PAD_INDEX = len(ALPHABET) - 1
VOCAB_SIZE = len(ALPHABET)

_CHAR_INDEX = {c: i for i, c in enumerate(ALPHABET)}


def encode_indices(passwords: list[str]) -> np.ndarray:
    """Passwords -> ``(n, SEQ_LEN)`` int index matrix, padded with PAD."""
    out = np.full((len(passwords), SEQ_LEN), PAD_INDEX, dtype=np.int64)
    for row, pw in enumerate(passwords):
        if len(pw) > SEQ_LEN:
            raise ValueError(f"password longer than {SEQ_LEN}: {pw!r}")
        for col, ch in enumerate(pw):
            try:
                out[row, col] = _CHAR_INDEX[ch]
            except KeyError:
                raise ValueError(f"character {ch!r} outside the model alphabet") from None
    return out


def encode_onehot(passwords: list[str]) -> np.ndarray:
    """Passwords -> flattened one-hot ``(n, SEQ_LEN * VOCAB_SIZE)`` floats."""
    idx = encode_indices(passwords)
    onehot = np.zeros((len(passwords), SEQ_LEN, VOCAB_SIZE), dtype=np.float32)
    rows = np.arange(len(passwords))[:, None]
    cols = np.arange(SEQ_LEN)[None, :]
    onehot[rows, cols, idx] = 1.0
    return onehot.reshape(len(passwords), SEQ_LEN * VOCAB_SIZE)


def decode_indices(indices: np.ndarray) -> list[str]:
    """Index matrix -> passwords (stops each row at the first PAD)."""
    out: list[str] = []
    for row in np.asarray(indices):
        chars: list[str] = []
        for idx in row:
            if int(idx) == PAD_INDEX:
                break
            chars.append(ALPHABET[int(idx)])
        out.append("".join(chars))
    return out
