"""PassGAN baseline (Hitaj et al. 2019) — adversarial password generation.

The original uses IWGAN with gradient penalty; gradient penalty needs
second-order autodiff, so this reproduction uses the original WGAN
formulation (Arjovsky et al.) with critic weight clipping — same model
family, same sampling behaviour (independent draws from a latent prior),
which is what the paper's comparison exercises (DESIGN.md §1).

The generator emits per-position softmax "soft one-hot" rows; real samples
are hard one-hot.  Generation decodes the argmax character per position,
so diversity comes entirely from the latent draw — the family trait behind
PassGAN's 66% repeat rate at 10^9 guesses (§I-A2).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..autograd import functional as F
from ..datasets.corpus import PasswordCorpus
from ..nn import MLP, Adam
from ..training.dataloader import BatchLoader
from .base import PasswordGuesser
from .seq_encoding import SEQ_LEN, VOCAB_SIZE, decode_indices, encode_onehot

_FLAT = SEQ_LEN * VOCAB_SIZE


class PassGAN(PasswordGuesser):
    """Weight-clipped WGAN over fixed-length one-hot password tensors."""

    name = "PassGAN"

    def __init__(
        self,
        latent_dim: int = 64,
        hidden: int = 256,
        clip: float = 0.01,
        n_critic: int = 3,
        epochs: int = 5,
        batch_size: int = 128,
        lr: float = 1e-4,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.latent_dim = latent_dim
        self.clip = clip
        self.n_critic = n_critic
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.generator = MLP(
            [latent_dim, hidden, hidden, _FLAT], rng, activation=Tensor.relu
        )
        self.critic = MLP(
            [_FLAT, hidden, hidden, 1],
            rng,
            activation=lambda t: t.leaky_relu(0.2),
        )
        self._fitted = False
        self.critic_losses: list[float] = []

    # ------------------------------------------------------------------
    def _generate_soft(self, z: np.ndarray) -> Tensor:
        """Latent batch -> per-position softmax rows, flattened."""
        logits = self.generator(Tensor(z.astype(np.float32)))
        probs = F.softmax(logits.reshape(len(z), SEQ_LEN, VOCAB_SIZE), axis=-1)
        return probs.reshape(len(z), _FLAT)

    def fit(self, corpus: PasswordCorpus, log_fn=None, **kwargs) -> "PassGAN":
        rng = np.random.default_rng(self.seed)
        real = encode_onehot(corpus.passwords)
        gen_opt = Adam(self.generator.parameters(), lr=self.lr, betas=(0.5, 0.9))
        critic_opt = Adam(self.critic.parameters(), lr=self.lr, betas=(0.5, 0.9))
        loader = BatchLoader(real, self.batch_size, seed=self.seed)
        for epoch in range(self.epochs):
            epoch_critic = 0.0
            batches = 0
            for step, batch in enumerate(loader):
                batch_t = Tensor(batch)
                # Critic steps: maximise D(real) - D(fake)  (minimise neg).
                z = rng.normal(size=(len(batch), self.latent_dim))
                with no_grad():
                    fake_const = self._generate_soft(z).data
                critic_opt.zero_grad()
                loss_c = (
                    self.critic(Tensor(fake_const)).mean()
                    - self.critic(batch_t).mean()
                )
                loss_c.backward()
                critic_opt.step()
                for p in self.critic.parameters():
                    np.clip(p.data, -self.clip, self.clip, out=p.data)
                epoch_critic += loss_c.item()
                batches += 1
                # Generator step every n_critic critic steps.
                if step % self.n_critic == 0:
                    gen_opt.zero_grad()
                    z = rng.normal(size=(len(batch), self.latent_dim))
                    loss_g = -self.critic(self._generate_soft(z)).mean()
                    loss_g.backward()
                    gen_opt.step()
            self.critic_losses.append(epoch_critic / max(1, batches))
            if log_fn is not None:
                log_fn(f"PassGAN epoch {epoch}: critic {self.critic_losses[-1]:.4f}")
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def generate(self, n: int, seed: int = 0) -> list[str]:
        """Draw ``n`` latents and decode argmax characters per position."""
        self._require_fitted(self._fitted)
        rng = np.random.default_rng(seed)
        out: list[str] = []
        for start in range(0, n, 1024):
            batch = min(1024, n - start)
            z = rng.normal(size=(batch, self.latent_dim))
            with no_grad():
                probs = self._generate_soft(z).data.reshape(batch, SEQ_LEN, VOCAB_SIZE)
            out.extend(decode_indices(probs.argmax(axis=-1)))
        return out
