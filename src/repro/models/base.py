"""Common interfaces of the password-guessing model zoo.

Every model implements :class:`PasswordGuesser` (fit on a corpus, generate
``n`` raw guesses).  Models capable of pattern guided guessing — PassGPT
and PagPassGPT — additionally implement :class:`PatternGuidedGuesser`.

Generated guess lists are *raw*: they may contain duplicates.  Evaluation
code deduplicates per the paper's metrics; the repeat rate (§IV-D2) is a
property of the raw stream.
"""

from __future__ import annotations

import abc
from ..datasets.corpus import PasswordCorpus
from ..tokenizer.patterns import Pattern


class PasswordGuesser(abc.ABC):
    """A trainable model that emits password guesses."""

    #: Human-readable model name used in reports (e.g. "PassGPT").
    name: str = "guesser"

    #: True when the content of a guess stream depends on the requested
    #: total ``n`` (D&C-GEN takes N as an input to its budget division),
    #: in which case per-budget evaluation must re-run generation instead
    #: of slicing prefixes of one long stream.
    budget_sensitive: bool = False

    @abc.abstractmethod
    def fit(self, corpus: PasswordCorpus, **kwargs) -> "PasswordGuesser":
        """Train on a corpus of unique cleaned passwords; returns self."""

    @abc.abstractmethod
    def generate(self, n: int, seed: int = 0) -> list[str]:
        """Emit ``n`` raw guesses (duplicates allowed, order = emission)."""

    def _require_fitted(self, fitted: bool) -> None:
        if not fitted:
            raise RuntimeError(f"{self.name} must be fitted before generating")


class PatternGuidedGuesser(PasswordGuesser):
    """A guesser that can generate passwords conforming to a given pattern."""

    @abc.abstractmethod
    def generate_with_pattern(self, pattern: Pattern, n: int, seed: int = 0) -> list[str]:
        """Emit ``n`` raw guesses conforming to ``pattern``."""
