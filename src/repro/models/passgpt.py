"""PassGPT baseline (Rando et al. 2023) — GPT-2 over bare passwords.

Training uses ``<BOS> password <EOS>`` with no pattern information.
Pattern guided guessing is done the way the paper describes PassGPT doing
it (§I-A1): at each position, candidate tokens are *filtered* to the class
the pattern prescribes and the remaining mass renormalised.  Because the
model never sees the pattern, it cannot plan ahead — producing the word
truncation artifact of Table III ("polic#10").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.corpus import PasswordCorpus
from ..generation.sampler import GEN_BATCH, SamplerConfig, sample_constrained
from ..nn import GPT2Config, GPT2Inference, GPT2Model, PromptCache
from ..tokenizer.patterns import Pattern
from ..tokenizer.tokenizer import PasswordOnlyTokenizer
from ..training import TrainConfig, TrainHistory, Trainer
from .base import PatternGuidedGuesser


class PassGPT(PatternGuidedGuesser):
    """The state-of-the-art baseline the paper compares against."""

    name = "PassGPT"

    def __init__(
        self,
        model_config: Optional[GPT2Config] = None,
        train_config: Optional[TrainConfig] = None,
        sampler: SamplerConfig = SamplerConfig(),
        seed: int = 0,
    ) -> None:
        self.tokenizer = PasswordOnlyTokenizer()
        self.model_config = model_config or GPT2Config(
            vocab_size=len(self.tokenizer.vocab),
            block_size=self.tokenizer.block_size,
            dim=96,
            n_layers=3,
            n_heads=4,
            dropout=0.1,
        )
        self.train_config = train_config or TrainConfig()
        self.sampler = sampler
        self.model = GPT2Model(self.model_config, seed=seed)
        self.history: Optional[TrainHistory] = None
        self._inference: Optional[GPT2Inference] = None
        self._prompt_cache: Optional[PromptCache] = None
        self._fitted = False

    def fit(
        self,
        corpus: PasswordCorpus,
        val_passwords: Optional[list[str]] = None,
        log_fn=None,
        checkpoint_path=None,
        resume_from=None,
        budget=None,
    ) -> "PassGPT":
        train_ids = self.tokenizer.encode_corpus(corpus.passwords)
        val_ids = (
            self.tokenizer.encode_corpus(val_passwords) if val_passwords else None
        )
        trainer = Trainer(
            self.model, pad_id=self.tokenizer.vocab.pad_id,
            config=self.train_config, log_fn=log_fn,
        )
        self.history = trainer.fit(
            train_ids, val_ids,
            checkpoint_path=checkpoint_path, resume_from=resume_from,
            budget=budget,
        )
        self._fitted = True
        self._inference = None
        self._prompt_cache = None
        return self

    @property
    def inference(self) -> GPT2Inference:
        if self._inference is None:
            self.model.eval()
            self._inference = GPT2Inference(self.model)
        return self._inference

    @property
    def prompt_cache(self) -> PromptCache:
        """Memoised prompt KV states (every batch starts from ``<BOS>``)."""
        if self._prompt_cache is None:
            self._prompt_cache = PromptCache(self.inference)
        return self._prompt_cache


    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write weights + config to an npz checkpoint."""
        from dataclasses import asdict

        from ..nn import save_checkpoint

        save_checkpoint(
            self.model,
            path,
            meta={
                "kind": self.name,
                "config": asdict(self.model_config),
                },
        )

    @classmethod
    def load(cls, path) -> "PassGPT":
        """Rebuild a fitted model from :meth:`save` output.

        Raises :class:`repro.nn.CheckpointError` on a missing, truncated,
        or otherwise unreadable checkpoint file.
        """
        from ..nn import load_checkpoint, read_checkpoint_meta

        meta = read_checkpoint_meta(path)
        if meta.get("kind") != cls.name:
            raise ValueError(f"checkpoint is a {meta.get('kind')!r} model, not {cls.name}")
        model = cls(model_config=GPT2Config(**meta["config"]))
        load_checkpoint(model.model, path)
        model._fitted = True
        model.model.eval()
        return model

    # ------------------------------------------------------------------
    def generate(
        self,
        n: int,
        seed: int = 0,
        strategy: str = "sampled",
        ordered_config=None,
    ) -> list[str]:
        """Unconditional sampling from ``<BOS>`` until ``<EOS>``.

        Sampling is restricted to character tokens plus ``<EOS>``: the
        shared vocabulary also contains pattern tokens this model never
        trains on, whose random-init logits would otherwise pollute the
        decode (a no-op for a converged model).

        ``strategy="ordered"`` switches to the deterministic best-first
        enumerator (:class:`~repro.generation.OrderedGenerator` in
        unconditional mode): the ``n`` most probable passwords, most
        probable first, with ``seed`` ignored.
        """
        self._require_fitted(self._fitted)
        if strategy not in ("sampled", "ordered"):
            raise ValueError(f"unknown strategy {strategy!r}; use 'sampled' or 'ordered'")
        if n <= 0:
            return []
        if strategy == "ordered":
            from ..generation.ordered import OrderedConfig, OrderedGenerator

            gen = OrderedGenerator.unconditional(
                self, config=ordered_config or OrderedConfig()
            )
            return gen.generate(n)
        rng = np.random.default_rng(seed)
        vocab = self.tokenizer.vocab
        allowed = np.concatenate(
            [np.array([vocab.eos_id], dtype=np.int64), np.array(vocab.char_ids, dtype=np.int64)]
        )
        out: list[str] = []
        max_steps = self.model_config.block_size - 1
        bos = np.array([vocab.bos_id], dtype=np.int64)
        for start in range(0, n, GEN_BATCH):
            batch = min(GEN_BATCH, n - start)
            logits, cache = self.prompt_cache.expand(bos, batch)
            sequences = np.full((batch, max_steps), vocab.pad_id, dtype=np.int64)
            alive = np.ones(batch, dtype=bool)
            for step in range(max_steps):
                chosen = sample_constrained(logits, allowed, rng, self.sampler)
                chosen = np.where(alive, chosen, vocab.eos_id)
                sequences[:, step] = chosen
                alive &= chosen != vocab.eos_id
                if not alive.any() or step + 1 == max_steps:
                    break
                logits = self.inference.step(chosen, cache)
            out.extend(self.tokenizer.decode(row) for row in sequences)
        return out

    def generate_with_pattern(self, pattern: Pattern, n: int, seed: int = 0) -> list[str]:
        """Guided generation by per-step token filtering (the PassGPT way)."""
        self._require_fitted(self._fitted)
        if n <= 0:
            return []
        rng = np.random.default_rng(seed)
        vocab = self.tokenizer.vocab
        classes = pattern.char_classes()
        out: list[str] = []
        bos = np.array([vocab.bos_id], dtype=np.int64)
        token_strs = vocab.token_array
        for start in range(0, n, GEN_BATCH):
            batch = min(GEN_BATCH, n - start)
            logits, cache = self.prompt_cache.expand(bos, batch)
            chosen_cols = np.empty((batch, len(classes)), dtype=np.int64)
            for position, cls in enumerate(classes):
                allowed = self.tokenizer.class_char_ids[cls]
                chosen = sample_constrained(logits, allowed, rng, self.sampler)
                chosen_cols[:, position] = chosen
                if position + 1 < len(classes):
                    logits = self.inference.step(chosen, cache)
            out.extend("".join(row) for row in token_strs[chosen_cols].tolist())
        return out
