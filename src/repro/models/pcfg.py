"""Weir-style PCFG password guesser (§II-C, Weir et al. 2009).

Training counts pattern probabilities and per-segment string probabilities
(eq. 2).  Generation enumerates complete passwords in *descending joint
probability* order using the classic "next function" priority queue, which
makes the PCFG baseline deterministic and duplicate-free — its weakness,
per the paper, is that it can only ever emit segment strings seen in
training.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter, defaultdict
from typing import Iterator

from ..datasets.corpus import PasswordCorpus
from ..tokenizer.patterns import Pattern, extract_pattern
from .base import PatternGuidedGuesser


class PCFGModel(PatternGuidedGuesser):
    """Probabilistic context-free grammar over (pattern, segment) tables."""

    name = "PCFG"

    def __init__(self) -> None:
        self._fitted = False
        #: pattern string -> probability
        self.pattern_probs: dict[str, float] = {}
        #: segment token (e.g. "L4") -> [(segment string, probability)] desc.
        self.segment_tables: dict[str, list[tuple[str, float]]] = {}

    # ------------------------------------------------------------------
    def fit(self, corpus: PasswordCorpus, **kwargs) -> "PCFGModel":
        pattern_counts: Counter[str] = Counter()
        segment_counts: dict[str, Counter[str]] = defaultdict(Counter)
        for password in corpus:
            pattern = extract_pattern(password)
            pattern_counts[pattern.string] += 1
            cursor = 0
            for seg in pattern:
                segment_counts[seg.token][password[cursor : cursor + seg.length]] += 1
                cursor += seg.length
        total = sum(pattern_counts.values())
        self.pattern_probs = {p: c / total for p, c in pattern_counts.items()}
        self.segment_tables = {}
        for token, counts in segment_counts.items():
            seg_total = sum(counts.values())
            table = sorted(
                ((s, c / seg_total) for s, c in counts.items()),
                key=lambda item: (-item[1], item[0]),
            )
            self.segment_tables[token] = table
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Descending-probability enumeration (Weir's next function)
    # ------------------------------------------------------------------
    def iter_guesses(self) -> Iterator[tuple[str, float]]:
        """Yield ``(password, probability)`` in descending probability.

        A max-heap of partial states: each state is a pattern plus one
        index per segment into that segment's descending table.  Popping a
        state emits its password and pushes the at-most-``k`` successor
        states that bump a single segment index.
        """
        self._require_fitted(self._fitted)
        counter = itertools.count()  # tie-breaker for deterministic order
        heap: list[tuple[float, int, str, tuple[int, ...]]] = []
        seen: set[tuple[str, tuple[int, ...]]] = set()

        def push(pattern_str: str, indices: tuple[int, ...]) -> None:
            if (pattern_str, indices) in seen:
                return
            seen.add((pattern_str, indices))
            prob = self.pattern_probs[pattern_str]
            tables = self._tables_for(pattern_str)
            for table, idx in zip(tables, indices):
                if idx >= len(table):
                    return
                prob *= table[idx][1]
            heapq.heappush(heap, (-prob, next(counter), pattern_str, indices))

        for pattern_str in self.pattern_probs:
            tables = self._tables_for(pattern_str)
            if all(tables):
                push(pattern_str, (0,) * len(tables))

        while heap:
            neg_prob, _, pattern_str, indices = heapq.heappop(heap)
            tables = self._tables_for(pattern_str)
            yield "".join(t[i][0] for t, i in zip(tables, indices)), -neg_prob
            for seg_pos in range(len(indices)):
                bumped = list(indices)
                bumped[seg_pos] += 1
                if bumped[seg_pos] < len(tables[seg_pos]):
                    push(pattern_str, tuple(bumped))

    def _tables_for(self, pattern_str: str) -> list[list[tuple[str, float]]]:
        pattern = Pattern.parse(pattern_str)
        return [self.segment_tables.get(seg.token, []) for seg in pattern]

    # ------------------------------------------------------------------
    def generate(self, n: int, seed: int = 0) -> list[str]:
        """First ``n`` guesses of the descending-probability enumeration.

        ``seed`` is accepted for interface parity but unused — PCFG
        enumeration is deterministic.
        """
        return [pw for pw, _ in itertools.islice(self.iter_guesses(), n)]

    def generate_with_pattern(self, pattern: Pattern, n: int, seed: int = 0) -> list[str]:
        """Descending-probability passwords conforming to one pattern."""
        self._require_fitted(self._fitted)
        tables = self._tables_for(pattern.string)
        if not all(tables):
            return []
        counter = itertools.count()
        heap: list[tuple[float, int, tuple[int, ...]]] = []
        seen: set[tuple[int, ...]] = set()

        def push(indices: tuple[int, ...]) -> None:
            if indices in seen:
                return
            seen.add(indices)
            prob = 1.0
            for table, idx in zip(tables, indices):
                if idx >= len(table):
                    return
                prob *= table[idx][1]
            heapq.heappush(heap, (-prob, next(counter), indices))

        push((0,) * len(tables))
        out: list[str] = []
        while heap and len(out) < n:
            _, _, indices = heapq.heappop(heap)
            out.append("".join(t[i][0] for t, i in zip(tables, indices)))
            for seg_pos in range(len(indices)):
                bumped = list(indices)
                bumped[seg_pos] += 1
                if bumped[seg_pos] < len(tables[seg_pos]):
                    push(tuple(bumped))
        return out
