"""PagPassGPT — pattern guided password guessing via GPT-2 (§III-B).

Training: each password is preprocessed into the rule
``<BOS> pattern <SEP> password <EOS>`` so the model learns
``Pr(t_1..t_n | P)`` auto-regressively (eq. 1).

Generation:

* *pattern guided* — the prompt ``<BOS> pattern <SEP>`` conditions the
  whole password on the pattern; per-position constraint masks guarantee
  conformity (the same filter D&C-GEN applies in Fig. 7);
* *free* (trawling "approach 1", §IV-D) — the model is fed only ``<BOS>``
  and generates the pattern and password itself.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from .. import telemetry
from ..datasets.corpus import PasswordCorpus
from ..generation.sampler import GEN_BATCH, SamplerConfig, sample_constrained, sample_masked
from ..nn import GPT2Config, GPT2Inference, GPT2Model, PromptCache
from ..runtime import Budget, RunJournal, maybe_fail
from ..tokenizer.patterns import Pattern
from ..tokenizer.tokenizer import PasswordTokenizer
from ..training import TrainConfig, TrainHistory, Trainer
from .base import PatternGuidedGuesser

class PagPassGPT(PatternGuidedGuesser):
    """The paper's model: GPT-2 conditioned on PCFG patterns."""

    name = "PagPassGPT"

    def __init__(
        self,
        model_config: Optional[GPT2Config] = None,
        train_config: Optional[TrainConfig] = None,
        sampler: SamplerConfig = SamplerConfig(),
        seed: int = 0,
        tokenizer: Optional[PasswordTokenizer] = None,
    ) -> None:
        self.tokenizer = tokenizer or PasswordTokenizer()
        self.model_config = model_config or GPT2Config(
            vocab_size=len(self.tokenizer.vocab),
            block_size=self.tokenizer.block_size,
            dim=96,
            n_layers=3,
            n_heads=4,
            dropout=0.1,
        )
        if self.model_config.vocab_size != len(self.tokenizer.vocab):
            raise ValueError("model vocab_size must match the tokenizer vocabulary")
        self.train_config = train_config or TrainConfig()
        self.sampler = sampler
        self.model = GPT2Model(self.model_config, seed=seed)
        self.history: Optional[TrainHistory] = None
        self._inference: Optional[GPT2Inference] = None
        self._prompt_cache: Optional[PromptCache] = None
        self._fitted = False
        #: Pattern distribution of the training corpus (D&C-GEN's S_p).
        self.pattern_probs: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        corpus: PasswordCorpus,
        val_passwords: Optional[list[str]] = None,
        log_fn=None,
        checkpoint_path=None,
        resume_from=None,
        budget: Optional[Budget] = None,
    ) -> "PagPassGPT":
        """Train on rules built from ``corpus``; records its S_p for D&C-GEN.

        ``checkpoint_path`` enables per-epoch crash-safe training state;
        ``resume_from`` continues an interrupted run from such a state
        file, and ``budget`` converts deadlines/signals into a graceful
        epoch-boundary stop (see :meth:`repro.training.Trainer.fit`).
        """
        train_ids = self.tokenizer.encode_corpus(corpus.passwords)
        val_ids = (
            self.tokenizer.encode_corpus(val_passwords) if val_passwords else None
        )
        trainer = Trainer(
            self.model, pad_id=self.tokenizer.vocab.pad_id,
            config=self.train_config, log_fn=log_fn,
        )
        self.history = trainer.fit(
            train_ids, val_ids,
            checkpoint_path=checkpoint_path, resume_from=resume_from,
            budget=budget,
        )
        self.pattern_probs = dict(corpus.pattern_probs)
        self._fitted = True
        self._inference = None
        self._prompt_cache = None
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._fitted

    @property
    def inference(self) -> GPT2Inference:
        """Numpy inference engine over the current weights (lazily built)."""
        if self._inference is None:
            self.model.eval()
            self._inference = GPT2Inference(self.model)
        return self._inference

    @property
    def prompt_cache(self) -> PromptCache:
        """Memoised prompt KV states shared by every generation path.

        ``<BOS> pattern <SEP>`` prompts (and the bare ``<BOS>`` of free
        generation) are primed once and fanned out per batch; under the
        ``fork`` start method worker processes inherit warm entries
        copy-on-write.
        """
        if self._prompt_cache is None:
            self._prompt_cache = PromptCache(self.inference)
        return self._prompt_cache

    def invalidate_inference(self) -> None:
        """Drop the cached inference snapshot (call after further training)."""
        self._inference = None
        self._prompt_cache = None


    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write weights + config + S_p to an npz checkpoint."""
        from dataclasses import asdict

        from ..nn import save_checkpoint

        save_checkpoint(
            self.model,
            path,
            meta={
                "kind": self.name,
                "config": asdict(self.model_config),
                "pattern_probs": self.pattern_probs,
            },
        )

    @classmethod
    def load(cls, path) -> "PagPassGPT":
        """Rebuild a fitted model from :meth:`save` output.

        Raises :class:`~repro.nn.CheckpointError` for truncated/corrupt
        files and ``ValueError`` when the checkpoint holds another model
        kind.
        """
        from ..nn import load_checkpoint, read_checkpoint_meta

        # Peek at the metadata first to build the right architecture.
        meta = read_checkpoint_meta(path)
        if meta.get("kind") != cls.name:
            raise ValueError(f"checkpoint is a {meta.get('kind')!r} model, not {cls.name}")
        model = cls(model_config=GPT2Config(**meta["config"]))
        load_checkpoint(model.model, path)
        model.pattern_probs = meta["pattern_probs"]
        model._fitted = True
        model.model.eval()
        return model

    # ------------------------------------------------------------------
    # Pattern guided generation
    # ------------------------------------------------------------------
    def generate_with_pattern(self, pattern: Pattern, n: int, seed: int = 0) -> list[str]:
        """Generate ``n`` passwords conforming to ``pattern`` (Fig. 3 right)."""
        self._require_fitted(self._fitted)
        if n <= 0:
            return []
        rng = np.random.default_rng(seed)
        out: list[str] = []
        prompt = np.asarray(self.tokenizer.encode_prompt(pattern), dtype=np.int64)
        for start in range(0, n, GEN_BATCH):
            batch = min(GEN_BATCH, n - start)
            out.extend(self._complete_prefix(pattern, prompt, batch, rng))
        return out

    def _complete_prefix(
        self,
        pattern: Pattern,
        prefix_ids: np.ndarray,
        batch: int,
        rng: np.random.Generator,
    ) -> list[str]:
        """Sample ``batch`` completions of a rule prefix under the pattern.

        ``prefix_ids`` must start with ``<BOS> pattern <SEP>`` and may
        already contain password characters (D&C-GEN leaf prefixes).
        """
        prompt_len = pattern.num_segments + 2  # <BOS> pattern <SEP>
        done_chars = len(prefix_ids) - prompt_len
        # All rows share the prefix: prime it once, fan out the KV state.
        logits, cache = self.prompt_cache.expand(prefix_ids, batch)
        token_strs = self.tokenizer.vocab.token_array
        n_positions = pattern.length - done_chars
        chosen_cols = np.empty((batch, n_positions), dtype=np.int64)
        for j, position in enumerate(range(done_chars, pattern.length)):
            allowed = self.tokenizer.allowed_ids_at(pattern, position)
            chosen = sample_constrained(logits, allowed, rng, self.sampler)
            chosen_cols[:, j] = chosen
            if position + 1 < pattern.length:
                logits = self.inference.step(chosen, cache)
        prefix_chars = np.tile(prefix_ids[prompt_len:], (batch, 1))
        all_chars = np.concatenate([prefix_chars, chosen_cols], axis=1)
        return ["".join(row) for row in token_strs[all_chars].tolist()]

    # ------------------------------------------------------------------
    # Free (trawling) generation
    # ------------------------------------------------------------------
    def generate(
        self,
        n: int,
        seed: int = 0,
        workers: int = 1,
        journal: Optional[Union[str, Path, RunJournal]] = None,
        resume: bool = False,
        progress: Optional[Callable[[int, int], None]] = None,
        strategy: str = "sampled",
        ordered_config=None,
        budget: Optional[Budget] = None,
    ) -> list[str]:
        """Trawling approach 1: feed only ``<BOS>``, model writes the rest.

        ``strategy`` selects the decode backend: ``"sampled"`` (default)
        draws stochastically as described below; ``"ordered"`` runs the
        best-first enumerator (:class:`~repro.generation.OrderedGenerator`
        over the fitted S_p mixture) and returns the ``n`` most probable
        passwords in non-increasing probability order — deterministic, so
        ``seed``/``workers`` are ignored.  ``ordered_config`` optionally
        passes an :class:`~repro.generation.OrderedConfig`.

        Decoding is *grammar-constrained* to the training rule format
        ``pattern <SEP> password <EOS>``: during the pattern phase only
        valid continuations of a PCFG pattern are allowed (alternating
        classes, total length <= 12), and during the password phase only
        characters of the class the self-generated pattern prescribes.
        For a converged model the mask is a no-op (training data always
        conforms); for the scaled-down models it removes decode artifacts
        from never-trained tokens such as ``<UNK>``/``<PAD>``.

        Each ``GEN_BATCH`` chunk draws its randomness from
        ``(seed, chunk_index)``, so the stream is identical for any
        ``workers`` count; ``workers > 1`` shards chunks across a
        supervised process pool (:mod:`repro.generation.parallel`) where
        a failed or hung chunk is retried without discarding completed
        ones.  ``journal`` (path or open :class:`RunJournal`) makes the
        run resumable: with ``resume=True`` journaled chunks are reused
        and the merged stream is byte-identical to an uninterrupted run.

        ``progress(done_rows, total_rows)`` fires after every completed
        chunk; with an active telemetry session the run emits
        ``campaign_plan`` / ``campaign_resume`` events and a
        ``campaign`` span, mirroring D&C-GEN campaigns.

        ``budget`` (a :class:`~repro.runtime.Budget`) is polled after
        every durable chunk/round boundary, converting deadlines, guess
        quotas, and graceful-shutdown signals into a
        :class:`~repro.runtime.CampaignInterrupted` whose completed work
        is already journaled.
        """
        self._require_fitted(self._fitted)
        if strategy not in ("sampled", "ordered"):
            raise ValueError(f"unknown strategy {strategy!r}; use 'sampled' or 'ordered'")
        if n <= 0:
            return []
        if strategy == "ordered":
            from ..generation.ordered import OrderedConfig, OrderedGenerator

            gen = OrderedGenerator.for_patterns(
                self, config=ordered_config or OrderedConfig()
            )
            return gen.generate(
                n, journal=journal, resume=resume, progress=progress, budget=budget
            )
        from ..generation.parallel import execute_free_chunks_parallel, free_chunks

        with telemetry.trace("campaign", kind="free", requested=int(n)):
            chunks = free_chunks(n)
            telemetry.emit(
                "campaign_plan",
                kind="free",
                requested=int(n),
                rows=int(n),
                n_tasks=len(chunks),
                gen_batch=int(GEN_BATCH),
                workers=int(workers),
                backend=self.inference.backend_name,
            )
            # Warm the <BOS> prompt before any dispatch so forked workers
            # inherit the primed entry copy-on-write instead of re-priming.
            self.prompt_cache.lookup(np.array([self.tokenizer.vocab.bos_id], dtype=np.int64))
            owns_journal = False
            if journal is not None and not isinstance(journal, RunJournal):
                header = {"kind": "free", "seed": int(seed), "n": int(n),
                          "gen_batch": int(GEN_BATCH), "n_chunks": len(chunks)}
                telemetry.pin_trace(header)
                journal = RunJournal.attach(journal, header, resume=resume)
                owns_journal = True
                telemetry.rejoin_trace(journal.header.get(RunJournal.TRACE_HEADER_KEY))
            try:
                return self._generate_free(
                    chunks, seed, workers, journal, progress, budget
                )
            finally:
                if owns_journal:
                    journal.close()

    def _generate_free(
        self,
        chunks: list[tuple[int, int]],
        seed: int,
        workers: int,
        journal: Optional[RunJournal],
        progress: Optional[Callable[[int, int], None]],
        budget: Optional[Budget] = None,
    ) -> list[str]:
        from ..generation.parallel import execute_free_chunks_parallel

        results: dict[int, list[str]] = {}
        if journal is not None:
            for index, payload in journal.completed("free_chunk").items():
                if 0 <= index < len(chunks):
                    results[index] = list(payload["guesses"])
        pending = [c for c in chunks if c[0] not in results]
        total_rows = sum(rows for _, rows in chunks)
        done_rows = sum(len(v) for v in results.values())
        if results:
            telemetry.emit(
                "campaign_resume", tasks=len(results), guesses=done_rows, model_calls=0
            )
        if progress is not None:
            progress(done_rows, total_rows)

        def current_progress() -> dict:
            return {
                "guesses": done_rows,
                "model_calls": 0,
                "tasks": len(results),
                "n_tasks": len(chunks),
            }

        def on_result(position: int, value: list[str]) -> None:
            nonlocal done_rows
            chunk_index = pending[position][0]
            maybe_fail("free_chunk")
            if journal is not None:
                journal.record("free_chunk", chunk_index, {"guesses": list(value)})
            results[chunk_index] = value
            done_rows += len(value)
            if progress is not None:
                progress(done_rows, total_rows)
            if budget is not None:
                budget.poll(**current_progress())

        if budget is not None:
            budget.poll(**current_progress())
        if workers > 1 and len(pending) > 1:
            try:
                execute_free_chunks_parallel(
                    self, pending, seed, workers, on_result=on_result,
                    stop=None if budget is None else budget.stopper(current_progress),
                )
            except Exception as exc:
                warnings.warn(
                    f"parallel free generation failed ({exc!r}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                for position, (index, batch) in enumerate(pending):
                    if index in results:
                        continue  # journaled before the failure
                    on_result(
                        position,
                        self._generate_free_batch(
                            batch, np.random.default_rng((seed, index))
                        ),
                    )
        else:
            for position, (index, batch) in enumerate(pending):
                on_result(
                    position,
                    self._generate_free_batch(
                        batch, np.random.default_rng((seed, index))
                    ),
                )
        return [pw for index, _ in chunks for pw in results[index]]

    def _generate_free_batch(self, batch: int, rng: np.random.Generator) -> list[str]:
        with telemetry.trace("free.chunk", level="debug", rows=int(batch)) as span:
            guesses = self._free_batch_body(batch, rng)
            span.set(guesses=len(guesses), model_calls=0)
            return guesses

    def _free_batch_body(self, batch: int, rng: np.random.Generator) -> list[str]:
        tokenizer = self.tokenizer
        vocab = tokenizer.vocab
        max_len = tokenizer.max_password_length
        # Every row starts from the same bare <BOS>: prime once, fan out.
        logits, cache = self.prompt_cache.expand(
            np.array([vocab.bos_id], dtype=np.int64), batch
        )

        # Per-row decode state.
        in_pattern = np.ones(batch, dtype=bool)
        done = np.zeros(batch, dtype=bool)
        used_len = np.zeros(batch, dtype=np.int64)  # pattern length so far
        last_class = [""] * batch
        char_classes: list[list[str]] = [[] for _ in range(batch)]
        position = np.zeros(batch, dtype=np.int64)  # password cursor
        passwords: list[list[str]] = [[] for _ in range(batch)]

        vocab_size = len(vocab)
        max_steps = self.model_config.block_size - 1
        for _ in range(max_steps):
            mask = np.zeros((batch, vocab_size), dtype=bool)
            for row in range(batch):
                if done[row]:
                    mask[row, vocab.eos_id] = True
                elif in_pattern[row]:
                    remaining = max_len - used_len[row]
                    for cls, by_len in tokenizer.pattern_token_id.items():
                        if cls == last_class[row]:
                            continue
                        for length in range(1, remaining + 1):
                            mask[row, by_len[length]] = True
                    if used_len[row] > 0:
                        mask[row, vocab.sep_id] = True
                else:
                    pos = position[row]
                    classes = char_classes[row]
                    if pos < len(classes):
                        mask[row, tokenizer.class_char_ids[classes[pos]]] = True
                    else:
                        mask[row, vocab.eos_id] = True
            chosen = sample_masked(logits, mask, rng, self.sampler)
            for row, token_id in enumerate(chosen):
                token_id = int(token_id)
                if done[row]:
                    continue
                if token_id == vocab.eos_id:
                    done[row] = True
                elif token_id == vocab.sep_id:
                    in_pattern[row] = False
                elif in_pattern[row]:
                    cls, length = tokenizer.pattern_token_info[token_id]
                    used_len[row] += length
                    last_class[row] = cls
                    char_classes[row].extend(cls * length)
                else:
                    passwords[row].append(vocab.token_of(token_id))
                    position[row] += 1
            if done.all():
                break
            logits = self.inference.step(chosen, cache)
        return ["".join(chars) for chars in passwords]
