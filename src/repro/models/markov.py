"""Character-level Markov (n-gram) password guesser with OMEN enumeration.

Implements the probability-based family of §II-B2: an order-``k`` n-gram
model with add-delta smoothing over the visible-ASCII charset plus an
end-of-word symbol, supporting

* stochastic generation (independent sampling — the family's high repeat
  rate is part of the paper's motivation), and
* OMEN-style *ordered* enumeration (Dürmuth et al. 2015): transition
  log-probabilities are discretised into integer levels and passwords are
  enumerated level-by-level, most probable level first.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterator

import numpy as np

from ..datasets.corpus import PasswordCorpus
from ..tokenizer.charset import VISIBLE_ASCII
from ..tokenizer.patterns import MAX_PASSWORD_LENGTH
from .base import PasswordGuesser

_END = "\x00"  # end-of-password symbol (outside the visible charset)
_ALPHABET = VISIBLE_ASCII + _END


class MarkovModel(PasswordGuesser):
    """Order-``k`` character n-gram model."""

    name = "Markov"

    def __init__(self, order: int = 3, smoothing: float = 0.01) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.order = order
        self.smoothing = smoothing
        self._fitted = False
        self._probs: dict[str, np.ndarray] = {}
        self._char_index = {c: i for i, c in enumerate(_ALPHABET)}

    # ------------------------------------------------------------------
    def fit(self, corpus: PasswordCorpus, **kwargs) -> "MarkovModel":
        counts: dict[str, Counter[str]] = defaultdict(Counter)
        pad = " " * self.order  # start padding (space is outside the charset)
        for password in corpus:
            padded = pad + password + _END
            for i in range(self.order, len(padded)):
                context = padded[i - self.order : i]
                counts[context][padded[i]] += 1
        self._probs = {}
        v = len(_ALPHABET)
        for context, counter in counts.items():
            dist = np.full(v, self.smoothing, dtype=np.float64)
            for ch, c in counter.items():
                dist[self._char_index[ch]] += c
            dist /= dist.sum()
            self._probs[context] = dist
        self._uniform = np.full(v, 1.0 / v)
        self._fitted = True
        return self

    def _dist(self, context: str) -> np.ndarray:
        return self._probs.get(context, self._uniform)

    def log_prob(self, password: str) -> float:
        """Log-probability of ``password`` (including the end symbol)."""
        self._require_fitted(self._fitted)
        padded = " " * self.order + password + _END
        total = 0.0
        for i in range(self.order, len(padded)):
            dist = self._dist(padded[i - self.order : i])
            total += float(np.log(dist[self._char_index[padded[i]]]))
        return total

    # ------------------------------------------------------------------
    def generate(self, n: int, seed: int = 0) -> list[str]:
        """Independent ancestral sampling (high repeat rate by design)."""
        self._require_fitted(self._fitted)
        rng = np.random.default_rng(seed)
        out: list[str] = []
        for _ in range(n):
            context = " " * self.order
            chars: list[str] = []
            while len(chars) < MAX_PASSWORD_LENGTH:
                dist = self._dist(context)
                ch = _ALPHABET[int(rng.choice(len(_ALPHABET), p=dist))]
                if ch == _END:
                    break
                chars.append(ch)
                context = context[1:] + ch
            out.append("".join(chars))
        return out

    # ------------------------------------------------------------------
    # OMEN-style ordered enumeration
    # ------------------------------------------------------------------
    def iter_ordered(
        self,
        max_level: int = 30,
        level_width: float = 0.7,
        max_length: int = MAX_PASSWORD_LENGTH,
    ) -> Iterator[str]:
        """Enumerate passwords by ascending total discretised level.

        Each transition's level is ``round(-log p / level_width)`` capped
        at ``max_level``; a password's level is the sum over transitions.
        Level 0 passwords come first, then level 1, etc. — OMEN's ordering.
        """
        self._require_fitted(self._fitted)

        def transition_levels(context: str) -> list[tuple[int, str]]:
            dist = self._dist(context)
            out = []
            for idx, p in enumerate(dist):
                level = int(round(-np.log(p) / level_width))
                if level <= max_level:
                    out.append((level, _ALPHABET[idx]))
            return out

        start = " " * self.order
        for target in range(max_level + 1):
            # DFS over (context, remaining level budget).
            stack: list[tuple[str, str, int]] = [(start, "", target)]
            while stack:
                context, prefix, budget = stack.pop()
                if len(prefix) > max_length:
                    continue
                for level, ch in transition_levels(context):
                    if level > budget:
                        continue
                    if ch == _END:
                        if level == budget and prefix:
                            yield prefix
                        continue
                    if len(prefix) < max_length:
                        stack.append((context[1:] + ch, prefix + ch, budget - level))

    def generate_ordered(self, n: int, **kwargs) -> list[str]:
        """First ``n`` passwords of the OMEN enumeration."""
        out: list[str] = []
        for pw in self.iter_ordered(**kwargs):
            out.append(pw)
            if len(out) >= n:
                break
        return out
