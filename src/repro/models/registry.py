"""Model registry: build any model of the zoo by name.

Used by the benchmark harness and examples so "the six rows of Table IV"
are data, not code.
"""

from __future__ import annotations

from typing import Callable

from .base import PasswordGuesser
from .markov import MarkovModel
from .pagpassgpt import PagPassGPT
from .passflow import PassFlow
from .passgan import PassGAN
from .passgpt import PassGPT
from .pcfg import PCFGModel
from .rulebased import RuleBasedModel
from .vaepass import VAEPass

_FACTORIES: dict[str, Callable[..., PasswordGuesser]] = {
    "pagpassgpt": PagPassGPT,
    "passgpt": PassGPT,
    "passgan": PassGAN,
    "vaepass": VAEPass,
    "passflow": PassFlow,
    "pcfg": PCFGModel,
    "markov": MarkovModel,
    "rulebased": RuleBasedModel,
}


def available_models() -> list[str]:
    """Names accepted by :func:`create_model`."""
    return sorted(_FACTORIES)


def create_model(name: str, **kwargs) -> PasswordGuesser:
    """Instantiate a model by (case-insensitive) registry name."""
    key = name.lower().replace("-", "").replace("_", "")
    aliases = {"pagpassgptdc": "pagpassgpt"}  # the D&C wrapper wraps a base model
    key = aliases.get(key, key)
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}") from None
    return factory(**kwargs)
