"""Rule-based password guesser (§II-B1: the Hashcat / John-the-Ripper family).

The earliest guessing approach: take a wordlist (here: the training
corpus's most frequent base words) and apply *mangling rules* —
capitalisation, leetspeak, digit/special appends — in a fixed, popularity-
ordered schedule.  Deterministic, extremely fast, and entirely dependent
on its background knowledge, which is the weakness the paper cites.

This is an extension beyond the paper's comparison set (the paper only
*discusses* rule-based models), included to complete the §II-B taxonomy.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterator

from ..datasets.corpus import PasswordCorpus
from .base import PasswordGuesser

#: Suffixes in rough real-world popularity order (Hashcat best64 spirit).
_APPENDS: tuple[str, ...] = (
    "", "1", "123", "12", "2", "!", "01", "7", "123456", "21", "69", "007",
    "13", "11", "22", "1234", "99", "00", "2000", "2010", "1!", "123!",
    "!!", "@", "#", "*", "1990", "1995", "2020",
)

_LEET = str.maketrans({"a": "@", "e": "3", "i": "1", "o": "0", "s": "$"})


def _identity(word: str) -> str:
    return word


def _capitalize(word: str) -> str:
    return word.capitalize()


def _upper(word: str) -> str:
    return word.upper()


def _reverse(word: str) -> str:
    return word[::-1]


def _leet(word: str) -> str:
    return word.translate(_LEET)


def _duplicate(word: str) -> str:
    return word + word


#: Word transformations, ordered by how often users actually apply them.
TRANSFORMS: tuple[Callable[[str], str], ...] = (
    _identity,
    _capitalize,
    _upper,
    _leet,
    _reverse,
    _duplicate,
)


class RuleBasedModel(PasswordGuesser):
    """Wordlist + mangling-rule guesser.

    ``fit`` extracts the most frequent alphabetic *base words* from the
    training corpus (maximal letter runs of length >= 3, lowercased);
    ``generate`` walks words x transforms x appends in popularity order.
    """

    name = "RuleBased"

    def __init__(self, max_words: int = 2_000, min_word_len: int = 3) -> None:
        if max_words < 1:
            raise ValueError("max_words must be >= 1")
        self.max_words = max_words
        self.min_word_len = min_word_len
        self.wordlist: list[str] = []
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, corpus: PasswordCorpus, **kwargs) -> "RuleBasedModel":
        counts: Counter[str] = Counter()
        for password in corpus:
            for word in self._letter_runs(password):
                counts[word.lower()] += 1
        self.wordlist = [w for w, _ in counts.most_common(self.max_words)]
        self._fitted = True
        return self

    def _letter_runs(self, password: str) -> Iterator[str]:
        run: list[str] = []
        for ch in password:
            if ch.isalpha():
                run.append(ch)
            else:
                if len(run) >= self.min_word_len:
                    yield "".join(run)
                run = []
        if len(run) >= self.min_word_len:
            yield "".join(run)

    # ------------------------------------------------------------------
    def iter_guesses(self) -> Iterator[str]:
        """Deterministic enumeration: appends outermost, then transforms,
        then words — so the head of the stream covers every word with the
        most popular manglings first."""
        self._require_fitted(self._fitted)
        seen: set[str] = set()
        for append in _APPENDS:
            for transform in TRANSFORMS:
                for word in self.wordlist:
                    guess = transform(word) + append
                    if 4 <= len(guess) <= 12 and guess not in seen:
                        seen.add(guess)
                        yield guess

    def generate(self, n: int, seed: int = 0) -> list[str]:
        """First ``n`` guesses of the rule schedule (duplicate-free).

        ``seed`` is unused: rule-based guessing is deterministic.
        """
        out: list[str] = []
        for guess in self.iter_guesses():
            out.append(guess)
            if len(out) >= n:
                break
        return out

    @property
    def max_guesses(self) -> int:
        """Upper bound on distinct guesses this schedule can emit."""
        return len(self.wordlist) * len(TRANSFORMS) * len(_APPENDS)
