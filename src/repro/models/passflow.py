"""PassFlow baseline (Pagnotta et al., DSN 2022) — flow-based guesser.

A NICE-style normalizing flow (Dinh et al. 2014, the paper's ref [68]):
passwords are dequantised into continuous vectors, pushed through
additive coupling layers plus a diagonal scaling layer, and trained by
exact maximum likelihood under a logistic prior.  Generation samples the
prior and inverts the flow; the final rounding back to characters carries
the continuous-to-discrete accuracy loss the paper attributes to this
family (§II-B3).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat, no_grad
from ..datasets.corpus import PasswordCorpus
from ..nn import MLP, Adam
from ..nn.module import Module, Parameter
from ..training.dataloader import BatchLoader
from .base import PasswordGuesser
from .seq_encoding import SEQ_LEN, VOCAB_SIZE, decode_indices, encode_indices

_HALF = SEQ_LEN // 2


def _softplus(z: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(z))``."""
    return z.relu() + ((-(z.abs())).exp() + 1.0).log()


class _Coupling(Module):
    """Additive coupling: one half shifts the other by an MLP of it."""

    def __init__(self, rng: np.random.Generator, hidden: int, swap: bool) -> None:
        super().__init__()
        self.net = MLP([_HALF, hidden, hidden, _HALF], rng, activation=Tensor.tanh)
        self.swap = swap

    def forward(self, x: Tensor) -> Tensor:
        a, b = x[:, :_HALF], x[:, _HALF:]
        if self.swap:
            a, b = b, a
        b = b + self.net(a)
        if self.swap:
            a, b = b, a
        return concat([a, b], axis=1)

    def inverse(self, y: np.ndarray) -> np.ndarray:
        a, b = y[:, :_HALF], y[:, _HALF:]
        if self.swap:
            a, b = b, a
        with no_grad():
            shift = self.net(Tensor(a.astype(np.float32))).data
        b = b - shift
        if self.swap:
            a, b = b, a
        return np.concatenate([a, b], axis=1)


class PassFlow(PasswordGuesser):
    """NICE flow over dequantised fixed-length password vectors."""

    name = "PassFlow"

    def __init__(
        self,
        n_couplings: int = 4,
        hidden: int = 96,
        epochs: int = 6,
        batch_size: int = 128,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.couplings = [_Coupling(rng, hidden, swap=bool(i % 2)) for i in range(n_couplings)]
        #: log of the diagonal scaling layer (NICE's final layer).
        self.log_scale = Parameter(np.zeros(SEQ_LEN, dtype=np.float32))
        self._fitted = False
        self.losses: list[float] = []

    def _parameters(self):
        params = [self.log_scale]
        for c in self.couplings:
            params.extend(c.parameters())
        return params

    # ------------------------------------------------------------------
    def _forward_z(self, x: Tensor) -> Tensor:
        for coupling in self.couplings:
            x = coupling(x)
        return x * self.log_scale.exp()

    def _nll(self, x: Tensor) -> Tensor:
        """Mean negative log-likelihood under the logistic prior."""
        z = self._forward_z(x)
        log_prior = -(_softplus(z) + _softplus(-z)).sum()
        log_det = self.log_scale.sum() * float(len(x))
        return (log_prior + log_det) * (-1.0 / len(x))

    def _dequantise(self, indices: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        noise = rng.random(indices.shape)
        return ((indices + noise) / VOCAB_SIZE).astype(np.float32)

    def fit(self, corpus: PasswordCorpus, log_fn=None, **kwargs) -> "PassFlow":
        rng = np.random.default_rng(self.seed)
        indices = encode_indices(corpus.passwords)
        optimizer = Adam(self._parameters(), lr=self.lr)
        loader = BatchLoader(indices, self.batch_size, seed=self.seed)
        for epoch in range(self.epochs):
            epoch_loss, seen = 0.0, 0
            for batch in loader:
                optimizer.zero_grad()
                x = Tensor(self._dequantise(batch, rng))
                loss = self._nll(x)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item() * len(batch)
                seen += len(batch)
            self.losses.append(epoch_loss / seen)
            if log_fn is not None:
                log_fn(f"PassFlow epoch {epoch}: nll {self.losses[-1]:.4f}")
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def _invert(self, z: np.ndarray) -> np.ndarray:
        x = z * np.exp(-self.log_scale.data)
        for coupling in reversed(self.couplings):
            x = coupling.inverse(x)
        return x

    def generate(self, n: int, seed: int = 0) -> list[str]:
        """Sample the logistic prior, invert the flow, round to characters."""
        self._require_fitted(self._fitted)
        rng = np.random.default_rng(seed)
        out: list[str] = []
        for start in range(0, n, 1024):
            batch = min(1024, n - start)
            u = rng.random((batch, SEQ_LEN))
            z = np.log(u / (1.0 - u))  # logistic via inverse CDF
            x = self._invert(z.astype(np.float32))
            indices = np.clip(np.floor(x * VOCAB_SIZE), 0, VOCAB_SIZE - 1).astype(np.int64)
            out.extend(decode_indices(indices))
        return out
