"""PagPassGPT-D&C: PagPassGPT equipped with D&C-GEN (§IV-D).

A thin :class:`PasswordGuesser` adapter so the evaluation harness can
treat "PagPassGPT-D&C" as one more model row in Tables IV and VI.
"""

from __future__ import annotations

from typing import Optional

from ..datasets.corpus import PasswordCorpus
from ..generation.dcgen import DCGenConfig, DCGenerator
from ..tokenizer.patterns import Pattern
from .base import PatternGuidedGuesser
from .pagpassgpt import PagPassGPT


class PagPassGPTDC(PatternGuidedGuesser):
    """PagPassGPT whose trawling generation runs through D&C-GEN.

    ``dc_config.workers > 1`` shards leaf execution across a process
    pool (:mod:`repro.generation.parallel`); the guess stream and stats
    are identical to the serial path for any worker count.
    """

    name = "PagPassGPT-D&C"
    budget_sensitive = True

    def __init__(self, base: PagPassGPT, dc_config: DCGenConfig = DCGenConfig()) -> None:
        self.base = base
        self.dc_config = dc_config
        self._generator: Optional[DCGenerator] = None

    @property
    def generator(self) -> DCGenerator:
        if self._generator is None:
            self._generator = DCGenerator(self.base, self.dc_config)
        return self._generator

    def fit(self, corpus: PasswordCorpus, **kwargs) -> "PagPassGPTDC":
        """Fit the underlying PagPassGPT (no-op if already fitted)."""
        if not self.base.is_fitted:
            self.base.fit(corpus, **kwargs)
        return self

    def generate(self, n: int, seed: int = 0) -> list[str]:
        """Trawling generation via Algorithm 1."""
        return self.generator.generate(n, seed=seed)

    def generate_with_pattern(self, pattern: Pattern, n: int, seed: int = 0) -> list[str]:
        """Pattern guided generation delegates to the base model."""
        return self.base.generate_with_pattern(pattern, n, seed=seed)
