"""The password-guessing model zoo.

* :class:`PagPassGPT` — the paper's contribution (pattern-conditioned GPT-2)
* :class:`PagPassGPTDC` — PagPassGPT generating through D&C-GEN
* :class:`PassGPT` — the state-of-the-art baseline
* :class:`PassGAN`, :class:`VAEPass`, :class:`PassFlow` — older deep models
* :class:`PCFGModel`, :class:`MarkovModel` — classical probabilistic models
"""

from .base import PasswordGuesser, PatternGuidedGuesser
from .markov import MarkovModel
from .pagpassgpt import PagPassGPT
from .pagpassgpt_dc import PagPassGPTDC
from .passflow import PassFlow
from .passgan import PassGAN
from .passgpt import PassGPT
from .pcfg import PCFGModel
from .registry import available_models, create_model
from .rulebased import RuleBasedModel
from .vaepass import VAEPass

__all__ = [
    "PasswordGuesser",
    "PatternGuidedGuesser",
    "MarkovModel",
    "PagPassGPT",
    "PagPassGPTDC",
    "PassFlow",
    "PassGAN",
    "PassGPT",
    "PCFGModel",
    "RuleBasedModel",
    "available_models",
    "create_model",
    "VAEPass",
]
