"""VAEPass baseline (Yang et al. 2022) — variational autoencoder guesser.

MLP encoder/decoder over fixed-length one-hot passwords with the standard
reparameterised ELBO (reconstruction cross-entropy + beta-weighted KL).
Generation samples the latent prior and decodes greedily, so the model
carries the continuous-to-discrete accuracy loss the paper attributes to
the AE family (§II-B3).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..autograd import functional as F
from ..datasets.corpus import PasswordCorpus
from ..nn import MLP, Adam, Linear
from ..nn.module import Module
from .base import PasswordGuesser
from .seq_encoding import (
    SEQ_LEN,
    VOCAB_SIZE,
    decode_indices,
    encode_indices,
    encode_onehot,
)

_FLAT = SEQ_LEN * VOCAB_SIZE


class _VAENet(Module):
    """Encoder (one-hot -> mu, logvar) and decoder (z -> logits)."""

    def __init__(self, latent_dim: int, hidden: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.encoder = MLP([_FLAT, hidden, hidden], rng, activation=Tensor.relu)
        self.mu_head = Linear(hidden, latent_dim, rng)
        self.logvar_head = Linear(hidden, latent_dim, rng)
        self.decoder = MLP([latent_dim, hidden, hidden, _FLAT], rng, activation=Tensor.relu)

    def encode(self, x: Tensor) -> tuple[Tensor, Tensor]:
        h = self.encoder(x)
        return self.mu_head(h), self.logvar_head(h)

    def decode(self, z: Tensor) -> Tensor:
        return self.decoder(z)


class VAEPass(PasswordGuesser):
    """Variational autoencoder over fixed-length password tensors."""

    name = "VAEPass"

    def __init__(
        self,
        latent_dim: int = 48,
        hidden: int = 256,
        beta: float = 0.5,
        epochs: int = 6,
        batch_size: int = 128,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.latent_dim = latent_dim
        self.beta = beta
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.net = _VAENet(latent_dim, hidden, np.random.default_rng(seed))
        self._fitted = False
        self.losses: list[float] = []

    # ------------------------------------------------------------------
    def _elbo_loss(self, onehot: np.ndarray, targets: np.ndarray, rng) -> Tensor:
        x = Tensor(onehot)
        mu, logvar = self.net.encode(x)
        eps = rng.normal(size=mu.shape).astype(np.float32)
        z = mu + (logvar * 0.5).exp() * Tensor(eps)
        logits = self.net.decode(z).reshape(len(onehot), SEQ_LEN, VOCAB_SIZE)
        recon = F.cross_entropy(logits, targets)
        mu2 = mu * mu
        kl = ((mu2 + logvar.exp() - logvar - 1.0) * 0.5).sum() * (1.0 / len(onehot))
        return recon + kl * self.beta

    def fit(self, corpus: PasswordCorpus, log_fn=None, **kwargs) -> "VAEPass":
        rng = np.random.default_rng(self.seed)
        onehot = encode_onehot(corpus.passwords)
        targets = encode_indices(corpus.passwords)
        optimizer = Adam(self.net.parameters(), lr=self.lr)
        order = np.arange(len(onehot))
        for epoch in range(self.epochs):
            rng.shuffle(order)
            epoch_loss, seen = 0.0, 0
            for start in range(0, len(order), self.batch_size):
                sel = order[start : start + self.batch_size]
                optimizer.zero_grad()
                loss = self._elbo_loss(onehot[sel], targets[sel], rng)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item() * len(sel)
                seen += len(sel)
            self.losses.append(epoch_loss / seen)
            if log_fn is not None:
                log_fn(f"VAEPass epoch {epoch}: elbo {self.losses[-1]:.4f}")
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def generate(self, n: int, seed: int = 0) -> list[str]:
        """Sample the latent prior; decode greedily per position."""
        self._require_fitted(self._fitted)
        rng = np.random.default_rng(seed)
        out: list[str] = []
        for start in range(0, n, 1024):
            batch = min(1024, n - start)
            z = rng.normal(size=(batch, self.latent_dim)).astype(np.float32)
            with no_grad():
                logits = self.net.decode(Tensor(z)).data.reshape(batch, SEQ_LEN, VOCAB_SIZE)
            out.extend(decode_indices(logits.argmax(axis=-1)))
        return out
