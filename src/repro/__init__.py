"""PagPassGPT reproduction (Su et al., DSN 2024).

A from-scratch Python implementation of pattern guided password guessing:
a GPT-2 built on a numpy autograd engine, the D&C-GEN generation
algorithm, the PassGPT / PassGAN / VAEPass / PassFlow / PCFG / Markov
baselines, a synthetic leak pipeline, and the full evaluation suite.

Quick start::

    from repro import ModelLab, Pattern

    lab = ModelLab(scale="tiny")
    model = lab.pagpassgpt("rockyou")
    model.generate_with_pattern(Pattern.parse("L6N2"), 10)
"""

from .datasets import PasswordCorpus, build_corpus, clean_leak, generate_leak, split_dataset
from .evaluation import ModelLab, hit_rate, repeat_rate
from .generation import DCGenConfig, DCGenerator
from .models import (
    MarkovModel,
    PagPassGPT,
    PagPassGPTDC,
    PassFlow,
    PassGAN,
    PassGPT,
    PCFGModel,
    VAEPass,
    create_model,
)
from .tokenizer import Pattern, PasswordTokenizer, extract_pattern

__version__ = "1.0.0"

__all__ = [
    "PasswordCorpus",
    "build_corpus",
    "clean_leak",
    "generate_leak",
    "split_dataset",
    "ModelLab",
    "hit_rate",
    "repeat_rate",
    "DCGenConfig",
    "DCGenerator",
    "MarkovModel",
    "PagPassGPT",
    "PagPassGPTDC",
    "PassFlow",
    "PassGAN",
    "PassGPT",
    "PCFGModel",
    "VAEPass",
    "create_model",
    "Pattern",
    "PasswordTokenizer",
    "extract_pattern",
    "__version__",
]
