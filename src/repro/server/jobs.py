"""Journal-persisted request lifecycle: nothing accepted is ever lost.

The server journals every accepted request — and every state transition
— into one :class:`~repro.runtime.RunJournal` under the state directory
*before* acknowledging anything to the client.  That single append-only
file is the source of truth: a crashed or SIGKILLed server process
restarts, replays the journal, and re-queues exactly the requests that
were queued, running, or drain-checkpointed, while each request's own
campaign journal (under ``jobs/<id>/``) makes the re-execution
byte-identical to an undisturbed run.

Journal layout (record kinds)::

    header   {"kind": "campaign-server", "format": 1}
    request  task_id=<job id>  payload=<CampaignSpec.to_payload()>
    state    task_id=<job id>  payload={"state": ..., ...detail}

``state`` records are last-wins per job id (the journal's in-memory
index already keeps only the latest), so replay cost stays linear and a
job's history of transitions remains greppable in the raw file.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..runtime import RunJournal
from .protocol import RESUMABLE_REASONS, TERMINAL_STATES, CampaignSpec

SERVER_JOURNAL = "requests.journal.jsonl"

#: Pinned identity of a server state directory; resuming against a
#: journal written by anything else is refused by the header check.
SERVER_HEADER = {"kind": "campaign-server", "format": 1}


@dataclass
class Job:
    """One accepted request plus its mutable runtime bookkeeping."""

    job_id: int
    spec: CampaignSpec
    state: str = "queued"
    detail: dict = field(default_factory=dict)
    #: In-memory progress (done/total rows), fed by the generator's
    #: progress callback and surfaced on ``/status`` as the heartbeat.
    progress: dict = field(default_factory=lambda: {"done": 0, "total": 0})
    started_at: Optional[float] = None
    #: Pinned trace ref (``{"trace_id", "span_id"?}``): minted — or
    #: received via ``traceparent`` — when the request was admitted,
    #: journaled with it, and adopted by the job's campaign telemetry
    #: session so the whole execution joins the request's trace.
    trace: Optional[dict] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES and not self.resumable

    @property
    def resumable(self) -> bool:
        """Interrupted by drain/signal: a restarted server continues it."""
        return (
            self.state == "interrupted"
            and self.detail.get("reason") in RESUMABLE_REASONS
        )

    def public(self, verbose: bool = True) -> dict:
        """The JSON shape ``GET /campaigns/<id>`` returns."""
        out = {
            "id": self.job_id,
            "kind": self.spec.kind,
            "tenant": self.spec.tenant,
            "state": self.state,
        }
        if self.spec.kind == "generate":
            out["n"] = self.spec.n
            out["strategy"] = self.spec.strategy
        if verbose:
            out["detail"] = dict(self.detail)
            if self.state == "running":
                progress = dict(self.progress)
                if self.started_at is not None:
                    progress["elapsed_s"] = round(time.monotonic() - self.started_at, 3)
                out["progress"] = progress
        return out


class JobStore:
    """Owns the server journal and the in-memory job table.

    All mutation must happen on one thread (the event loop): the journal
    stream is a single fd and transition ordering is part of the
    persisted truth.  Reads (counts, lookups) are safe anywhere.
    """

    def __init__(self, state_dir: str | Path) -> None:
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        path = self.state_dir / SERVER_JOURNAL
        self.journal = RunJournal.attach(path, dict(SERVER_HEADER), resume=path.exists())
        self.jobs: Dict[int, Job] = {}
        states = self.journal.completed("state")
        for job_id, payload in sorted(self.journal.completed("request").items()):
            # The trace ref rides the request record but is not part of
            # the spec; strip it before the strict spec reconstruction.
            payload = dict(payload)
            trace = payload.pop("trace", None)
            job = Job(job_id, CampaignSpec.from_journal(payload), trace=trace)
            state = states.get(job_id)
            if state is not None:
                detail = dict(state)
                job.state = detail.pop("state")
                job.detail = detail
            self.jobs[job_id] = job
        self._next_id = max(self.jobs, default=-1) + 1

    # ------------------------------------------------------------------
    def job_dir(self, job: Job) -> Path:
        return self.jobs_dir / f"{job.job_id:06d}"

    def admit(self, spec: CampaignSpec, trace: Optional[dict] = None) -> Job:
        """Persist an accepted request; durable before the 202 goes out."""
        job = Job(self._next_id, spec, trace=trace)
        self._next_id += 1
        payload = spec.to_payload()
        if trace is not None:
            payload = {**payload, "trace": trace}
        self.journal.record("request", job.job_id, payload)
        self.journal.record("state", job.job_id, {"state": "queued"})
        self.jobs[job.job_id] = job
        return job

    def set_state(self, job: Job, state: str, **detail) -> None:
        """Journal a transition, then apply it in memory."""
        self.journal.record("state", job.job_id, {"state": state, **detail})
        job.state = state
        job.detail = dict(detail)

    # ------------------------------------------------------------------
    def to_recover(self) -> List[Job]:
        """Jobs a restarted server must re-queue, in submission order.

        ``queued`` and ``running`` jobs died with the previous process;
        ``interrupted(signal)`` jobs are drain checkpoints.  All three
        resume from their own campaign journals byte-identically.
        """
        return [
            job
            for _, job in sorted(self.jobs.items())
            if job.state in ("queued", "running") or job.resumable
        ]

    def counts(self) -> dict:
        out = {state: 0 for state in ("queued", "running", "done", "failed", "interrupted")}
        for job in self.jobs.values():
            out[job.state] += 1
        return out

    def queued_by_tenant(self) -> dict:
        out: dict = {}
        for job in self.jobs.values():
            if job.state == "queued":
                out[job.spec.tenant] = out.get(job.spec.tenant, 0) + 1
        return out

    def close(self) -> None:
        self.journal.close()
