"""The campaign server: admission, a shared fleet, deadlines, drain.

:class:`CampaignServer` is the long-lived process the ROADMAP's serving
layer calls for, with robustness as the headline guarantee:

* every accepted request is journaled **before** the 202 leaves the
  socket, so a crashed server restarts and re-queues exactly the
  accepted-but-unfinished work (:mod:`repro.server.jobs`);
* each request executes through the existing campaign machinery — its
  own :class:`~repro.runtime.RunJournal`, the supervised retrying pool
  (``runtime/retry.supervised_map`` underneath ``workers > 1``
  campaigns), per-request backend fallback — so worker crashes, hangs,
  and compiled-backend failures degrade *that request*, never the
  process;
* per-request deadlines compose min-wins with the server-wide budget
  via :meth:`~repro.runtime.Budget.merge`;
* SIGTERM starts a graceful drain: admission closes (503 +
  ``Retry-After``), running requests finish or checkpoint at their next
  durable boundary (the process-global stop request trips their merged
  budgets), queued requests stay journaled for the next process, and
  the server exits 0.

Execution model: the asyncio event loop owns all bookkeeping (journal
writes, state transitions, admission); campaigns run in a small thread
fleet (``config.fleet`` slots), and the heavy lifting inside a campaign
happens in *worker processes* via the supervised pool, so the GIL only
ever carries coordination.  Each fleet slot keeps its own model
instances (inference caches are not thread-safe across concurrent
campaigns).
"""

from __future__ import annotations

import asyncio
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .. import telemetry
from ..evaluation import hit_rate, repeat_rate
from ..generation import DCGenConfig, DCGenerator
from ..models import PagPassGPT, PassGPT
from ..nn import CheckpointError
from ..runtime import (
    Budget,
    CampaignInterrupted,
    DiskFullError,
    JournalError,
    atomic_write_text,
    signals,
)
from .admission import AdmissionController
from .jobs import Job, JobStore
from .protocol import CampaignSpec, RequestError

GUESSES_FILE = "guesses.txt"
JOB_JOURNAL = "run.journal.jsonl"
JOB_TELEMETRY_DIR = "tele"


def load_checkpoint(path: str | Path) -> PagPassGPT | PassGPT:
    """Load whichever GPT model kind the checkpoint holds."""
    try:
        return PagPassGPT.load(path)
    except ValueError:
        return PassGPT.load(path)


@dataclass
class ServerConfig:
    """Everything ``repro serve`` exposes as flags."""

    checkpoint: str
    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is ``server.port``
    fleet: int = 2
    max_queue: int = 64
    max_tenant_queue: int = 8
    rate: float = 50.0
    burst: float = 20.0
    #: Server-wide wall-clock budget; composes min-wins into every
    #: request.  When it expires the server drains itself (exit 3).
    deadline: Optional[float] = None
    #: Per-job telemetry sessions (forces ``fleet = 1``: a telemetry
    #: session is process-global, so traced jobs must serialize).
    job_telemetry: bool = False
    poll_interval: float = 0.05


class _ModelSlots:
    """Per-thread model cache: fleet slots never share inference state."""

    def __init__(self, default_path: str) -> None:
        self.default_path = str(default_path)
        self._local = threading.local()

    def get(self, path: Optional[str]) -> PagPassGPT | PassGPT:
        path = str(path or self.default_path)
        cache = getattr(self._local, "models", None)
        if cache is None:
            cache = self._local.models = {}
        model = cache.get(path)
        if model is None:
            model = cache[path] = load_checkpoint(path)
        return model


class CampaignServer:
    """See module docstring.  Drive with :meth:`serve_forever`."""

    def __init__(self, config: ServerConfig) -> None:
        if config.job_telemetry:
            config.fleet = 1
        self.config = config
        self.store = JobStore(config.state_dir)
        self.admission = AdmissionController(
            max_queue=config.max_queue,
            max_tenant_queue=config.max_tenant_queue,
            rate=config.rate,
            burst=config.burst,
        )
        self.budget = (
            Budget(wall_seconds=config.deadline) if config.deadline is not None else None
        )
        self.models = _ModelSlots(config.checkpoint)
        self.port: Optional[int] = None
        #: Set once the listener is bound and recovery is enqueued
        #: (thread-started harnesses wait on it before connecting).
        self.ready = threading.Event()
        self.draining = False
        self.drain_reason: Optional[str] = None
        self._drain_requested = False
        self._started_at = time.monotonic()
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        #: Executions in flight on the loop (fleet + synchronous scores);
        #: drain waits for it to hit zero before closing the journal.
        self._inflight = 0
        self._drain_event: Optional[asyncio.Event] = None
        self._fleet_tasks: list[asyncio.Task] = []
        self._executor = ThreadPoolExecutor(
            max_workers=config.fleet, thread_name_prefix="fleet"
        )
        self._http: Optional[asyncio.base_events.Server] = None
        self._registry = telemetry.get_registry()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, recover journaled work, and spin up the fleet."""
        from . import http  # local import: http imports nothing from core

        # Fail fast on an unusable default checkpoint (CheckpointError
        # propagates to the CLI as exit 2) and warm slot 0's cache.
        await asyncio.get_running_loop().run_in_executor(
            self._executor, self.models.get, None
        )
        self._drain_event = asyncio.Event()
        recovered = self.store.to_recover()
        for job in recovered:
            self.store.set_state(job, "queued", recovered=True)
            self._queue.put_nowait(job)
        if recovered:
            telemetry.emit(
                "server_recovered", level="warning", jobs=[j.job_id for j in recovered]
            )
        self._fleet_tasks = [
            asyncio.create_task(self._fleet_worker(i)) for i in range(self.config.fleet)
        ]
        self._http = await asyncio.start_server(
            lambda r, w: http.handle_connection(self, r, w),
            host=self.config.host,
            port=self.config.port,
        )
        self.port = self._http.sockets[0].getsockname()[1]
        self._update_gauges()
        self.ready.set()

    async def serve_forever(self) -> dict:
        """Run until SIGTERM/SIGINT, a drain request, or budget expiry.

        Returns a drain summary: ``{"reason", "jobs": counts}``.  The
        caller (``repro serve``) maps the reason onto the exit-code
        table — ``signal``/``requested`` exit 0 (graceful drain is the
        *intended* shutdown), ``deadline`` exits 3.
        """
        if self._drain_event is None:  # allow callers to start() first
            await self.start()
        reason = None
        while reason is None:
            if signals.requested() is not None:
                reason = "signal"
            elif self._drain_requested:
                reason = "requested"
            elif self.budget is not None and self.budget.remaining() == 0.0:
                reason = "deadline"
            else:
                await asyncio.sleep(self.config.poll_interval)
        await self.drain(reason)
        return {"reason": reason, "jobs": self.store.counts()}

    def request_drain(self) -> None:
        """Programmatic drain trigger (tests, soak harness, embedders)."""
        self._drain_requested = True

    async def drain(self, reason: str = "requested") -> None:
        """Stop admitting, finish/checkpoint in-flight work, shut down.

        Queued jobs are *not* started: they stay journaled as ``queued``
        and the next server process re-queues them.  Running jobs either
        finish or — when a stop signal is pending — hit their merged
        budget's signal check at the next durable boundary and
        checkpoint as resumable ``interrupted``.
        """
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        self._registry.gauge("server.draining").set(1)
        telemetry.emit("server_drain", level="warning", reason=reason)
        self._drain_event.set()
        await asyncio.gather(*self._fleet_tasks, return_exceptions=True)
        while self._inflight:  # synchronous score requests still running
            await asyncio.sleep(self.config.poll_interval)
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
        self._executor.shutdown(wait=True)
        self.store.close()
        self._update_gauges()

    # ------------------------------------------------------------------
    # Submission (event loop only)
    # ------------------------------------------------------------------
    def _admit(self, spec: CampaignSpec, trace: Optional[dict] = None) -> Job:
        if spec.kind == "generate" and spec.checkpoint is not None:
            if not Path(spec.checkpoint).exists():
                raise RequestError(
                    400, "invalid_request", f"checkpoint {spec.checkpoint!r} not found"
                )
        queued = self.store.queued_by_tenant()
        self.admission.admit(
            spec.tenant,
            tenant_queued=queued.get(spec.tenant, 0),
            total_queued=sum(queued.values()),
            draining=self.draining,
        )
        # Every admitted request owns a trace: the caller's (propagated
        # via ``traceparent``) or a freshly minted one.  Journaled with
        # the request, it survives crash recovery, and the job's
        # telemetry session adopts it — so one id follows the request
        # from the socket through the fleet slot into forked workers.
        if trace is None:
            trace = telemetry.TraceContext.new().to_dict()
        job = self.store.admit(spec, trace=trace)
        self._update_gauges()
        return job

    def submit_generate(self, payload: object, trace: Optional[dict] = None) -> Job:
        """Validate + admit + enqueue a campaign; returns the queued job."""
        spec = CampaignSpec.from_payload(payload, kind="generate")
        job = self._admit(spec, trace=trace)
        self._queue.put_nowait(job)
        return job

    async def submit_score(self, payload: object, trace: Optional[dict] = None) -> dict:
        """Validate + admit + execute a scoring request synchronously.

        Scoring shares the admission gate and the journaled lifecycle,
        but the caller waits for the result: scoring is pure CPU over
        the supplied lists, so the fleet executor bounds its concurrency
        and the response carries the metrics directly.
        """
        spec = CampaignSpec.from_payload(payload, kind="score")
        job = self._admit(spec, trace=trace)
        state, detail = await self._execute(job)
        if state != "done":
            raise RequestError(500, detail.get("error", "failed"),
                               detail.get("message", "scoring failed"))
        return {"id": job.job_id, **detail}

    # ------------------------------------------------------------------
    # Fleet
    # ------------------------------------------------------------------
    async def _fleet_worker(self, slot: int) -> None:
        while True:
            get = asyncio.ensure_future(self._queue.get())
            stop = asyncio.ensure_future(self._drain_event.wait())
            done, _ = await asyncio.wait(
                {get, stop}, return_when=asyncio.FIRST_COMPLETED
            )
            if stop in done:
                # Draining: never start new work.  If ``get`` also won
                # the race its job simply stays journaled as queued —
                # the journal, not the in-memory queue, is the truth.
                get.cancel()
                return
            stop.cancel()
            await self._execute(get.result())

    async def _execute(self, job: Job) -> tuple[str, dict]:
        self.store.set_state(job, "running")
        self._update_gauges()
        self._inflight += 1
        try:
            state, detail = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._run_job_sync, job
            )
        except BaseException as exc:  # noqa: BLE001 — a fleet slot must survive
            # Nothing may kill the fleet: even an injected BaseException
            # that escaped the campaign machinery degrades to a typed
            # per-request failure.
            state, detail = "failed", {"error": type(exc).__name__, "message": str(exc)}
        finally:
            self._inflight -= 1
        self.store.set_state(job, state, **detail)
        self._registry.counter(f"server.jobs_{state}").inc()
        # Labeled variant for Prometheus scrapes: per-tenant/strategy
        # outcome counts without exploding the flat JSON namespace.
        self._registry.counter(
            "server.jobs_finished",
            labels={
                "state": state,
                "tenant": str(job.spec.tenant),
                "strategy": str(job.spec.strategy or job.spec.kind),
            },
        ).inc()
        telemetry.emit("server_job_finished", job=job.job_id, state=state)
        self._update_gauges()
        return state, detail

    # ------------------------------------------------------------------
    # Job execution (fleet threads)
    # ------------------------------------------------------------------
    def _run_job_sync(self, job: Job) -> tuple[str, dict]:
        """Execute one request to a terminal state; never raises."""
        job.started_at = time.monotonic()
        spec = job.spec
        try:
            if spec.kind == "score":
                return "done", {
                    "hit_rate": hit_rate(list(spec.guesses), list(spec.test)),
                    "repeat_rate": repeat_rate(list(spec.guesses)),
                    "unique_guesses": len(set(spec.guesses)),
                }
            return self._run_generate(job)
        except CampaignInterrupted as exc:
            # Deadline/quota: the request's budget is spent — terminal.
            # Signal/drain: a checkpoint; the next server process (or
            # this one, after recovery) resumes it byte-identically.
            return "interrupted", {
                "reason": exc.reason,
                "progress": exc.progress,
                "resumable": exc.reason == "signal",
            }
        except DiskFullError as exc:
            return "failed", {"error": "disk_full", "message": str(exc)}
        except RequestError as exc:
            return "failed", {"error": exc.code, "message": str(exc)}
        except (CheckpointError, JournalError) as exc:
            return "failed", {"error": "corrupt_artifact", "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 — typed per-request failure
            return "failed", {"error": type(exc).__name__, "message": str(exc)}

    def _run_generate(self, job: Job) -> tuple[str, dict]:
        spec = job.spec
        jobdir = self.store.job_dir(job)
        jobdir.mkdir(parents=True, exist_ok=True)
        journal = jobdir / JOB_JOURNAL
        resume = journal.exists()  # crash/drain leftovers -> continue them
        model = self.models.get(spec.checkpoint)
        # Min-wins deadline composition; even with no limits anywhere a
        # fresh Budget is created so a delivered SIGTERM (drain) trips
        # the campaign at its next durable boundary.
        budget = Budget.merge(self.budget, spec.budget()) or Budget()

        # Structured heartbeat: `/status` reads job.progress live; the
        # (TTY-disabled) Heartbeat additionally emits throttled
        # `heartbeat` telemetry events so a traced job's stream shows
        # rate/ETA even though the server runs headless.
        heartbeat = telemetry.Heartbeat(spec.n or 0, enabled=False)

        def progress(done: int, total: int) -> None:
            job.progress["done"] = int(done)
            job.progress["total"] = int(total)
            heartbeat.update(int(done), int(total))

        session_dir = None
        if self.config.job_telemetry:
            # One session per (re)run: wipe the dir so the summary
            # covers exactly the process that produced the final bytes
            # (mixing two processes' parent streams double-counts).
            session_dir = jobdir / JOB_TELEMETRY_DIR
            shutil.rmtree(session_dir, ignore_errors=True)
            # Traced jobs are audited against their plan (`summarize
            # --check` gates model calls and prompt-cache hits exactly),
            # so each must start from a cold inference cache: warmth
            # inherited from an earlier job on this slot would make the
            # actuals beat the plan.
            if hasattr(model, "invalidate_inference"):
                model.invalidate_inference()
            # The session joins the request's trace (minted at admit or
            # received via ``traceparent``): its campaign span becomes a
            # remote child of the caller's span, and pool workers chain
            # under it — one connected tree per request.
            telemetry.start_session(
                session_dir,
                run_id=f"job-{job.job_id}",
                context=telemetry.TraceContext.from_dict(job.trace),
            )
        try:
            guesses = self._dispatch(model, spec, journal, resume, progress, budget)
        finally:
            if session_dir is not None:
                telemetry.end_session()
        out = jobdir / GUESSES_FILE
        atomic_write_text(out, "\n".join(guesses) + "\n")
        journal.unlink(missing_ok=True)  # campaign finished; journal spent
        return "done", {"guesses": len(guesses), "resumed": resume}

    @staticmethod
    def _dispatch(model, spec: CampaignSpec, journal, resume, progress, budget):
        if spec.strategy == "dcgen":
            if not isinstance(model, PagPassGPT):
                raise RequestError(400, "invalid_request",
                                   "strategy dcgen requires a PagPassGPT checkpoint")
            generator = DCGenerator(
                model, DCGenConfig(threshold=spec.threshold, workers=spec.workers)
            )
            return generator.generate(
                spec.n, seed=spec.seed, journal=journal, resume=resume,
                progress=progress, budget=budget,
            )
        if spec.strategy == "ordered":
            return model.generate(
                spec.n, strategy="ordered", journal=journal, resume=resume,
                progress=progress, budget=budget,
            )
        if isinstance(model, PagPassGPT):
            return model.generate(
                spec.n, seed=spec.seed, workers=spec.workers, journal=journal,
                resume=resume, progress=progress, budget=budget,
            )
        return model.generate(spec.n, seed=spec.seed)

    # ------------------------------------------------------------------
    # Introspection (``/status`` and ``/metrics``)
    # ------------------------------------------------------------------
    def _update_gauges(self) -> None:
        counts = self.store.counts()
        self._registry.gauge("server.queue_depth").set(counts["queued"])
        self._registry.gauge("server.running").set(counts["running"])
        self._registry.gauge("server.draining").set(1 if self.draining else 0)

    def status(self) -> dict:
        """The ``/status`` payload: lifecycle counts plus live heartbeats."""
        counts = self.store.counts()
        running = []
        now = time.monotonic()
        for job in self.store.jobs.values():
            if job.state != "running":
                continue
            done, total = job.progress["done"], job.progress["total"]
            entry = {"id": job.job_id, "tenant": job.spec.tenant,
                     "done": done, "total": total}
            if job.started_at is not None:
                elapsed = max(now - job.started_at, 1e-9)
                rate = done / elapsed
                entry["rate"] = round(rate, 1)
                if rate > 0 and total > done:
                    entry["eta"] = telemetry.format_eta((total - done) / rate)
            running.append(entry)
        status = {
            "state": "draining" if self.draining else "serving",
            "uptime_s": round(now - self._started_at, 3),
            "jobs": counts,
            "running": sorted(running, key=lambda e: e["id"]),
            "tenants": {
                tenant: {"queued": depth}
                for tenant, depth in sorted(self.store.queued_by_tenant().items())
            },
        }
        if self.budget is not None:
            status["budget"] = {"wall_remaining_s": round(self.budget.remaining(), 3)}
        return status

    def metrics(self) -> dict:
        """The ``/metrics`` payload: the full registry snapshot."""
        return self._registry.snapshot()

    def metrics_prometheus(self) -> str:
        """``/metrics?format=prometheus``: text exposition (0.0.4)."""
        return telemetry.render_prometheus(self._registry)
