"""Minimal stdlib HTTP/1.1 front-end for :class:`CampaignServer`.

Hand-rolled on ``asyncio.start_server`` because the robustness story
must not depend on packages the container lacks.  The surface is small
and defensive: bounded header/body sizes, strict JSON, one request per
connection (``Connection: close``), and every refusal is a typed JSON
error — backpressure rejections carry a ``Retry-After`` header.

Endpoints::

    POST /campaigns            submit a campaign        -> 202 {id, state}
    GET  /campaigns            list requests
    GET  /campaigns/<id>       lifecycle + progress heartbeat
    GET  /campaigns/<id>/guesses   the finished guess stream (text/plain)
    POST /score                synchronous scoring      -> 200 {hit_rate,...}
    GET  /status               server state, queue depths, heartbeats
    GET  /metrics              metrics-registry snapshot (JSON)
    GET  /metrics?format=prometheus   text exposition (0.0.4) for scrapers
    GET  /healthz              liveness (also 200 while draining)

Submissions honour an incoming W3C ``traceparent`` header: the request
joins the caller's distributed trace instead of minting its own, and
the trace ref is journaled with the request so even a crash-recovered
job still reports under the original trace id.  Every request's wall
time is observed into a per-route ``server.request_ms`` histogram
(visible in both metrics formats).
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from email.utils import formatdate
from typing import Dict, Optional
from urllib.parse import parse_qs

from .. import telemetry
from .protocol import RequestError

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 32 * 1024 * 1024
REQUEST_TIMEOUT = 30.0

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


def _render(
    status: int,
    body: bytes,
    content_type: str,
    retry_after: Optional[float] = None,
) -> bytes:
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Date: {formatdate(usegmt=True)}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if retry_after is not None:
        headers.append(f"Retry-After: {max(1, math.ceil(retry_after))}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, payload: object, retry_after: Optional[float] = None) -> bytes:
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    return _render(status, body, "application/json", retry_after)


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request → ``(method, path, query, headers, body)``; EOF → ``None``."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean disconnect before a request
        raise _HttpError(400, "bad_request", "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "headers_too_large", "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise _HttpError(413, "headers_too_large", "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise _HttpError(400, "bad_request", f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, "bad_request", f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        length = int(length)
    except ValueError:
        raise _HttpError(400, "bad_request", "bad Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _HttpError(413, "body_too_large", f"body of {length} bytes refused")
    body = await reader.readexactly(length) if length else b""
    path, _, query_string = target.partition("?")
    query = {k: v[-1] for k, v in parse_qs(query_string).items()}
    return method.upper(), path, query, headers, body


def _decode_json(body: bytes) -> object:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _HttpError(400, "bad_json", f"body is not valid JSON: {exc}") from None


def _job_or_404(server, ident: str):
    try:
        job = server.store.jobs.get(int(ident))
    except ValueError:
        job = None
    if job is None:
        raise _HttpError(404, "not_found", f"no request with id {ident!r}")
    return job


def _incoming_trace(headers: Dict[str, str]) -> Optional[dict]:
    """The caller's trace ref from a ``traceparent`` header, if valid."""
    context = telemetry.TraceContext.from_traceparent(headers.get("traceparent"))
    if context is None:
        return None
    ref = {"trace_id": context.trace_id}
    if context.parent_span_id is not None:
        ref["span_id"] = context.parent_span_id
    return ref


def route_label(path: str) -> str:
    """Normalised route for the per-route request histogram.

    Ids collapse to ``{id}`` and unknown paths to ``other`` so the
    metric's label cardinality is bounded by the route table, never by
    traffic shape.
    """
    parts = [p for p in path.split("/") if p]
    if not parts:
        return "/"
    if parts[0] == "campaigns":
        if len(parts) == 1:
            return "/campaigns"
        if len(parts) == 2:
            return "/campaigns/{id}"
        if len(parts) == 3 and parts[2] == "guesses":
            return "/campaigns/{id}/guesses"
    if len(parts) == 1 and parts[0] in ("score", "status", "metrics", "healthz"):
        return f"/{parts[0]}"
    return "other"


async def _route(
    server, method: str, path: str, query: Dict[str, str], headers: Dict[str, str], body: bytes
) -> bytes:
    parts = [p for p in path.split("/") if p]
    if parts == ["campaigns"]:
        if method == "POST":
            job = server.submit_generate(_decode_json(body), trace=_incoming_trace(headers))
            return _json_response(
                202,
                {"id": job.job_id, "state": job.state, "href": f"/campaigns/{job.job_id}"},
            )
        if method == "GET":
            jobs = [job.public(verbose=False) for _, job in sorted(server.store.jobs.items())]
            return _json_response(200, {"requests": jobs})
        raise _HttpError(405, "method_not_allowed", f"{method} not supported here")
    if len(parts) == 2 and parts[0] == "campaigns":
        if method != "GET":
            raise _HttpError(405, "method_not_allowed", f"{method} not supported here")
        return _json_response(200, _job_or_404(server, parts[1]).public())
    if len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "guesses":
        if method != "GET":
            raise _HttpError(405, "method_not_allowed", f"{method} not supported here")
        job = _job_or_404(server, parts[1])
        if job.state != "done":
            raise _HttpError(
                409, "not_finished",
                f"request {job.job_id} is {job.state}; guesses exist only for 'done'",
            )
        from .core import GUESSES_FILE  # late: avoid import cycle at module load

        return _render(
            200,
            (server.store.job_dir(job) / GUESSES_FILE).read_bytes(),
            "text/plain; charset=utf-8",
        )
    if parts == ["score"]:
        if method != "POST":
            raise _HttpError(405, "method_not_allowed", f"{method} not supported here")
        return _json_response(
            200, await server.submit_score(_decode_json(body), trace=_incoming_trace(headers))
        )
    if parts == ["status"] and method == "GET":
        return _json_response(200, server.status())
    if parts == ["metrics"] and method == "GET":
        if query.get("format") == "prometheus":
            return _render(
                200,
                server.metrics_prometheus().encode("utf-8"),
                telemetry.PROMETHEUS_CONTENT_TYPE,
            )
        return _json_response(200, server.metrics())
    if parts == ["healthz"] and method == "GET":
        return _json_response(200, {"ok": True, "draining": server.draining})
    raise _HttpError(404, "not_found", f"no route for {method} {path}")


async def handle_connection(server, reader, writer) -> None:
    """One connection, one request, typed errors, never a traceback."""
    response: Optional[bytes] = None
    label = "unparsed"
    started = time.perf_counter()
    try:
        parsed = await asyncio.wait_for(_read_request(reader), REQUEST_TIMEOUT)
        if parsed is not None:
            method, path, query, headers, body = parsed
            label = route_label(path)
            response = await _route(server, method, path, query, headers, body)
    except RequestError as exc:  # admission/validation: typed + Retry-After
        response = _json_response(exc.status, exc.to_payload(), exc.retry_after)
    except _HttpError as exc:
        response = _json_response(exc.status, {"error": exc.code, "message": str(exc)})
    except (asyncio.TimeoutError, asyncio.IncompleteReadError, ConnectionError):
        response = None  # client went away; nothing useful to say
    except Exception as exc:  # noqa: BLE001 — a connection must not kill the server
        response = _json_response(
            500, {"error": "internal", "message": f"{type(exc).__name__}: {exc}"}
        )
    if response is not None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        telemetry.get_registry().histogram(
            "server.request_ms", labels={"route": label}
        ).observe(elapsed_ms)
    try:
        if response is not None:
            writer.write(response)
            await writer.drain()
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - platform noise
            pass
