"""``repro top``: a live terminal view of a running campaign server.

Polls ``GET /status`` and ``GET /metrics`` (the JSON snapshot) over
plain ``urllib`` and renders a compact, ``top``-style screen: server
state and uptime, job lifecycle counts, per-tenant queue depths, the
running jobs' progress/rate/ETA heartbeats, and the hottest counters.
Pure-render core (:func:`render_top`) is separated from the fetch/poll
loop so tests drive it from fixture dicts without a socket.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Optional, TextIO
from urllib.error import URLError
from urllib.request import urlopen

#: Counters surfaced in the hot-metrics panel when present (ordered).
_HOT_COUNTERS = (
    "server.jobs_done",
    "server.jobs_failed",
    "server.jobs_interrupted",
    "server.accepted",
    "journal.records",
    "prompt_cache.hits",
    "prompt_cache.misses",
)


def fetch_json(url: str, timeout: float = 5.0) -> dict:
    """GET ``url`` and decode the JSON body (raises ``URLError`` on refusal)."""
    with urlopen(url, timeout=timeout) as response:  # noqa: S310 — http status URL
        return json.loads(response.read().decode("utf-8"))


def render_top(status: dict, metrics: dict, url: str = "") -> str:
    """The full screen as one string (no cursor control — caller clears)."""
    lines = []
    jobs = status.get("jobs", {})
    state = status.get("state", "?")
    uptime = status.get("uptime_s", 0.0)
    lines.append(f"repro top — {url or 'campaign server'}")
    lines.append(
        f"state: {state}   uptime: {uptime:.0f}s   "
        + "  ".join(f"{name}: {jobs.get(name, 0)}" for name in
                    ("queued", "running", "done", "failed", "interrupted"))
    )
    budget = status.get("budget")
    if budget:
        lines.append(f"budget: {budget.get('wall_remaining_s')}s wall remaining")

    tenants = status.get("tenants", {})
    if tenants:
        lines.append("")
        lines.append("tenant queues:")
        for tenant, info in sorted(tenants.items()):
            lines.append(f"  {tenant:<16} queued {info.get('queued', 0)}")

    running = status.get("running", [])
    lines.append("")
    if running:
        lines.append(f"{'job':>6}  {'tenant':<12} {'progress':<17} {'rate':>8}  eta")
        for entry in running:
            done, total = entry.get("done", 0), entry.get("total", 0)
            pct = f"({100.0 * done / total:.0f}%)" if total else ""
            rate = entry.get("rate")
            lines.append(
                f"{entry.get('id', '?'):>6}  {str(entry.get('tenant', '-')):<12} "
                f"{f'{done}/{total} {pct}':<17} "
                f"{f'{rate}/s' if rate is not None else '-':>8}  {entry.get('eta', '-')}"
            )
    else:
        lines.append("no running jobs")

    counters = metrics.get("counters", {})
    hot = [(name, counters[name]) for name in _HOT_COUNTERS if name in counters]
    if hot:
        lines.append("")
        lines.append("counters: " + "  ".join(f"{name}={value}" for name, value in hot))
    histograms = metrics.get("histograms", {})
    request_keys = sorted(k for k in histograms if k.startswith("server.request_ms"))
    if request_keys:
        lines.append("requests:")
        for key in request_keys:
            snap = histograms[key]
            count = snap.get("count", 0)
            total = snap.get("total", 0.0)
            mean = total / count if count else 0.0
            lines.append(f"  {key:<48} n={count:<7} mean={mean:.1f}ms")
    return "\n".join(lines)


def run_top(
    url: str,
    interval: float = 2.0,
    once: bool = False,
    stream: Optional[TextIO] = None,
    clock=time.sleep,
) -> int:
    """Poll-and-render loop; returns an exit code (0 ok, 1 unreachable).

    ``--once`` renders a single frame without clearing the screen (and
    is what CI/tests use); the live loop clears between frames and
    stops cleanly on Ctrl-C.
    """
    stream = stream if stream is not None else sys.stdout
    base = url.rstrip("/")
    while True:
        try:
            status = fetch_json(f"{base}/status")
            metrics = fetch_json(f"{base}/metrics")
        except (URLError, OSError, ValueError) as exc:
            print(f"top: cannot reach {base}: {exc}", file=sys.stderr)
            return 1
        frame = render_top(status, metrics, url=base)
        if once:
            stream.write(frame + "\n")
            return 0
        stream.write("\x1b[2J\x1b[H" + frame + "\n")
        stream.flush()
        try:
            clock(interval)
        except KeyboardInterrupt:
            return 0
