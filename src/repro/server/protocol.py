"""Typed request protocol for the campaign server.

Every request the server accepts is first validated into a frozen
:class:`CampaignSpec` — the serving-layer twin of the campaign-plan
objects the generators consume.  Validation is strict on purpose:
unknown fields, wrong types, and out-of-range values are *admission*
failures (HTTP 400) rather than something a worker discovers an hour
into a campaign.  A spec is JSON-round-trippable so the server journal
can persist it verbatim and rebuild it on restart.

Request lifecycle (persisted per request in the server journal)::

    queued -> running -> done
                      -> failed        (typed error; terminal)
                      -> interrupted   (deadline/quota: terminal;
                                        signal/drain: resumable)

:class:`RequestError` is the one exception the HTTP layer translates
into a response: it carries the status code, a stable machine-readable
``code``, and — for backpressure rejections — a ``retry_after`` hint
that becomes the ``Retry-After`` header.
"""

from __future__ import annotations

import math
import re
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..runtime import Budget

#: Request lifecycle states, in nominal order.
STATES = ("queued", "running", "done", "failed", "interrupted")

#: States after which the server itself will never touch a request again
#: (an ``interrupted`` request whose reason is ``signal`` is *resumable*:
#: a restarted server re-queues it — see :meth:`resumable`).
TERMINAL_STATES = ("done", "failed", "interrupted")

#: Budget-interruption reasons that a restarted/resumed server continues;
#: everything else (deadline, quotas) spent the request's own budget.
RESUMABLE_REASONS = ("signal",)

GENERATE_STRATEGIES = ("sampled", "dcgen", "ordered")

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Hard per-request ceilings — admission-time guardrails, not tunables.
MAX_REQUEST_GUESSES = 5_000_000
MAX_SCORE_LINES = 200_000
MAX_WORKERS = 16


class RequestError(Exception):
    """A request the server refuses, with its HTTP translation attached.

    ``retry_after`` (seconds, optional) is set on backpressure
    rejections (429/503) so clients can back off precisely instead of
    hammering the admission gate.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.retry_after = retry_after

    def to_payload(self) -> dict:
        payload = {"error": self.code, "message": str(self)}
        if self.retry_after is not None:
            payload["retry_after"] = round(self.retry_after, 3)
        return payload


def _bad(message: str) -> RequestError:
    return RequestError(400, "invalid_request", message)


def _take_int(payload: dict, key: str, default, lo: int, hi: int) -> Optional[int]:
    value = payload.pop(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(f"{key} must be an integer")
    if not lo <= value <= hi:
        raise _bad(f"{key} must be in [{lo}, {hi}], got {value}")
    return value


def _take_number(payload: dict, key: str, lo: float) -> Optional[float]:
    value = payload.pop(key, None)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad(f"{key} must be a number")
    value = float(value)
    if not math.isfinite(value) or value <= lo:
        raise _bad(f"{key} must be a finite number > {lo}, got {value}")
    return value


def _take_lines(payload: dict, key: str) -> tuple[str, ...]:
    value = payload.pop(key, None)
    if not isinstance(value, list) or not value:
        raise _bad(f"{key} must be a non-empty list of strings")
    if len(value) > MAX_SCORE_LINES:
        raise _bad(f"{key} holds {len(value)} lines; the limit is {MAX_SCORE_LINES}")
    if not all(isinstance(v, str) for v in value):
        raise _bad(f"{key} must contain only strings")
    return tuple(value)


@dataclass(frozen=True)
class CampaignSpec:
    """One validated request: everything a worker needs to execute it."""

    kind: str  # "generate" | "score"
    tenant: str = "public"
    # --- generate ---
    n: int = 0
    seed: int = 0
    strategy: str = "sampled"
    workers: int = 1
    threshold: int = 256
    checkpoint: Optional[str] = None  # None -> the server's default model
    deadline: Optional[float] = None  # per-request wall-clock budget
    max_guesses: Optional[int] = None
    max_model_calls: Optional[int] = None
    # --- score ---
    guesses: tuple[str, ...] = field(default=())
    test: tuple[str, ...] = field(default=())

    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: object, kind: str) -> "CampaignSpec":
        """Validate a decoded JSON body into a spec, or raise 400.

        Consumes the payload dict key by key; anything left over is an
        unknown field and rejected — a typo'd limit silently ignored is
        a campaign run with no limit.
        """
        if not isinstance(payload, dict):
            raise _bad("request body must be a JSON object")
        payload = dict(payload)
        tenant = payload.pop("tenant", "public")
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            raise _bad("tenant must match [A-Za-z0-9._-]{1,64}")
        fields: dict = {"kind": kind, "tenant": tenant}
        if kind == "generate":
            n = _take_int(payload, "n", None, 1, MAX_REQUEST_GUESSES)
            if n is None:
                raise _bad("n (number of guesses) is required")
            strategy = payload.pop("strategy", "sampled")
            if strategy not in GENERATE_STRATEGIES:
                raise _bad(f"strategy must be one of {GENERATE_STRATEGIES}")
            checkpoint = payload.pop("checkpoint", None)
            if checkpoint is not None and not isinstance(checkpoint, str):
                raise _bad("checkpoint must be a string path")
            fields.update(
                n=n,
                strategy=strategy,
                checkpoint=checkpoint,
                seed=_take_int(payload, "seed", 0, 0, 2**32 - 1),
                workers=_take_int(payload, "workers", 1, 1, MAX_WORKERS),
                threshold=_take_int(payload, "threshold", 256, 2, 1_000_000),
                deadline=_take_number(payload, "deadline", 0.0),
                max_guesses=_take_int(payload, "max_guesses", None, 1, MAX_REQUEST_GUESSES),
                max_model_calls=_take_int(payload, "max_model_calls", None, 1, 2**31),
            )
        elif kind == "score":
            fields.update(
                guesses=_take_lines(payload, "guesses"),
                test=_take_lines(payload, "test"),
            )
        else:  # pragma: no cover - routing bug, not client input
            raise _bad(f"unknown request kind {kind!r}")
        if payload:
            raise _bad(f"unknown field(s): {', '.join(sorted(payload))}")
        return cls(**fields)

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-safe dict, exact enough to rebuild the spec on restart."""
        out = asdict(self)
        out["guesses"] = list(self.guesses)
        out["test"] = list(self.test)
        return out

    @classmethod
    def from_journal(cls, payload: dict) -> "CampaignSpec":
        payload = dict(payload)
        payload["guesses"] = tuple(payload.get("guesses") or ())
        payload["test"] = tuple(payload.get("test") or ())
        return cls(**payload)

    def budget(self) -> Optional[Budget]:
        """The request's own budget, or ``None`` when limitless."""
        if self.deadline is None and self.max_guesses is None and self.max_model_calls is None:
            return None
        return Budget(
            wall_seconds=self.deadline,
            max_guesses=self.max_guesses,
            max_model_calls=self.max_model_calls,
        )

    def describe(self) -> str:
        if self.kind == "score":
            return f"score[{self.tenant}] {len(self.guesses)}x{len(self.test)}"
        return f"generate[{self.tenant}] {self.strategy} n={self.n} seed={self.seed}"
