"""Guessing as a service: a resilient asyncio campaign server.

``repro serve`` turns the journaled, supervised campaign engine into a
long-lived service: concurrent clients submit campaign and scoring
requests over HTTP, admission control pushes back explicitly
(429/503 + ``Retry-After``) instead of buffering without bound, every
accepted request survives a server crash via the request journal, and
SIGTERM drains gracefully — in-flight work finishes or checkpoints,
queued work stays journaled for the next process, exit code 0.

Layers:

* :mod:`~repro.server.protocol` — typed request validation + lifecycle;
* :mod:`~repro.server.admission` — token buckets and queue caps;
* :mod:`~repro.server.jobs` — the journal-persisted job store;
* :mod:`~repro.server.core` — the fleet, budgets, drain, recovery;
* :mod:`~repro.server.http` — the stdlib asyncio HTTP front-end.
"""

from .admission import AdmissionController, TokenBucket
from .core import CampaignServer, ServerConfig, load_checkpoint
from .jobs import Job, JobStore
from .protocol import (
    RESUMABLE_REASONS,
    STATES,
    TERMINAL_STATES,
    CampaignSpec,
    RequestError,
)

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "CampaignServer",
    "ServerConfig",
    "load_checkpoint",
    "Job",
    "JobStore",
    "RESUMABLE_REASONS",
    "STATES",
    "TERMINAL_STATES",
    "CampaignSpec",
    "RequestError",
]
