"""Admission control: bounded queues and per-tenant token-bucket rates.

The robustness contract of the serving layer is *explicit* backpressure:
a request the server cannot take on right now is rejected immediately
with a typed 429/503 and a ``Retry-After`` hint, instead of buffered
into an unbounded queue that turns overload into latency, memory
pressure, and eventually lost work.  Checks run in rejection-priority
order:

1. **draining** — the server received SIGTERM and is winding down
   (503; retry after the drain grace, against the replacement process);
2. **global queue depth** — total queued work is capped (503: the
   *server* is saturated, any tenant would be refused);
3. **per-tenant queue depth** — one tenant cannot occupy the whole
   queue (429: *this* tenant should back off);
4. **per-tenant token bucket** — sustained request *rate* is capped
   independently of queue depth (429 with the exact refill wait).

Every rejection ticks a ``server.rejected.<reason>`` counter so the
``/metrics`` endpoint shows who is being pushed back and why.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from .. import telemetry
from .protocol import RequestError


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``take()`` returns 0.0 on success (one token consumed) or the exact
    number of seconds until a token will be available (none consumed).
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def take(self) -> float:
        """Consume one token, or report how long until one exists."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


class AdmissionController:
    """Decides, per submission, whether the server takes the work on.

    Queue depths are supplied by the caller (the job store owns them);
    the controller owns only the rate state.  Thread-safe: submissions
    arrive on the event loop but chaos harnesses poke it from test
    threads.
    """

    def __init__(
        self,
        max_queue: int = 64,
        max_tenant_queue: int = 8,
        rate: float = 50.0,
        burst: float = 20.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue < 1 or max_tenant_queue < 1:
            raise ValueError("queue capacities must be >= 1")
        self.max_queue = int(max_queue)
        self.max_tenant_queue = int(max_tenant_queue)
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def _reject(self, reason: str, exc: RequestError) -> RequestError:
        telemetry.get_registry().counter(f"server.rejected.{reason}").inc()
        telemetry.get_registry().counter("server.rejected").inc()
        return exc

    def admit(
        self,
        tenant: str,
        tenant_queued: int,
        total_queued: int,
        draining: bool,
        drain_retry_after: float = 30.0,
    ) -> None:
        """Raise a typed :class:`RequestError` unless the request may queue."""
        if draining:
            raise self._reject(
                "draining",
                RequestError(
                    503, "draining",
                    "server is draining and no longer admits work",
                    retry_after=drain_retry_after,
                ),
            )
        if total_queued >= self.max_queue:
            raise self._reject(
                "queue_full",
                RequestError(
                    503, "queue_full",
                    f"server queue is full ({total_queued}/{self.max_queue})",
                    retry_after=1.0,
                ),
            )
        if tenant_queued >= self.max_tenant_queue:
            raise self._reject(
                "tenant_queue_full",
                RequestError(
                    429, "tenant_queue_full",
                    f"tenant {tenant!r} already has {tenant_queued} queued "
                    f"request(s) (limit {self.max_tenant_queue})",
                    retry_after=1.0,
                ),
            )
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
            wait = bucket.take()
        if wait > 0.0:
            raise self._reject(
                "rate_limited",
                RequestError(
                    429, "rate_limited",
                    f"tenant {tenant!r} exceeded {self.rate:g} requests/s "
                    f"(burst {self.burst:g})",
                    retry_after=wait,
                ),
            )
        telemetry.get_registry().counter("server.accepted").inc()
