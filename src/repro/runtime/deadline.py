"""Cooperative deadlines and resource budgets for campaign loops.

The paper's evaluation spends multi-billion-guess budgets over days of
wall clock; operationally such a campaign must stop *cleanly* when it
hits a scheduler deadline, a guess quota, or a model-call quota — not
when the kernel kills it.  A :class:`Budget` is the cooperative contract
for that: execution loops (D&C-GEN batches, free-generation chunks,
ordered rounds, training epochs) call :meth:`Budget.poll` at their
natural boundaries, and a tripped budget raises
:class:`CampaignInterrupted` *after* the loop's progress is durable —
the journal record or state checkpoint for the completed unit has
already been written — so ``--resume`` continues byte-identically.

A budget also observes the process-global graceful-stop request set by
:mod:`repro.runtime.signals`, which is how SIGTERM/SIGINT ride the same
graceful-stop path as deadlines.

:class:`CampaignInterrupted` derives from ``BaseException`` for the same
reason :class:`~repro.runtime.faults.InjectedFault` does: a graceful
stop must cut straight through ``except Exception`` fallbacks (e.g. the
parallel-to-serial rescue path) instead of being treated as a worker
failure and retried.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from . import signals

#: poll() reasons, in the order they are checked.
REASONS = ("signal", "deadline", "guesses", "model_calls")


class CampaignInterrupted(BaseException):
    """A cooperative stop: deadline, quota, or delivered signal.

    ``reason`` is one of :data:`REASONS`; ``progress`` carries the exact
    progress counters the interrupted loop reported to
    :meth:`Budget.poll` (also emitted on the ``campaign_interrupted``
    telemetry event).  BaseException on purpose — see module docstring.
    """

    def __init__(self, reason: str, progress: Optional[dict] = None) -> None:
        self.reason = reason
        self.progress = dict(progress or {})
        detail = ", ".join(f"{k}={v}" for k, v in sorted(self.progress.items()))
        super().__init__(f"campaign interrupted ({reason})" + (f": {detail}" if detail else ""))


class Budget:
    """Wall-clock / guess / model-call limits, polled cooperatively.

    All limits are optional; a limitless budget still converts a
    delivered SIGTERM/SIGINT into a graceful stop, which is why the CLI
    always threads one through.  ``clock`` is injectable for tests.

    Loops report *absolute* progress (``poll(guesses=done, ...)``), not
    deltas, so polling is idempotent and resume-friendly: a budget never
    accumulates state of its own beyond the start timestamp.
    """

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        max_guesses: Optional[int] = None,
        max_model_calls: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if wall_seconds is not None and wall_seconds <= 0:
            raise ValueError("wall_seconds must be positive or None")
        if max_guesses is not None and max_guesses <= 0:
            raise ValueError("max_guesses must be positive or None")
        if max_model_calls is not None and max_model_calls <= 0:
            raise ValueError("max_model_calls must be positive or None")
        self.wall_seconds = wall_seconds
        self.max_guesses = max_guesses
        self.max_model_calls = max_model_calls
        self._clock = clock
        self._start = clock()

    @classmethod
    def deadline(cls, seconds: float) -> "Budget":
        """Pure wall-clock deadline (the most common operational limit)."""
        return cls(wall_seconds=seconds)

    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self._start

    def remaining(self) -> Optional[float]:
        """Wall-clock seconds left, clamped at 0; ``None`` without a limit.

        The serving layer uses this to derive a request's *effective*
        deadline from a long-lived server-wide budget: the remainder is
        what a request admitted now may still spend.
        """
        if self.wall_seconds is None:
            return None
        return max(0.0, self.wall_seconds - self.elapsed())

    @classmethod
    def merge(
        cls,
        *budgets: Optional["Budget"],
        clock: Callable[[], float] = time.monotonic,
    ) -> Optional["Budget"]:
        """Min-wins composition of budgets (``None`` entries are ignored).

        Returns a fresh budget whose wall-clock limit is the smallest
        *remaining* time of any contributor — remaining, not original,
        because contributors started ticking at different times (a
        server-wide budget may be hours old when a request arrives) —
        and whose guess/model-call quotas are the smallest of each.
        Returns ``None`` when every argument is ``None``.

        An already-expired contributor yields a merged ``wall_seconds``
        of ``0.0`` (assigned past the constructor's positivity check on
        purpose): the merged budget trips ``"deadline"`` on the very
        first :meth:`poll` instead of silently granting time.
        """
        live = [b for b in budgets if b is not None]
        if not live:
            return None
        walls = [b.remaining() for b in live if b.wall_seconds is not None]
        guesses = [b.max_guesses for b in live if b.max_guesses is not None]
        calls = [b.max_model_calls for b in live if b.max_model_calls is not None]
        merged = cls(
            max_guesses=min(guesses) if guesses else None,
            max_model_calls=min(calls) if calls else None,
            clock=clock,
        )
        if walls:
            merged.wall_seconds = min(walls)
        return merged

    def exceeded(
        self,
        guesses: Optional[int] = None,
        model_calls: Optional[int] = None,
    ) -> Optional[str]:
        """The tripped limit's reason, or ``None`` while within budget.

        A pending graceful-stop signal (see :mod:`repro.runtime.signals`)
        outranks every limit; counters are only compared when the caller
        reports them.
        """
        if signals.requested() is not None:
            return "signal"
        if self.wall_seconds is not None and self.elapsed() >= self.wall_seconds:
            return "deadline"
        if (
            self.max_guesses is not None
            and guesses is not None
            and guesses >= self.max_guesses
        ):
            return "guesses"
        if (
            self.max_model_calls is not None
            and model_calls is not None
            and model_calls >= self.max_model_calls
        ):
            return "model_calls"
        return None

    def poll(self, **progress) -> None:
        """Raise :class:`CampaignInterrupted` if any limit has tripped.

        Call at a durable boundary — after the just-completed unit's
        journal record / snapshot / checkpoint is on disk — with the
        exact progress counters (``guesses=``, ``model_calls=``, plus
        any extra context like ``epochs=`` or ``rounds=``).  On trip, a
        ``campaign_interrupted`` telemetry event carrying the reason,
        elapsed wall time, and the full progress dict is emitted before
        the raise, so the interruption is observable even when the
        caller cannot add its own handling.
        """
        reason = self.exceeded(
            guesses=progress.get("guesses"), model_calls=progress.get("model_calls")
        )
        if reason is None:
            return
        from .. import telemetry  # lazy: telemetry builds on runtime.atomic

        telemetry.emit(
            "campaign_interrupted",
            level="warning",
            reason=reason,
            elapsed_s=round(self.elapsed(), 3),
            **progress,
        )
        raise CampaignInterrupted(reason, progress)

    def stopper(self, progress: Callable[[], dict]) -> Callable[[], None]:
        """A zero-argument poll closure for wait loops.

        ``progress`` supplies the current counters at call time; the
        pool supervisor uses this to notice deadlines and signals while
        *waiting* for worker results (when no ``on_result`` boundary is
        firing).
        """
        return lambda: self.poll(**progress())
