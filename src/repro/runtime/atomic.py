"""Crash-safe file writes: temp file + fsync + ``os.replace``.

Every durable artifact this codebase writes — model checkpoints, trainer
state, guess files — goes through :func:`atomic_write`, so an interrupted
process can never leave a truncated file at the destination path.  The
destination either holds its previous content or the complete new
content, never a torn write.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


@contextmanager
def atomic_write(path: str | Path, mode: str = "wb") -> Iterator[IO]:
    """Context manager yielding a file object that atomically replaces ``path``.

    The data is written to a uniquely-named sibling temp file, flushed and
    fsynced, then moved onto ``path`` with ``os.replace`` (atomic on POSIX
    for same-filesystem renames — the temp file lives next to the target
    to guarantee that).  If the block raises, the temp file is removed and
    the target is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so the rename itself survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # e.g. filesystems that refuse opening directories
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_write(path, "wb") as fh:
        fh.write(data)


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))
