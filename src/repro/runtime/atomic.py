"""Crash-safe file writes: temp file + fsync + ``os.replace``.

Every durable artifact this codebase writes — model checkpoints, trainer
state, guess files — goes through :func:`atomic_write`, so an interrupted
process can never leave a truncated file at the destination path.  The
destination either holds its previous content or the complete new
content, never a torn write.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


@contextmanager
def atomic_write(path: str | Path, mode: str = "wb") -> Iterator[IO]:
    """Context manager yielding a file object that atomically replaces ``path``.

    The data is written to a uniquely-named sibling temp file, flushed and
    fsynced, then moved onto ``path`` with ``os.replace`` (atomic on POSIX
    for same-filesystem renames — the temp file lives next to the target
    to guarantee that).  If the block raises, the temp file is removed and
    the target is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so the rename itself survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # e.g. filesystems that refuse opening directories
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_write(path, "wb") as fh:
        fh.write(data)


class AppendStream:
    """Crash-tolerant line appender: ``O_APPEND`` + one ``os.write`` per line.

    The journal and telemetry streams are JSONL files that must survive
    ``Pool.terminate`` and hard crashes with at most a torn *tail*.  A
    single ``write(2)`` on an ``O_APPEND`` descriptor is atomic with
    respect to concurrent appenders (for the line sizes involved here),
    so interleaved writers — e.g. several worker processes sharing a log
    — never interleave bytes *within* a line, and there is no userspace
    buffer to lose on an abrupt kill.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)

    def write_line(self, line: str) -> None:
        """Append one line (a trailing newline is added if missing)."""
        if not line.endswith("\n"):
            line += "\n"
        os.write(self._fd, line.encode("utf-8"))

    def fsync(self) -> None:
        try:
            os.fsync(self._fd)
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._fd is None

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "AppendStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))
