"""Crash-safe file writes: temp file + fsync + ``os.replace``.

Every durable artifact this codebase writes — model checkpoints, trainer
state, guess files — goes through :func:`atomic_write`, so an interrupted
process can never leave a truncated file at the destination path.  The
destination either holds its previous content or the complete new
content, never a torn write.

Disk exhaustion gets the same guarantee: :func:`ensure_free_space` is a
statvfs preflight for large writes, :func:`atomic_write` fails onto its
temp file (the destination is untouched), and
:meth:`AppendStream.write_line` truncates a partially-appended line back
off the file so an ENOSPC can shorten a journal but never tear it.  All
of these raise :class:`DiskFullError`, which the chaos harness also
injects via the ``disk_full`` fault directive.
"""

from __future__ import annotations

import errno
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


class DiskFullError(OSError):
    """ENOSPC, surfaced after the write path has safely aborted.

    By the time this propagates, the artifact being written is in a
    usable state: ``atomic_write`` targets are untouched and append
    streams have had any partial tail truncated away.
    """

    def __init__(self, message: str) -> None:
        super().__init__(errno.ENOSPC, message)


def _is_enospc(exc: OSError) -> bool:
    return exc.errno in (errno.ENOSPC, errno.EDQUOT)


def ensure_free_space(path: str | Path, need_bytes: int) -> None:
    """Preflight: raise :class:`DiskFullError` unless the filesystem
    holding ``path`` has at least ``need_bytes`` available.

    Checked before large known-size writes (checkpoints, output files)
    so a run stops at a clean boundary instead of mid-artifact.  A
    filesystem that cannot report free space (``statvfs`` failing) is
    not treated as full.
    """
    path = Path(path)
    probe = path if path.exists() else path.parent
    try:
        stat = os.statvfs(probe)
    except (OSError, AttributeError):  # pragma: no cover - exotic filesystems
        return
    free = stat.f_bavail * stat.f_frsize
    if free < need_bytes:
        raise DiskFullError(
            f"not enough space on {probe}: need {need_bytes} bytes, {free} available"
        )


@contextmanager
def atomic_write(path: str | Path, mode: str = "wb") -> Iterator[IO]:
    """Context manager yielding a file object that atomically replaces ``path``.

    The data is written to a uniquely-named sibling temp file, flushed and
    fsynced, then moved onto ``path`` with ``os.replace`` (atomic on POSIX
    for same-filesystem renames — the temp file lives next to the target
    to guarantee that).  If the block raises, the temp file is removed and
    the target is left untouched.  An ENOSPC while writing or fsyncing the
    temp file is re-raised as :class:`DiskFullError`; the destination still
    holds its previous content.
    """
    from . import faults  # local: faults imports DiskFullError from here

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    faults.maybe_disk_full("atomic")
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        if isinstance(exc, OSError) and not isinstance(exc, DiskFullError) and _is_enospc(exc):
            raise DiskFullError(f"disk full while writing {path}") from exc
        raise
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so the rename itself survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # e.g. filesystems that refuse opening directories
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_write(path, "wb") as fh:
        fh.write(data)


class AppendStream:
    """Crash-tolerant line appender: ``O_APPEND`` + one ``os.write`` per line.

    The journal and telemetry streams are JSONL files that must survive
    ``Pool.terminate`` and hard crashes with at most a torn *tail*.  A
    single ``write(2)`` on an ``O_APPEND`` descriptor is atomic with
    respect to concurrent appenders (for the line sizes involved here),
    so interleaved writers — e.g. several worker processes sharing a log
    — never interleave bytes *within* a line, and there is no userspace
    buffer to lose on an abrupt kill.

    ENOSPC safe-abort: if the kernel accepts only part of a line (short
    write) or rejects it outright, the file is truncated back to its
    pre-write size and :class:`DiskFullError` raised — the stream loses
    the failed line, never gains a torn one.  (The truncation assumes the
    partial line is still the tail; a concurrent appender racing into the
    gap between a *short* write and the truncate is not defended against,
    but short writes on O_APPEND only happen when the disk is already
    full, which also stops the other appenders.)
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)

    def write_line(self, line: str) -> None:
        """Append one line (a trailing newline is added if missing)."""
        if not line.endswith("\n"):
            line += "\n"
        data = line.encode("utf-8")
        size_before = os.fstat(self._fd).st_size
        try:
            written = os.write(self._fd, data)
        except OSError as exc:
            if _is_enospc(exc):
                self._rollback(size_before)
                raise DiskFullError(f"disk full appending to {self.path}") from exc
            raise
        if written != len(data):
            self._rollback(size_before)
            raise DiskFullError(
                f"short write appending to {self.path} "
                f"({written}/{len(data)} bytes): disk full"
            )

    def _rollback(self, size: int) -> None:
        try:
            os.ftruncate(self._fd, size)
        except OSError:  # pragma: no cover - nothing more we can do
            pass

    def fsync(self) -> None:
        try:
            os.fsync(self._fd)
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._fd is None

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "AppendStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))
