"""Fault injection for the fault-tolerance and chaos test harnesses.

Faults are declared in the ``REPRO_FAULT`` environment variable as a
comma-separated list of directives::

    crash:<site>[:K]      raise InjectedFault at <site>
    hang:<site>[:K]       sleep hang_seconds() at <site> (wedged worker)
    corrupt:<site>[:K]    truncate the file written at <site> (maybe_corrupt)
    disk_full:<site>[:K]  raise DiskFullError (ENOSPC) at <site> (maybe_disk_full)
    signal:<site>[:K]     deliver SIGTERM to this process at <site>

``<site>`` names an instrumented point in the production code; the sites
currently wired are:

======================  ======================================================
``worker``              start of every pool-worker task (``index`` = task index)
``leaf_batch``          parent-side completion of a D&C-GEN leaf batch
``free_chunk``          parent-side completion of a free-generation chunk
``frontier``            ordered-generation frontier snapshot (before the write)
``epoch``               completion of a training epoch (before its checkpoint)
``checkpoint``          ``save_checkpoint`` after writing (corrupt only)
``train_state``         ``save_training_state`` after writing (corrupt only)
``journal``             ``RunJournal.record`` before the append (disk_full only)
``atomic``              ``atomic_write`` before the temp write (disk_full only)
======================  ======================================================

``K`` selects when the directive fires: for indexed sites it matches the
task index; for counter sites it fires on the call after ``K`` clean
completions (i.e. "crash after K completed batches").  Omitting ``K``
fires on every call.

Setting ``REPRO_FAULT_STATE`` to a directory makes every directive
**one-shot** (a marker file records that it already tripped — so a retry
of the failed task succeeds, which is how the retry tests distinguish
"transient" from "permanent" failures) and records every supervised call
to ``<dir>/calls.log`` as ``site:index`` lines, which the tests use to
assert exact execution counts.

``hang`` sleeps :func:`hang_seconds` — :data:`HANG_SECONDS` by default,
overridable per run via ``REPRO_FAULT_HANG_SECONDS`` so chaos schedules
and CI can use sub-second hangs against a short watchdog instead of the
30 s production constant.

``signal`` delivers a real SIGTERM to the current process, exercising
the graceful-shutdown path (:mod:`repro.runtime.signals`) at an exact,
reproducible site instead of an arbitrary wall-clock instant — that
determinism is what lets the chaos harness assert byte-identical resume
after "a SIGTERM anywhere".

:class:`InjectedFault` derives from ``BaseException`` on purpose: an
injected crash stands in for a SIGKILL / OOM of the whole process, so no
production ``except Exception`` fallback may swallow it.
"""

from __future__ import annotations

import os
import signal as _signal
import time
from pathlib import Path
from typing import Optional

#: Fault directive list (see module docstring).
FAULT_ENV = "REPRO_FAULT"
#: Directory for one-shot markers and the call log.
FAULT_STATE_ENV = "REPRO_FAULT_STATE"
#: Override for the injected-hang duration (seconds, float).
HANG_SECONDS_ENV = "REPRO_FAULT_HANG_SECONDS"
#: Default injected-hang sleep (far longer than any test timeout).
HANG_SECONDS = 30.0

_ACTIONS = ("crash", "hang", "corrupt", "disk_full", "signal")

#: Per-process call counters by site (counter-site directives only).
_counts: dict[str, int] = {}


class InjectedFault(BaseException):
    """An injected crash. BaseException so generic fallbacks can't eat it."""


def hang_seconds() -> float:
    """How long an injected hang sleeps (``REPRO_FAULT_HANG_SECONDS`` wins)."""
    raw = os.environ.get(HANG_SECONDS_ENV)
    if raw:
        try:
            return max(0.0, float(raw))
        except ValueError:
            raise ValueError(
                f"bad {HANG_SECONDS_ENV} value {raw!r}; expected seconds as a float"
            ) from None
    return HANG_SECONDS


def reset() -> None:
    """Clear per-process counters (test isolation)."""
    _counts.clear()


def _directives() -> list[tuple[str, str, Optional[int]]]:
    spec = os.environ.get(FAULT_ENV, "").strip()
    if not spec:
        return []
    out = []
    for item in spec.split(","):
        parts = item.strip().split(":")
        if len(parts) < 2 or parts[0] not in _ACTIONS:
            raise ValueError(f"bad {FAULT_ENV} directive {item!r}; "
                             "expected action:site[:K] with action in " + "/".join(_ACTIONS))
        out.append((parts[0], parts[1], int(parts[2]) if len(parts) > 2 else None))
    return out


def _trip_once(action: str, site: str, arg: Optional[int]) -> bool:
    """Whether this directive should fire now (one-shot under a state dir)."""
    state = os.environ.get(FAULT_STATE_ENV)
    if not state:
        return True
    marker = Path(state) / f"{action}-{site}-{arg}.tripped"
    marker.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _log_call(site: str, index: Optional[int]) -> None:
    state = os.environ.get(FAULT_STATE_ENV)
    if not state:
        return
    Path(state).mkdir(parents=True, exist_ok=True)
    line = f"{site}:{'' if index is None else index}\n".encode()
    # O_APPEND single write: atomic across concurrent worker processes.
    fd = os.open(Path(state) / "calls.log", os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def maybe_fail(site: str, index: Optional[int] = None) -> None:
    """Fire any crash/hang/signal directive aimed at ``site``; else no-op.

    ``index`` marks an indexed site (pool tasks); without it the site is
    counted per process and ``K`` means "after K clean calls".
    """
    _log_call(site, index)
    matching = [
        d for d in _directives() if d[1] == site and d[0] in ("crash", "hang", "signal")
    ]
    if not matching:
        return
    count = _counts.get(site, 0)
    _counts[site] = count + 1
    for action, _, arg in matching:
        if index is not None:
            hit = arg is None or arg == index
        else:
            hit = arg is None or count >= arg
        if not hit or not _trip_once(action, site, arg):
            continue
        if action == "crash":
            raise InjectedFault(
                f"injected crash at site {site!r} (call {count}, index {index})"
            )
        if action == "signal":
            # A real SIGTERM at a deterministic site: the graceful
            # handler (if installed) converts it into a stop request.
            os.kill(os.getpid(), _signal.SIGTERM)
            continue
        time.sleep(hang_seconds())


def maybe_corrupt(site: str, path: str | Path) -> None:
    """Fire a ``corrupt:<site>`` directive by truncating ``path`` in place."""
    matching = [d for d in _directives() if d[0] == "corrupt" and d[1] == site]
    if not matching:
        return
    key = f"corrupt:{site}"
    count = _counts.get(key, 0)
    _counts[key] = count + 1
    for _, _, arg in matching:
        if (arg is None or count >= arg) and _trip_once("corrupt", site, arg):
            corrupt_file(path)
            return


def maybe_disk_full(site: str) -> None:
    """Fire a ``disk_full:<site>`` directive by raising ENOSPC.

    Placed *before* durable writes (``RunJournal.record``,
    ``atomic_write``) so the chaos harness can simulate a full disk at
    an exact record boundary; the write paths guarantee that a raise
    here — like a real ENOSPC mid-write — never leaves a torn artifact.
    """
    matching = [d for d in _directives() if d[0] == "disk_full" and d[1] == site]
    if not matching:
        return
    from .atomic import DiskFullError  # local: atomic must not import faults

    key = f"disk_full:{site}"
    count = _counts.get(key, 0)
    _counts[key] = count + 1
    for _, _, arg in matching:
        if (arg is None or count >= arg) and _trip_once("disk_full", site, arg):
            raise DiskFullError(
                f"injected ENOSPC at site {site!r} (call {count})"
            )


def corrupt_file(path: str | Path, keep_fraction: float = 0.5) -> None:
    """Truncate ``path`` to a fraction of its size (simulates a torn write)."""
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(max(1, int(size * keep_fraction)))
