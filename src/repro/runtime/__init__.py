"""Fault-tolerant runtime: atomic writes, run journals, retry, faults,
deadlines, signals, and artifact integrity.

The paper's real workloads run for days (25 GPU-hours of training, up to
10^9 guesses per D&C-GEN campaign); this package makes that work durable
and governable:

* :mod:`~repro.runtime.atomic` — crash-safe file replacement and
  append streams with ENOSPC safe-abort, used by every checkpoint and
  output writer;
* :mod:`~repro.runtime.journal` — append-only JSONL journals that let an
  interrupted campaign resume byte-identically;
* :mod:`~repro.runtime.retry` — bounded retry/backoff (with seeded
  jitter) plus supervised pool execution where one bad worker costs only
  its own shards;
* :mod:`~repro.runtime.deadline` — cooperative wall-clock / guess /
  model-call budgets whose trip is a *graceful* stop at a durable
  boundary;
* :mod:`~repro.runtime.signals` — SIGTERM/SIGINT → graceful-stop
  conversion (one-shot; second signal hard-exits);
* :mod:`~repro.runtime.integrity` — checksum manifests, journal
  scanning/repair, checkpoint verification (``repro verify``);
* :mod:`~repro.runtime.faults` — injection hooks (crash / hang /
  corrupt / disk_full / signal) that the fault-tolerance and chaos
  harnesses drive.
"""

from .atomic import (
    AppendStream,
    DiskFullError,
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
    ensure_free_space,
)
from .deadline import Budget, CampaignInterrupted
from .faults import (
    FAULT_ENV,
    FAULT_STATE_ENV,
    InjectedFault,
    corrupt_file,
    hang_seconds,
    maybe_corrupt,
    maybe_disk_full,
    maybe_fail,
)
from .integrity import (
    Finding,
    repair_journal,
    scan_journal,
    verify_manifest,
    verify_paths,
    write_manifest,
)
from .journal import JournalError, RunJournal, file_digest
from .retry import RetryPolicy, retry_call, supervised_map
from . import signals

__all__ = [
    "AppendStream",
    "DiskFullError",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "ensure_free_space",
    "Budget",
    "CampaignInterrupted",
    "FAULT_ENV",
    "FAULT_STATE_ENV",
    "InjectedFault",
    "corrupt_file",
    "hang_seconds",
    "maybe_corrupt",
    "maybe_disk_full",
    "maybe_fail",
    "Finding",
    "repair_journal",
    "scan_journal",
    "verify_manifest",
    "verify_paths",
    "write_manifest",
    "JournalError",
    "RunJournal",
    "file_digest",
    "RetryPolicy",
    "retry_call",
    "supervised_map",
    "signals",
]
