"""Fault-tolerant runtime: atomic writes, run journals, retry, faults.

The paper's real workloads run for days (25 GPU-hours of training, up to
10^9 guesses per D&C-GEN campaign); this package makes that work durable:

* :mod:`~repro.runtime.atomic` — crash-safe file replacement, used by
  every checkpoint and output writer;
* :mod:`~repro.runtime.journal` — append-only JSONL journals that let an
  interrupted campaign resume byte-identically;
* :mod:`~repro.runtime.retry` — bounded retry/backoff plus supervised
  pool execution where one bad worker costs only its own shards;
* :mod:`~repro.runtime.faults` — injection hooks (crash / hang /
  corrupt) that the fault-tolerance tests drive.
"""

from .atomic import AppendStream, atomic_write, atomic_write_bytes, atomic_write_text
from .faults import (
    FAULT_ENV,
    FAULT_STATE_ENV,
    InjectedFault,
    corrupt_file,
    maybe_corrupt,
    maybe_fail,
)
from .journal import JournalError, RunJournal, file_digest
from .retry import RetryPolicy, retry_call, supervised_map

__all__ = [
    "AppendStream",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "FAULT_ENV",
    "FAULT_STATE_ENV",
    "InjectedFault",
    "corrupt_file",
    "maybe_corrupt",
    "maybe_fail",
    "JournalError",
    "RunJournal",
    "file_digest",
    "RetryPolicy",
    "retry_call",
    "supervised_map",
]
