"""Artifact integrity: checksum manifests, journal scanning, repair.

A campaign leaves artifacts behind — model checkpoints (npz), run
journals (JSONL), guess output files — and a days-long run is only
trustworthy if those artifacts can be *verified* after the fact: bit-rot,
torn tails from a hard kill, or an operator pairing a journal with the
wrong run must be detected, never silently accepted.  This module is the
engine behind ``repro verify``:

* :func:`write_manifest` / :func:`verify_manifest` — a JSON checksum
  manifest (full sha256 + size per file) written next to campaign
  artifacts; verification reports missing files, size drift, and digest
  mismatches.  Journals additionally pin their header identity digest in
  the manifest, so swapping in a journal from a *different* run is
  flagged as a run-identity conflict even when the file itself is
  internally consistent.
* :func:`scan_journal` — structural validation of a run journal without
  opening it for writing: header presence/format, per-record digests,
  and torn tails (every line from the first unparsable or
  digest-mismatched record onward is untrusted).
* :func:`repair_journal` — truncates a torn journal back to its last
  valid record via an atomic rewrite, which is exactly the prefix
  :class:`~repro.runtime.journal.RunJournal.open` would trust anyway;
  repair makes that recovery explicit and releases the dead bytes.
* :func:`verify_checkpoint` — readability check for npz checkpoints
  (truncated/corrupt archives surface as findings, not tracebacks).

Every problem is reported as a :class:`Finding` — a machine-readable
record with a severity, a stable ``kind``, the path, and structured
data — so tooling (CI gates, the chaos harness, a future serving layer)
can act on results without parsing prose.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

from .atomic import atomic_write_text
from .journal import FORMAT_VERSION, RunJournal, _digest

MANIFEST_VERSION = 1

#: Conventional manifest filename written next to campaign artifacts.
MANIFEST_NAME = "MANIFEST.json"

SEVERITIES = ("error", "warning", "info")


@dataclass
class Finding:
    """One verification result: machine-readable, severity-ranked.

    ``kind`` is a stable identifier (``torn_tail``, ``digest_mismatch``,
    ``header_conflict``, ``bad_header``, ``missing_file``,
    ``unreadable_checkpoint``, ``repaired``, ``unrepairable``…);
    ``data`` carries kind-specific structured detail (offsets, counts,
    expected/actual digests).
    """

    severity: str
    kind: str
    path: str
    detail: str
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "kind": self.kind,
            "path": str(self.path),
            "detail": self.detail,
            "data": self.data,
        }


def sha256_file(path: str | Path) -> str:
    """Full sha256 hex digest of a file, streamed (artifacts can be GBs)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


# ----------------------------------------------------------------------
# Journal scanning and repair
# ----------------------------------------------------------------------

def _scan_journal_bytes(raw: bytes) -> dict:
    """Parse journal bytes, tracking the byte offset of the valid prefix."""
    header: Optional[dict] = None
    header_ok = False
    records = 0
    valid_bytes = 0
    offset = 0
    bad_line: Optional[int] = None
    lines = raw.split(b"\n")
    # split() leaves a trailing empty element iff raw ends with a newline.
    if lines and lines[-1] == b"":
        lines.pop()
    for lineno, line in enumerate(lines):
        line_end = offset + len(line) + 1  # +1 for the newline
        rec = RunJournal._decode(line.decode("utf-8", errors="replace"))
        if rec is None:
            bad_line = lineno
            break
        if lineno == 0:
            if rec.get("kind") != "header" or rec.get("format") != FORMAT_VERSION:
                bad_line = 0
                break
            header = rec["payload"]
            header_ok = True
        else:
            records += 1
        valid_bytes = min(line_end, len(raw))
        offset = line_end
    return {
        "header": header,
        "header_ok": header_ok,
        "records": records,
        "valid_bytes": valid_bytes,
        "total_bytes": len(raw),
        "total_lines": len(lines),
        "bad_line": bad_line,
    }


def scan_journal(path: str | Path, expected_header: Optional[dict] = None) -> list[Finding]:
    """Validate a journal file structurally; one :class:`Finding` per problem.

    Reports ``missing_file``, ``bad_header`` (no parseable format-pinned
    header — unrepairable), ``torn_tail`` (one or more trailing lines
    failed parsing or digest check; ``data`` carries the valid byte
    prefix a repair would keep), and — when ``expected_header`` is given —
    ``header_conflict`` for a journal that belongs to a different run.
    A clean journal yields no findings.
    """
    path = Path(path)
    if not path.exists():
        return [Finding("error", "missing_file", str(path), "journal file does not exist")]
    raw = path.read_bytes()
    scan = _scan_journal_bytes(raw)
    findings: list[Finding] = []
    if not scan["header_ok"]:
        return [
            Finding(
                "error",
                "bad_header",
                str(path),
                f"no format-{FORMAT_VERSION} header on line 1; "
                "journal is unusable and cannot be repaired",
                {"total_lines": scan["total_lines"]},
            )
        ]
    if scan["bad_line"] is not None:
        dropped = scan["total_lines"] - scan["bad_line"]
        findings.append(
            Finding(
                "error",
                "torn_tail",
                str(path),
                f"line {scan['bad_line'] + 1} fails parse/digest check; "
                f"{dropped} trailing line(s) untrusted "
                f"({scan['records']} valid record(s) kept)",
                {
                    "first_bad_line": scan["bad_line"],
                    "dropped_lines": dropped,
                    "valid_records": scan["records"],
                    "valid_bytes": scan["valid_bytes"],
                    "total_bytes": scan["total_bytes"],
                },
            )
        )
    if expected_header is not None and scan["header"] != expected_header:
        findings.append(
            Finding(
                "error",
                "header_conflict",
                str(path),
                "journal header identifies a different run",
                {"journal_header": scan["header"], "expected_header": expected_header},
            )
        )
    return findings


def repair_journal(path: str | Path) -> list[Finding]:
    """Truncate a torn journal to its last valid record (atomic rewrite).

    Returns the post-repair findings: a ``repaired`` info finding for a
    recovered torn tail, an ``unrepairable`` error when there is no valid
    header to keep, and nothing for an already-clean journal.
    """
    path = Path(path)
    findings = scan_journal(path)
    out: list[Finding] = []
    for f in findings:
        if f.kind == "torn_tail":
            raw = path.read_bytes()
            atomic_write_text(path, raw[: f.data["valid_bytes"]].decode("utf-8"))
            out.append(
                Finding(
                    "info",
                    "repaired",
                    str(path),
                    f"truncated {f.data['dropped_lines']} torn line(s) "
                    f"({f.data['total_bytes'] - f.data['valid_bytes']} bytes); "
                    f"{f.data['valid_records']} record(s) retained",
                    dict(f.data),
                )
            )
        elif f.kind in ("bad_header", "missing_file"):
            out.append(
                Finding(
                    "error",
                    "unrepairable",
                    str(path),
                    f"cannot repair: {f.detail}",
                    dict(f.data),
                )
            )
        else:
            out.append(f)
    return out


def journal_header_digest(path: str | Path) -> Optional[str]:
    """Digest of a journal's header payload (its run identity), if readable."""
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return None
    scan = _scan_journal_bytes(raw)
    if not scan["header_ok"]:
        return None
    return _digest(scan["header"])


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------

def verify_checkpoint(path: str | Path) -> list[Finding]:
    """Readability check for an npz checkpoint (no module required)."""
    from ..nn.serialization import CheckpointError, _load_npz  # lazy: nn imports runtime

    path = Path(path)
    if not path.exists():
        return [Finding("error", "missing_file", str(path), "checkpoint does not exist")]
    try:
        _load_npz(path)
    except CheckpointError as exc:
        return [
            Finding(
                "error",
                "unreadable_checkpoint",
                str(path),
                str(exc),
            )
        ]
    return []


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------

def _is_journal(path: Path) -> bool:
    """Journal detection: name convention, or content sniff for any other
    ``.jsonl`` file (operators name journals freely — ``run.jsonl`` is
    the README's own example — and a misnamed journal silently skipped
    is exactly the kind of gap this module exists to close)."""
    if not path.name.endswith(".jsonl"):
        return False
    if "journal" in path.name:
        return True
    try:
        with open(path, "rb") as fh:
            first = fh.readline(4096)
    except OSError:
        return False
    try:
        record = json.loads(first.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return False
    return isinstance(record, dict) and record.get("kind") == "header"


def write_manifest(
    manifest_path: str | Path,
    files: Iterable[str | Path],
    run: Optional[dict[str, Any]] = None,
) -> dict:
    """Write a checksum manifest covering ``files`` (atomic; returns it).

    Paths are stored relative to the manifest's directory when possible
    so an artifact tree can be moved wholesale.  Journal entries also pin
    the journal's header-identity digest, letting verification detect a
    journal swapped in from a different run.  ``run`` is free-form run
    metadata stored verbatim (seed, strategy, …).
    """
    manifest_path = Path(manifest_path)
    root = manifest_path.parent.resolve()
    entries: dict[str, dict] = {}
    for p in files:
        p = Path(p)
        try:
            key = str(p.resolve().relative_to(root))
        except ValueError:
            key = str(p.resolve())
        entry = {"sha256": sha256_file(p), "bytes": p.stat().st_size}
        if _is_journal(p):
            hd = journal_header_digest(p)
            if hd is not None:
                entry["journal_header"] = hd
        entries[key] = entry
    manifest = {"format": MANIFEST_VERSION, "files": entries}
    if run:
        manifest["run"] = dict(run)
    atomic_write_text(
        manifest_path, json.dumps(manifest, sort_keys=True, indent=2) + "\n"
    )
    return manifest


def load_manifest(manifest_path: str | Path) -> dict:
    manifest = json.loads(Path(manifest_path).read_text(encoding="utf-8"))
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_VERSION:
        raise ValueError(
            f"{manifest_path} is not a format-{MANIFEST_VERSION} integrity manifest"
        )
    return manifest


def verify_manifest(manifest_path: str | Path) -> list[Finding]:
    """Check every manifest entry: existence, size, digest, run identity."""
    manifest_path = Path(manifest_path)
    if not manifest_path.exists():
        return [Finding("error", "missing_file", str(manifest_path), "manifest does not exist")]
    try:
        manifest = load_manifest(manifest_path)
    except (ValueError, json.JSONDecodeError) as exc:
        return [Finding("error", "bad_manifest", str(manifest_path), str(exc))]
    root = manifest_path.parent
    findings: list[Finding] = []
    for key, entry in sorted(manifest.get("files", {}).items()):
        path = Path(key) if Path(key).is_absolute() else root / key
        if not path.exists():
            findings.append(
                Finding("error", "missing_file", str(path), "listed in manifest but absent")
            )
            continue
        size = path.stat().st_size
        if size != entry.get("bytes"):
            findings.append(
                Finding(
                    "error",
                    "size_mismatch",
                    str(path),
                    f"size {size} != manifest {entry.get('bytes')}",
                    {"actual": size, "expected": entry.get("bytes")},
                )
            )
        digest = sha256_file(path)
        if digest != entry.get("sha256"):
            findings.append(
                Finding(
                    "error",
                    "digest_mismatch",
                    str(path),
                    "content digest does not match manifest",
                    {"actual": digest, "expected": entry.get("sha256")},
                )
            )
        if "journal_header" in entry:
            hd = journal_header_digest(path)
            if hd != entry["journal_header"]:
                findings.append(
                    Finding(
                        "error",
                        "header_conflict",
                        str(path),
                        "journal run identity does not match the manifest "
                        "(journal from a different run?)",
                        {"actual": hd, "expected": entry["journal_header"]},
                    )
                )
    return findings


# ----------------------------------------------------------------------
# Top-level dispatch
# ----------------------------------------------------------------------

def verify_paths(paths: Iterable[str | Path], repair: bool = False) -> list[Finding]:
    """Verify a mixed list of artifacts, dispatching on type.

    Directories are walked for manifests, journals, and checkpoints.
    Manifests are verified entry-by-entry, ``*journal*.jsonl`` files are
    scanned (and, with ``repair=True``, torn tails truncated — repairs
    are reported as ``repaired`` info findings), ``.npz`` files get the
    checkpoint readability check, and anything else is reported as
    ``skipped`` (only a manifest can vouch for opaque content).
    """
    expanded: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            found = sorted(
                q
                for q in p.rglob("*")
                if q.is_file()
                and (q.name == MANIFEST_NAME or q.suffix == ".npz" or _is_journal(q))
            )
            expanded.extend(found if found else [p])
        else:
            expanded.append(p)

    findings: list[Finding] = []
    for path in expanded:
        if path.is_dir():
            findings.append(
                Finding("warning", "empty_dir", str(path), "no verifiable artifacts found")
            )
        elif path.name == MANIFEST_NAME or path.name.endswith(".manifest.json"):
            # Substantive findings first; the "checked" marker trails so
            # the worst news leads both human and --json output.
            findings.extend(verify_manifest(path))
            findings.append(Finding("info", "checked", str(path), "manifest"))
        elif _is_journal(path):
            if repair:
                findings.extend(repair_journal(path))
            else:
                findings.extend(scan_journal(path))
            findings.append(Finding("info", "checked", str(path), "journal"))
        elif path.suffix == ".npz":
            findings.extend(verify_checkpoint(path))
            findings.append(Finding("info", "checked", str(path), "checkpoint"))
        elif not path.exists():
            findings.append(Finding("error", "missing_file", str(path), "no such file"))
        else:
            findings.append(
                Finding(
                    "info",
                    "skipped",
                    str(path),
                    "no structural check for this file type (cover it with a manifest)",
                )
            )
    return findings
