"""Bounded retry with exponential backoff and pool-task supervision.

Two layers:

* :func:`retry_call` — the generic primitive: call a function, retry
  transient failures with capped exponential backoff.
* :func:`supervised_map` — fault-tolerant replacement for ``pool.map``:
  tasks are streamed through ``imap_unordered`` with a pending-task
  tracker, so one failed or hung task costs only its own re-execution.
  Completed results are **never** discarded.  A task that keeps failing
  after ``max_retries`` resubmissions runs serially in the parent as a
  last resort (with a ``RuntimeWarning``), so the run still completes.

A hung worker is detected by ``task_timeout``: when no result arrives in
time the pool is terminated (the only way to reclaim a wedged worker
process) and every still-pending task is resubmitted to a fresh pool.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving a task up to the serial fallback.

    ``max_retries`` counts *re*-submissions (0 = single attempt).
    Backoff before retry round ``r`` (1-based) is
    ``min(backoff_max, backoff_base * backoff_factor**(r-1))`` — no
    jitter, so test runs stay deterministic.  ``task_timeout`` is the
    per-result wait in seconds; ``None`` waits forever (no hang
    detection).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive or None")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry round ``attempt`` (1-based)."""
        return min(self.backoff_max, self.backoff_base * self.backoff_factor ** (attempt - 1))


def retry_call(
    fn: Callable[[], Any],
    policy: RetryPolicy = RetryPolicy(),
    retryable: tuple[type[BaseException], ...] = (Exception,),
    on_error: Optional[Callable[[int, BaseException], None]] = None,
) -> Any:
    """Call ``fn`` with bounded retry; re-raises the last error when spent."""
    for attempt in range(policy.max_retries + 1):
        try:
            return fn()
        except retryable as exc:
            if on_error is not None:
                on_error(attempt, exc)
            if attempt == policy.max_retries:
                raise
            time.sleep(policy.backoff(attempt + 1))


def supervised_map(
    pool_factory: Callable[[], Any],
    guarded: Callable[[int], tuple[int, bool, Any]],
    n_tasks: int,
    policy: RetryPolicy = RetryPolicy(),
    serial_fn: Optional[Callable[[int], Any]] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    context: str = "parallel execution",
) -> list:
    """Fault-tolerant ``pool.map`` over task indices ``0..n_tasks-1``.

    ``guarded`` runs in the workers and must return ``(index, ok,
    value_or_error)`` instead of raising — that keeps per-task failures
    attributable.  ``on_result`` fires in the parent exactly once per
    task, as results arrive (unordered); journal writers hook in here so
    completed work is durable the moment it exists.  ``serial_fn`` is the
    in-parent last resort for tasks whose retries are exhausted.

    Returns results ordered by task index.

    Every supervision decision is also emitted as a structured telemetry
    event (no-ops without an active session): ``task_failed`` per failed
    attempt — with the task index and exception repr, so post-mortems
    never require a rerun — ``task_recovered`` when a previously-failed
    task finally delivers, ``pool_rebuild`` on hung-pool replacement, and
    ``serial_fallback`` per exhausted task run in the parent.
    """
    from .. import telemetry  # lazy: runtime is imported during telemetry init

    registry = telemetry.get_registry()
    results: dict[int, Any] = {}
    pending = set(range(n_tasks))
    last_error: dict[int, str] = {}
    failed: set[int] = set()
    pool = None

    def deliver(index: int, value: Any) -> None:
        pending.discard(index)
        results[index] = value
        if index in failed:
            failed.discard(index)
            registry.counter("retry.tasks_recovered").inc()
            telemetry.emit("task_recovered", context=context, task=index)
        if on_result is not None:
            on_result(index, value)

    def record_failure(index: int, error: str, attempt: int) -> None:
        last_error[index] = error
        failed.add(index)
        registry.counter("retry.task_failures").inc()
        telemetry.emit(
            "task_failed",
            level="warning",
            context=context,
            task=index,
            error=error,
            attempt=attempt,
        )

    try:
        for attempt in range(policy.max_retries + 1):
            if not pending:
                break
            if attempt:
                time.sleep(policy.backoff(attempt))
            if pool is None:
                pool = pool_factory()
            submit = sorted(pending)
            stream = pool.imap_unordered(guarded, submit)
            timed_out = False
            for _ in submit:
                try:
                    if policy.task_timeout is None:
                        index, ok, value = next(stream)
                    else:
                        index, ok, value = stream.next(policy.task_timeout)
                except mp.TimeoutError:
                    timed_out = True
                    break
                if ok:
                    deliver(index, value)
                else:
                    record_failure(index, value, attempt)
            if timed_out:
                # A wedged worker can only be reclaimed by killing the
                # pool; completed results are already delivered, only
                # pending tasks go around again.
                pool.terminate()
                pool.join()
                pool = None
                registry.counter("retry.pool_rebuilds").inc()
                telemetry.emit(
                    "pool_rebuild",
                    level="warning",
                    context=context,
                    pending=sorted(pending),
                    attempt=attempt,
                )
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()

    if pending:
        if serial_fn is None:
            raise RuntimeError(
                f"{context}: {len(pending)} task(s) failed after "
                f"{policy.max_retries + 1} attempt(s): {sorted(pending)}"
            )
        causes = "; ".join(
            f"task {i}: {last_error.get(i, 'timed out')}" for i in sorted(pending)[:3]
        )
        warnings.warn(
            f"{context}: {len(pending)} task(s) failed after "
            f"{policy.max_retries + 1} attempt(s) ({causes}); "
            "falling back to serial execution for those tasks",
            RuntimeWarning,
            stacklevel=2,
        )
        for index in sorted(pending):
            registry.counter("retry.serial_fallbacks").inc()
            telemetry.emit(
                "serial_fallback",
                level="warning",
                context=context,
                task=index,
                error=last_error.get(index, "timed out"),
            )
            deliver(index, serial_fn(index))
    return [results[i] for i in range(n_tasks)]
