"""Bounded retry with exponential backoff and pool-task supervision.

Two layers:

* :func:`retry_call` — the generic primitive: call a function, retry
  transient failures with capped exponential backoff.
* :func:`supervised_map` — fault-tolerant replacement for ``pool.map``:
  tasks are streamed through ``imap_unordered`` with a pending-task
  tracker, so one failed or hung task costs only its own re-execution.
  Completed results are **never** discarded.  A task that keeps failing
  after ``max_retries`` resubmissions runs serially in the parent as a
  last resort (with a ``RuntimeWarning``), so the run still completes.

A hung worker is detected by ``task_timeout``: when no result arrives in
time the pool is terminated (the only way to reclaim a wedged worker
process) and every still-pending task is resubmitted to a fresh pool.
The timeout can be set fleet-wide via the ``REPRO_TASK_TIMEOUT``
environment variable, which fills in any policy constructed without an
explicit value — chaos runs and CI use this to pair short injected hangs
with a short watchdog.  A value of ``0`` explicitly disables the
watchdog; negative, non-finite, or non-numeric values raise
``ValueError`` at policy construction instead of leaking into pool
waits.

``supervised_map`` also accepts a ``stop`` callable (typically
``Budget.stopper(...)`` from :mod:`repro.runtime.deadline`): it is
polled while *waiting* for worker results, so a deadline or a delivered
SIGTERM interrupts a campaign even when every worker is busy on a long
task.  The raise propagates after completed results have been delivered
(and therefore journaled), and the pool is terminated on the way out —
workers killed mid-task are reaped, and their unjournaled tasks are
exactly the ones a ``--resume`` re-executes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import random
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Optional

#: Fleet-wide default for ``RetryPolicy.task_timeout`` (seconds, float).
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: How often the ``stop`` callable is polled while waiting on workers.
STOP_POLL_INTERVAL = 0.1


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving a task up to the serial fallback.

    ``max_retries`` counts *re*-submissions (0 = single attempt).
    Backoff before retry round ``r`` (1-based) is
    ``min(backoff_max, backoff_base * backoff_factor**(r-1))``, scaled
    by a deterministic jitter factor drawn uniformly from
    ``[1-jitter, 1+jitter]`` when ``jitter`` > 0.  The draw is seeded by
    ``(jitter_seed, r)``, so two policies with the same seed produce the
    same backoff sequence — serving-layer retries get decorrelated
    sleeps without breaking byte-identical test replays.

    ``task_timeout`` is the per-result wait in seconds; ``None`` falls
    back to the ``REPRO_TASK_TIMEOUT`` environment variable, and failing
    that waits forever (no hang detection).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.0
    jitter_seed: int = 0
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.task_timeout is None:
            env = os.environ.get(TASK_TIMEOUT_ENV)
            if env is not None and env.strip():
                try:
                    timeout = float(env)
                except ValueError:
                    raise ValueError(
                        f"bad {TASK_TIMEOUT_ENV} value {env!r}; expected seconds as a float"
                    ) from None
                if timeout < 0 or timeout != timeout or timeout in (float("inf"),):
                    raise ValueError(
                        f"bad {TASK_TIMEOUT_ENV} value {env!r}; must be a finite "
                        "number of seconds >= 0 (0 disables the hang watchdog)"
                    )
                if timeout > 0:
                    # frozen dataclass: the env fallback is part of
                    # construction; 0 means "watchdog disabled" and keeps
                    # the None default (wait forever) instead of leaking a
                    # zero-second wait into every pool poll.
                    object.__setattr__(self, "task_timeout", timeout)
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive or None")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry round ``attempt`` (1-based), jitter applied."""
        base = min(self.backoff_max, self.backoff_base * self.backoff_factor ** (attempt - 1))
        if self.jitter == 0.0:
            return base
        # Seeded per (policy seed, attempt): deterministic, replayable,
        # but decorrelated across retriers with different seeds.
        rng = random.Random(self.jitter_seed * 1_000_003 + attempt)
        return base * (1.0 - self.jitter + 2.0 * self.jitter * rng.random())


def retry_call(
    fn: Callable[[], Any],
    policy: RetryPolicy = RetryPolicy(),
    retryable: tuple[type[BaseException], ...] = (Exception,),
    on_error: Optional[Callable[[int, BaseException], None]] = None,
) -> Any:
    """Call ``fn`` with bounded retry; re-raises the last error when spent."""
    for attempt in range(policy.max_retries + 1):
        try:
            return fn()
        except retryable as exc:
            if on_error is not None:
                on_error(attempt, exc)
            if attempt == policy.max_retries:
                raise
            time.sleep(policy.backoff(attempt + 1))


def _next_result(stream, timeout: Optional[float], stop: Optional[Callable[[], None]]):
    """One result from ``stream``, honouring the hang watchdog and ``stop``.

    Without ``stop`` this is the plain single wait.  With it, the wait is
    sliced into :data:`STOP_POLL_INTERVAL` chunks with ``stop()`` polled
    between slices, while a wall-clock deadline preserves the watchdog
    semantics (``mp.TimeoutError`` after ``timeout`` seconds total).
    """
    if stop is None:
        if timeout is None:
            return next(stream)
        return stream.next(timeout)
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        stop()
        wait = STOP_POLL_INTERVAL
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise mp.TimeoutError(f"no result within {timeout}s")
            wait = min(wait, remaining)
        try:
            return stream.next(wait)
        except mp.TimeoutError:
            if deadline is not None and time.monotonic() >= deadline:
                raise


def supervised_map(
    pool_factory: Callable[[], Any],
    guarded: Callable[[int], tuple[int, bool, Any]],
    n_tasks: int,
    policy: RetryPolicy = RetryPolicy(),
    serial_fn: Optional[Callable[[int], Any]] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    context: str = "parallel execution",
    stop: Optional[Callable[[], None]] = None,
) -> list:
    """Fault-tolerant ``pool.map`` over task indices ``0..n_tasks-1``.

    ``guarded`` runs in the workers and must return ``(index, ok,
    value_or_error)`` instead of raising — that keeps per-task failures
    attributable.  ``on_result`` fires in the parent exactly once per
    task, as results arrive (unordered); journal writers hook in here so
    completed work is durable the moment it exists.  ``serial_fn`` is the
    in-parent last resort for tasks whose retries are exhausted.

    ``stop`` (optional) is polled while waiting for results; it should
    raise to interrupt the map (see
    :meth:`repro.runtime.deadline.Budget.stopper`).  On any raise — from
    ``stop``, ``on_result``, or a delivered signal — the pool is
    terminated and joined before the exception propagates, so worker
    processes killed mid-task are always reaped and every *delivered*
    result has already been handed to ``on_result``.

    Returns results ordered by task index.

    Every supervision decision is also emitted as a structured telemetry
    event (no-ops without an active session): ``task_failed`` per failed
    attempt — with the task index and exception repr, so post-mortems
    never require a rerun — ``task_recovered`` when a previously-failed
    task finally delivers, ``pool_rebuild`` on hung-pool replacement, and
    ``serial_fallback`` per exhausted task run in the parent.
    """
    from .. import telemetry  # lazy: runtime is imported during telemetry init

    registry = telemetry.get_registry()
    results: dict[int, Any] = {}
    pending = set(range(n_tasks))
    last_error: dict[int, str] = {}
    failed: set[int] = set()
    pool = None

    def deliver(index: int, value: Any) -> None:
        pending.discard(index)
        results[index] = value
        if index in failed:
            failed.discard(index)
            registry.counter("retry.tasks_recovered").inc()
            telemetry.emit("task_recovered", context=context, task=index)
        if on_result is not None:
            on_result(index, value)

    def record_failure(index: int, error: str, attempt: int) -> None:
        last_error[index] = error
        failed.add(index)
        registry.counter("retry.task_failures").inc()
        telemetry.emit(
            "task_failed",
            level="warning",
            context=context,
            task=index,
            error=error,
            attempt=attempt,
        )

    try:
        for attempt in range(policy.max_retries + 1):
            if not pending:
                break
            if stop is not None:
                stop()
            if attempt:
                time.sleep(policy.backoff(attempt))
            if pool is None:
                pool = pool_factory()
            submit = sorted(pending)
            stream = pool.imap_unordered(guarded, submit)
            timed_out = False
            for _ in submit:
                try:
                    index, ok, value = _next_result(stream, policy.task_timeout, stop)
                except mp.TimeoutError:
                    timed_out = True
                    break
                if ok:
                    deliver(index, value)
                else:
                    record_failure(index, value, attempt)
            if timed_out:
                # A wedged worker can only be reclaimed by killing the
                # pool; completed results are already delivered, only
                # pending tasks go around again.
                pool.terminate()
                pool.join()
                pool = None
                registry.counter("retry.pool_rebuilds").inc()
                telemetry.emit(
                    "pool_rebuild",
                    level="warning",
                    context=context,
                    pending=sorted(pending),
                    attempt=attempt,
                )
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()

    if pending:
        if serial_fn is None:
            raise RuntimeError(
                f"{context}: {len(pending)} task(s) failed after "
                f"{policy.max_retries + 1} attempt(s): {sorted(pending)}"
            )
        causes = "; ".join(
            f"task {i}: {last_error.get(i, 'timed out')}" for i in sorted(pending)[:3]
        )
        warnings.warn(
            f"{context}: {len(pending)} task(s) failed after "
            f"{policy.max_retries + 1} attempt(s) ({causes}); "
            "falling back to serial execution for those tasks",
            RuntimeWarning,
            stacklevel=2,
        )
        for index in sorted(pending):
            if stop is not None:
                stop()
            registry.counter("retry.serial_fallbacks").inc()
            telemetry.emit(
                "serial_fallback",
                level="warning",
                context=context,
                task=index,
                error=last_error.get(index, "timed out"),
            )
            deliver(index, serial_fn(index))
    return [results[i] for i in range(n_tasks)]
