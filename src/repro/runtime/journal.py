"""Append-only JSONL run journal: the unit of crash-safe progress.

A journal records one line per completed unit of work — a D&C-GEN leaf
batch, a free-generation chunk, a training epoch — keyed by a stable
``task_id`` and guarded by a content digest.  An interrupted run resumes
by reopening its journal, skipping every journaled task, and re-executing
only the rest; because every task draws its randomness from
``(base_seed, task_id)``, the merged result is byte-identical to an
uninterrupted run.

File format (one JSON object per line)::

    {"kind": "header", "format": 1, "payload": {...run identity...}, "digest": "…"}
    {"kind": "leaf_batch", "task_id": 0, "payload": {...}, "digest": "…"}
    ...

Records are flushed and fsynced as they are appended.  On open, reading
stops at the first unparsable or digest-mismatched line (the torn tail a
crash mid-append can leave); everything before it is trusted, everything
after it is discarded and will be recomputed.

The header pins the run's identity (seed, totals, a digest of the task
plan).  Resuming against a journal whose header differs raises
:class:`JournalError` — silently merging two different runs would corrupt
the output.  Worker count is deliberately *not* part of the identity: a
campaign may crash on 4 workers and resume on 1.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional

from .atomic import AppendStream

FORMAT_VERSION = 1


class JournalError(RuntimeError):
    """Raised for unusable journals: bad header, or header/run mismatch."""


def _digest(obj: Any) -> str:
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def file_digest(path: str | Path) -> str:
    """Short sha256 digest of a file's bytes (journaled with checkpoints)."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()[:16]


class RunJournal:
    """One run's append-only journal. Use :meth:`attach` / :meth:`open`."""

    def __init__(self, path: Path, header: dict, records: dict, recovered: int) -> None:
        self.path = path
        #: Run-identity dict written as the first line.
        self.header = header
        #: Lines dropped on open because of a torn/corrupt tail.
        self.recovered_tail = recovered
        self._records: dict[tuple[str, int], Any] = records
        # AppendStream appends each record with a single O_APPEND write(2)
        # and rolls back partial lines on ENOSPC, so a full disk can stop
        # the journal at a record boundary but never tear it.
        self._stream = AppendStream(path)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | Path, header: dict) -> "RunJournal":
        """Start a fresh journal at ``path`` (truncates any existing file)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = cls._encode({"kind": "header", "format": FORMAT_VERSION, "payload": header})
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        return cls(path, header, {}, recovered=0)

    @classmethod
    def open(cls, path: str | Path) -> "RunJournal":
        """Reopen an existing journal, recovering a torn tail if present.

        Recovery is physical, not just logical: the torn bytes are
        truncated away before the journal is reopened for appending, so
        a new record can never concatenate onto a partial line (which
        would silently invalidate it on the *next* open).
        """
        path = Path(path)
        raw = path.read_bytes()
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        header: Optional[dict] = None
        records: dict[tuple[str, int], Any] = {}
        good = 0
        valid_bytes = 0
        offset = 0
        for line in lines:
            line_end = offset + len(line) + 1  # +1 for the newline
            rec = cls._decode(line.decode("utf-8", errors="replace"))
            if rec is None:
                break  # torn/corrupt tail: trust nothing from here on
            if good == 0:
                if rec.get("kind") != "header" or rec.get("format") != FORMAT_VERSION:
                    raise JournalError(f"{path} does not start with a format-{FORMAT_VERSION} header")
                header = rec["payload"]
            else:
                records[(rec["kind"], int(rec["task_id"]))] = rec["payload"]
            good += 1
            valid_bytes = min(line_end, len(raw))
            offset = line_end
        if header is None:
            raise JournalError(f"{path} has no readable header")
        if valid_bytes < len(raw):
            with open(path, "r+b") as fh:
                fh.truncate(valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        return cls(path, header, records, recovered=len(lines) - good)

    #: Header key reserved for the pinned telemetry trace.  It names the
    #: *observation* of a run, not its identity: a resumed process has a
    #: fresh trace ref (or none, if re-run without telemetry), yet must
    #: still attach — it then *adopts* the stored trace so its spans
    #: rejoin the original tree (:func:`repro.telemetry.rejoin_trace`).
    TRACE_HEADER_KEY = "trace"

    @classmethod
    def attach(cls, path: str | Path, header: dict, resume: bool = False) -> "RunJournal":
        """Open-and-validate when resuming, otherwise start fresh.

        On resume the stored header must equal ``header`` exactly
        (excluding :data:`TRACE_HEADER_KEY`); a mismatch means the
        journal belongs to a different run.
        """
        path = Path(path)

        def identity(h: dict) -> dict:
            return {k: v for k, v in h.items() if k != cls.TRACE_HEADER_KEY}

        if resume and path.exists():
            journal = cls.open(path)
            if identity(journal.header) != identity(header):
                stored = journal.header
                journal.close()
                keys = sorted(set(identity(stored)) | set(identity(header)))
                diffs = ", ".join(
                    f"{k}: journal={stored.get(k)!r} != run={header.get(k)!r}"
                    for k in keys
                    if stored.get(k) != header.get(k)
                )
                raise JournalError(
                    f"cannot resume from {path}: journal belongs to a different run "
                    f"(mismatched header fields — {diffs})"
                )
            return journal
        return cls.create(path, header)

    # ------------------------------------------------------------------
    # Record I/O
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(rec: dict) -> str:
        rec = dict(rec)
        rec["digest"] = _digest([rec.get("kind"), rec.get("task_id"), rec.get("payload")])
        return json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"

    @staticmethod
    def _decode(line: str) -> Optional[dict]:
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(rec, dict):
            return None
        expected = _digest([rec.get("kind"), rec.get("task_id"), rec.get("payload")])
        if rec.get("digest") != expected:
            return None
        return rec

    def record(self, kind: str, task_id: int, payload: Any) -> None:
        """Append one completed task; durable once this returns.

        A full disk (real or injected via ``disk_full:journal``) raises
        :class:`~repro.runtime.atomic.DiskFullError` *before* any bytes
        land, or rolls a partial line back — either way the journal stays
        valid and the unit of work is simply not recorded, so a resumed
        run re-executes it.
        """
        from .. import telemetry  # lazy: telemetry's logger builds on runtime.atomic
        from . import faults

        with telemetry.trace("journal.record", level="debug", kind=kind, task_id=int(task_id)):
            faults.maybe_disk_full("journal")
            self._stream.write_line(
                self._encode({"kind": kind, "task_id": int(task_id), "payload": payload})
            )
            self._stream.fsync()
        telemetry.get_registry().counter("journal.records").inc()
        self._records[(kind, int(task_id))] = payload

    def completed(self, kind: str) -> dict[int, Any]:
        """``task_id -> payload`` for every journaled task of ``kind``."""
        return {tid: payload for (k, tid), payload in self._records.items() if k == kind}

    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()

    def remove(self) -> None:
        """Close and delete the journal file (call after a successful run)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
