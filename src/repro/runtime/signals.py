"""Graceful-shutdown signal handling for long-running campaigns.

A PagPassGPT-scale campaign runs for hours to days; the process *will*
receive SIGTERM (scheduler preemption, ``timeout(1)``, container stop)
or SIGINT (an operator's Ctrl-C).  Dying mid-batch is safe — the journal
makes resume byte-identical — but it wastes the batch in flight and
leaves no record of why the run ended.  This module converts the first
signal into a *cooperative* stop request that the execution loops notice
at their next :meth:`~repro.runtime.deadline.Budget.poll`, so the run
flushes its journal/snapshot, emits a ``campaign_interrupted`` telemetry
event, and exits with a distinct code.

Semantics are one-shot: the **first** SIGTERM/SIGINT requests a graceful
stop; a **second** signal restores the default disposition and re-raises
itself, killing the process immediately (the operator's escape hatch
when a stop takes too long).

The state is process-global on purpose: a stop request must be visible
from every layer (CLI, generator loops, the pool supervisor) without
threading a flag through each call.  Worker processes never install
these handlers — the parent owns the shutdown and reaps them via
``Pool.terminate``; pool initializers ignore SIGINT so a terminal's
Ctrl-C (delivered to the whole foreground process group) cannot kill
workers before the parent has journaled their delivered results.
"""

from __future__ import annotations

import os
import signal
from contextlib import contextmanager
from typing import Iterator, Optional

#: Signals converted into a graceful stop request.
GRACEFUL_SIGNALS = (signal.SIGTERM, signal.SIGINT)

_state: dict = {"signum": None, "count": 0}


def requested() -> Optional[int]:
    """The signal number of a pending graceful-stop request, or ``None``."""
    return _state["signum"]


def reset() -> None:
    """Clear any pending stop request (test isolation / nested runs)."""
    _state["signum"] = None
    _state["count"] = 0


def request(signum: int = signal.SIGTERM) -> None:
    """Record a stop request directly (what the handler does on delivery)."""
    _state["signum"] = int(signum)
    _state["count"] += 1


@contextmanager
def graceful_shutdown(signals=GRACEFUL_SIGNALS) -> Iterator[None]:
    """Install one-shot graceful handlers for the duration of a block.

    Inside the block, the first listed signal sets the process-global
    stop request (visible via :func:`requested` and acted on by
    :meth:`~repro.runtime.deadline.Budget.poll`); a second delivery of
    the same signal restores that signal's previous disposition and
    re-raises it, so a stuck run can still be killed the ordinary way.
    Previous handlers are restored — and the pending request cleared —
    on exit.  Outside the main thread (where ``signal.signal`` is
    unavailable) the block runs with no handlers installed.
    """
    previous: dict[int, object] = {}

    def handler(signum: int, frame) -> None:
        request(signum)
        if _state["count"] >= 2:
            # Second signal: stop being graceful.  Restore the previous
            # disposition and redeliver so the default action (or the
            # outer handler) terminates the process.
            try:
                signal.signal(signum, previous.get(signum, signal.SIG_DFL))
            except (ValueError, OSError):  # pragma: no cover - defensive
                pass
            os.kill(os.getpid(), signum)

    try:
        for signum in signals:
            previous[signum] = signal.signal(signum, handler)
    except ValueError:
        # Not the main thread: signal handling is unavailable; run the
        # block without graceful conversion rather than failing.
        previous = {}
    try:
        yield
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover - defensive
                pass
        reset()


def ignore_in_worker() -> None:
    """Pool-worker initializer hook: let the parent own Ctrl-C.

    SIGINT goes to the whole foreground process group, so without this a
    Ctrl-C would kill workers mid-task at the same instant the parent is
    trying to stop gracefully and journal their delivered results.
    SIGTERM is explicitly reset to the *default* disposition: a worker
    forked while :func:`graceful_shutdown` is active inherits the
    parent's graceful handler, which would swallow the SIGTERM that
    ``Pool.terminate`` (the parent's reaping path, also used by the
    hung-pool watchdog) relies on — the parent would then join a worker
    that never dies.  Any stop request inherited over fork is cleared
    too: the parent owns the shutdown decision, not the worker's copy.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    reset()
