"""Randomized chaos harness: crash anywhere, resume exactly.

The fault-tolerance tests exercise hand-picked fault sites; this module
generalises them into a *property*: for a seeded random schedule of
faults — process crashes, wedged workers, torn journal tails, disk
exhaustion, SIGTERM — injected at random sites and counts, across every
generation strategy and worker count, an interrupted-then-resumed
campaign must produce a guess stream **byte-identical** to an
undisturbed golden run, with ``telemetry summarize --check`` holding on
the resumed leg.  ``repro chaos`` runs the harness from the CLI and the
CI smoke pins a fixed seed.

Each :class:`ChaosCase` is three in-process CLI legs (the same
``cli.main`` the operator runs, so signal handling, exit codes, and
telemetry behave exactly as in production):

1. **golden** — undisturbed run, captures the expected output bytes;
2. **chaos** — same campaign with a one-shot fault directive armed (and,
   for ``corrupt`` cases, the surviving journal's tail torn afterwards,
   then ``verify --repair`` run over it — an unrepairable journal is
   deleted, which is the documented operator flow);
3. **resume** — fault cleared, ``--resume`` into a fresh telemetry dir;
   must exit 0, match the golden bytes, and pass ``summarize --check``.

Faults fire via the :mod:`repro.runtime.faults` environment directives
with a state directory, so every directive is one-shot — exactly one
disturbance per schedule, at a seeded random site/count.  Hangs are
shortened via ``REPRO_FAULT_HANG_SECONDS`` and paired with a short
``REPRO_TASK_TIMEOUT`` watchdog so a chaos run takes seconds, not
minutes.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from . import faults, signals
from .atomic import DiskFullError
from .faults import FAULT_ENV, FAULT_STATE_ENV, HANG_SECONDS_ENV, InjectedFault, corrupt_file
from .retry import TASK_TIMEOUT_ENV

#: Default guesses per strategy — enough journaled units for the random
#: fault count to land at several distinct boundaries, small enough that
#: a full sweep stays CI-sized.
DEFAULT_N = {"sampled": 1200, "dcgen": 800, "ordered": 200}

#: Exit codes a chaos leg may legitimately end with (see docs/API.md):
#: 0 completed (hangs are survivable), 1 runtime failure (disk full),
#: 3 deadline/budget, 4 signal.
_ACCEPTABLE_CHAOS_EXITS = {0, 1, 3, 4}


@dataclass(frozen=True)
class ChaosCase:
    """One seeded schedule: a campaign shape plus a fault to inject."""

    case_id: int
    strategy: str  # sampled | dcgen | ordered
    workers: int
    seed: int  # campaign seed (feeds --seed)
    fault: str  # REPRO_FAULT directive, or "corrupt_tail" (harness-applied)

    def describe(self) -> str:
        return (
            f"case {self.case_id}: {self.strategy} workers={self.workers} "
            f"seed={self.seed} fault={self.fault}"
        )


@dataclass
class CaseResult:
    case: ChaosCase
    chaos_outcome: str = ""  # "exit:N" or "raise:ExcName"
    resume_exit: Optional[int] = None
    identical: bool = False
    check_ok: bool = False
    repair_exit: Optional[int] = None
    failure: Optional[str] = None  # None = invariant held

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_dict(self) -> dict:
        return {
            "case_id": self.case.case_id,
            "strategy": self.case.strategy,
            "workers": self.case.workers,
            "seed": self.case.seed,
            "fault": self.case.fault,
            "chaos_outcome": self.chaos_outcome,
            "repair_exit": self.repair_exit,
            "resume_exit": self.resume_exit,
            "identical": self.identical,
            "check_ok": self.check_ok,
            "failure": self.failure,
        }


@dataclass
class ChaosReport:
    cases: list[CaseResult] = field(default_factory=list)

    @property
    def failures(self) -> list[CaseResult]:
        return [r for r in self.cases if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "total": len(self.cases),
            "failed": len(self.failures),
            "ok": self.ok,
            "cases": [r.to_dict() for r in self.cases],
        }


def _fault_menu(strategy: str, workers: int) -> list[str]:
    """Fault directives applicable to a campaign shape.

    Site choice follows where the strategy journals: ``free_chunk`` /
    ``leaf_batch`` / ``frontier`` are the parent-side durable boundaries,
    ``journal`` is the disk-full site, ``worker`` only exists on the pool
    path (``workers > 1``).  ``corrupt_tail`` is applied by the harness
    to the journal a crash leaves behind.
    """
    site = {"sampled": "free_chunk", "dcgen": "leaf_batch", "ordered": "frontier"}[strategy]
    menu = [
        f"crash:{site}:K",
        f"signal:{site}:K",
        "disk_full:journal:K",
        "corrupt_tail",
    ]
    if workers > 1:
        menu.append("hang:worker:K")
        menu.append("crash:worker:K")
    return menu


def build_schedule(
    base_seed: int,
    strategies: list[str],
    workers_list: list[int],
    per_strategy: int,
) -> list[ChaosCase]:
    """The deterministic case list a seed expands to.

    Every (strategy, workers) pair gets ``per_strategy`` cases; faults
    and counts are drawn from ``random.Random(base_seed)``, so the same
    seed always replays the same schedule (the CI smoke and a failing
    case's repro command depend on this).
    """
    rng = random.Random(base_seed)
    cases: list[ChaosCase] = []
    for strategy in strategies:
        for workers in workers_list:
            if strategy == "ordered" and workers > 1:
                continue  # ordered enumeration is serial by design
            for _ in range(per_strategy):
                fault = rng.choice(_fault_menu(strategy, workers))
                fault = fault.replace(":K", f":{rng.randrange(0, 3)}")
                cases.append(
                    ChaosCase(
                        case_id=len(cases),
                        strategy=strategy,
                        workers=workers,
                        seed=rng.randrange(0, 1_000_000),
                        fault=fault,
                    )
                )
    return cases


class _env:
    """Set environment variables for a block, restoring them after."""

    def __init__(self, **values: Optional[str]) -> None:
        self.values = values
        self.saved: dict[str, Optional[str]] = {}

    def __enter__(self) -> "_env":
        for key, value in self.values.items():
            self.saved[key] = os.environ.get(key)
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        return self

    def __exit__(self, *exc) -> None:
        for key, old in self.saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old


def _run_cli(argv: list[str]) -> tuple[Optional[int], Optional[BaseException]]:
    """One in-process CLI leg; returns ``(exit_code, exception)``.

    Injected faults and ENOSPC deliberately escape ``cli.main`` the way
    a real crash would escape the process; everything else is an exit
    code.  Fault counters and any pending signal state are reset after
    the leg so legs stay independent.
    """
    from .. import cli  # lazy: cli imports this package

    try:
        return cli.main(argv), None
    except (InjectedFault, DiskFullError) as exc:
        return None, exc
    finally:
        faults.reset()
        signals.reset()


def run_case(
    case: ChaosCase,
    checkpoint: str | Path,
    workdir: Path,
    n: Optional[int] = None,
    hang_seconds: float = 0.5,
    task_timeout: float = 2.0,
    golden_cache: Optional[dict] = None,
) -> CaseResult:
    """Execute one chaos case end to end; never raises for a held/failed
    invariant (the verdict lives in the returned :class:`CaseResult`)."""
    result = CaseResult(case)
    n = n if n is not None else DEFAULT_N[case.strategy]
    casedir = workdir / f"case-{case.case_id}"
    casedir.mkdir(parents=True, exist_ok=True)

    common = [
        "generate", "--checkpoint", str(checkpoint), "-n", str(n),
        "--seed", str(case.seed), "--strategy", case.strategy,
        "--workers", str(case.workers),
    ]
    if case.strategy == "dcgen":
        common += ["--threshold", "32"]
    if case.strategy == "ordered":
        common += ["--beam-width", "8", "--max-frontier", "4000", "--snapshot-every", "2"]

    # Leg 1: golden run (cached per campaign shape — the fault draw does
    # not change what the undisturbed output should be).
    golden_key = (case.strategy, case.workers, case.seed, n)
    golden_bytes = (golden_cache or {}).get(golden_key)
    if golden_bytes is None:
        golden_out = casedir / "golden.txt"
        code, exc = _run_cli(common + ["--out", str(golden_out)])
        if exc is not None or code != 0:
            result.failure = f"golden run failed: exit={code} exc={exc!r}"
            return result
        golden_bytes = golden_out.read_bytes()
        if golden_cache is not None:
            golden_cache[golden_key] = golden_bytes

    # Leg 2: the same campaign with one fault armed.
    out = casedir / "out.txt"
    journal = casedir / "run.journal.jsonl"
    state_dir = casedir / "fault-state"
    directive = None if case.fault == "corrupt_tail" else case.fault
    if case.fault == "corrupt_tail":
        # Tear the tail of whatever journal a crash leaves behind: crash
        # first (deterministic site), then corrupt the file.
        site = {"sampled": "free_chunk", "dcgen": "leaf_batch", "ordered": "frontier"}[
            case.strategy
        ]
        directive = f"crash:{site}:1"
    with _env(**{
        FAULT_ENV: directive,
        FAULT_STATE_ENV: str(state_dir),
        HANG_SECONDS_ENV: str(hang_seconds),
        TASK_TIMEOUT_ENV: str(task_timeout),
    }):
        code, exc = _run_cli(
            common + ["--out", str(out), "--journal", str(journal)]
        )
    result.chaos_outcome = f"raise:{type(exc).__name__}" if exc is not None else f"exit:{code}"
    if exc is None and code not in _ACCEPTABLE_CHAOS_EXITS:
        result.failure = f"chaos leg ended with unexpected exit code {code}"
        return result

    completed_clean = exc is None and code == 0  # e.g. a survived hang
    if completed_clean:
        # Nothing to resume; the disturbed run itself must match golden.
        result.resume_exit = 0
        result.identical = out.read_bytes() == golden_bytes
        result.check_ok = True
        if not result.identical:
            result.failure = "survived-fault output differs from golden run"
        return result

    if case.fault == "corrupt_tail" and journal.exists():
        corrupt_file(journal, keep_fraction=0.7)
        result.repair_exit, _ = _run_cli(["verify", str(journal), "--repair"])
        if result.repair_exit == 2:
            # Unrepairable (tear reached the header): the documented
            # operator flow is to discard the journal and rerun.
            journal.unlink()

    # Leg 3: resume with the fault cleared; fresh telemetry dir so the
    # summarize --check accounting covers exactly the resumed process.
    tele = casedir / "tele-resume"
    with _env(**{
        FAULT_ENV: None,
        FAULT_STATE_ENV: None,
        HANG_SECONDS_ENV: None,
        TASK_TIMEOUT_ENV: str(task_timeout),
    }):
        code, exc = _run_cli(
            common
            + ["--out", str(out), "--journal", str(journal), "--resume",
               "--telemetry", str(tele)]
        )
    result.resume_exit = code
    if exc is not None or code != 0:
        result.failure = f"resume leg failed: exit={code} exc={exc!r}"
        return result

    result.identical = out.read_bytes() == golden_bytes
    check_code, _ = _run_cli(["telemetry", "summarize", str(tele), "--check"])
    result.check_ok = check_code == 0
    if not result.identical:
        result.failure = "resumed output differs from golden run"
    elif not result.check_ok:
        result.failure = "telemetry summarize --check failed on the resume leg"
    elif journal.exists():
        result.failure = "spent journal not cleaned up after successful resume"
    return result


def run_chaos(
    checkpoint: str | Path,
    workdir: str | Path,
    base_seed: int = 0,
    strategies: Optional[list[str]] = None,
    workers_list: Optional[list[int]] = None,
    per_strategy: int = 2,
    n: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run a full seeded chaos sweep; returns the per-case report.

    ``per_strategy`` cases are run for every (strategy, workers) shape —
    the acceptance sweep uses ≥ 20, the CI smoke 1-2.  ``n`` overrides
    the per-strategy guess budget (tests use tiny budgets).
    """
    strategies = strategies or ["sampled", "dcgen", "ordered"]
    workers_list = workers_list or [1, 2]
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    cases = build_schedule(base_seed, strategies, workers_list, per_strategy)
    report = ChaosReport()
    golden_cache: dict = {}
    for case in cases:
        if log is not None:
            log(case.describe())
        result = run_case(
            case, checkpoint, workdir, n=n, golden_cache=golden_cache
        )
        report.cases.append(result)
        if log is not None:
            verdict = "ok" if result.ok else f"FAIL ({result.failure})"
            log(f"  -> {result.chaos_outcome}, resume={result.resume_exit}: {verdict}")
    return report
