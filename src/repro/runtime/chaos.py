"""Randomized chaos harness: crash anywhere, resume exactly.

The fault-tolerance tests exercise hand-picked fault sites; this module
generalises them into a *property*: for a seeded random schedule of
faults — process crashes, wedged workers, torn journal tails, disk
exhaustion, SIGTERM — injected at random sites and counts, across every
generation strategy and worker count, an interrupted-then-resumed
campaign must produce a guess stream **byte-identical** to an
undisturbed golden run, with ``telemetry summarize --check`` holding on
the resumed leg.  ``repro chaos`` runs the harness from the CLI and the
CI smoke pins a fixed seed.

Each :class:`ChaosCase` is three in-process CLI legs (the same
``cli.main`` the operator runs, so signal handling, exit codes, and
telemetry behave exactly as in production):

1. **golden** — undisturbed run, captures the expected output bytes;
2. **chaos** — same campaign with a one-shot fault directive armed (and,
   for ``corrupt`` cases, the surviving journal's tail torn afterwards,
   then ``verify --repair`` run over it — an unrepairable journal is
   deleted, which is the documented operator flow);
3. **resume** — fault cleared, ``--resume`` into a fresh telemetry dir;
   must exit 0, match the golden bytes, and pass ``summarize --check``.

Faults fire via the :mod:`repro.runtime.faults` environment directives
with a state directory, so every directive is one-shot — exactly one
disturbance per schedule, at a seeded random site/count.  Hangs are
shortened via ``REPRO_FAULT_HANG_SECONDS`` and paired with a short
``REPRO_TASK_TIMEOUT`` watchdog so a chaos run takes seconds, not
minutes.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import random
import signal as _stdlib_signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from . import faults, signals
from .atomic import DiskFullError
from .faults import FAULT_ENV, FAULT_STATE_ENV, HANG_SECONDS_ENV, InjectedFault, corrupt_file
from .retry import TASK_TIMEOUT_ENV

#: Default guesses per strategy — enough journaled units for the random
#: fault count to land at several distinct boundaries, small enough that
#: a full sweep stays CI-sized.
DEFAULT_N = {"sampled": 1200, "dcgen": 800, "ordered": 200}

#: Exit codes a chaos leg may legitimately end with (see docs/API.md):
#: 0 completed (hangs are survivable), 1 runtime failure (disk full),
#: 3 deadline/budget, 4 signal.
_ACCEPTABLE_CHAOS_EXITS = {0, 1, 3, 4}


@dataclass(frozen=True)
class ChaosCase:
    """One seeded schedule: a campaign shape plus a fault to inject."""

    case_id: int
    strategy: str  # sampled | dcgen | ordered
    workers: int
    seed: int  # campaign seed (feeds --seed)
    fault: str  # REPRO_FAULT directive, or "corrupt_tail" (harness-applied)

    def describe(self) -> str:
        return (
            f"case {self.case_id}: {self.strategy} workers={self.workers} "
            f"seed={self.seed} fault={self.fault}"
        )


@dataclass
class CaseResult:
    case: ChaosCase
    chaos_outcome: str = ""  # "exit:N" or "raise:ExcName"
    resume_exit: Optional[int] = None
    identical: bool = False
    check_ok: bool = False
    repair_exit: Optional[int] = None
    failure: Optional[str] = None  # None = invariant held

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_dict(self) -> dict:
        return {
            "case_id": self.case.case_id,
            "strategy": self.case.strategy,
            "workers": self.case.workers,
            "seed": self.case.seed,
            "fault": self.case.fault,
            "chaos_outcome": self.chaos_outcome,
            "repair_exit": self.repair_exit,
            "resume_exit": self.resume_exit,
            "identical": self.identical,
            "check_ok": self.check_ok,
            "failure": self.failure,
        }


@dataclass
class ChaosReport:
    cases: list[CaseResult] = field(default_factory=list)

    @property
    def failures(self) -> list[CaseResult]:
        return [r for r in self.cases if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "total": len(self.cases),
            "failed": len(self.failures),
            "ok": self.ok,
            "cases": [r.to_dict() for r in self.cases],
        }


def _fault_menu(strategy: str, workers: int) -> list[str]:
    """Fault directives applicable to a campaign shape.

    Site choice follows where the strategy journals: ``free_chunk`` /
    ``leaf_batch`` / ``frontier`` are the parent-side durable boundaries,
    ``journal`` is the disk-full site, ``worker`` only exists on the pool
    path (``workers > 1``).  ``corrupt_tail`` is applied by the harness
    to the journal a crash leaves behind.
    """
    site = {"sampled": "free_chunk", "dcgen": "leaf_batch", "ordered": "frontier"}[strategy]
    menu = [
        f"crash:{site}:K",
        f"signal:{site}:K",
        "disk_full:journal:K",
        "corrupt_tail",
    ]
    if workers > 1:
        menu.append("hang:worker:K")
        menu.append("crash:worker:K")
    return menu


def build_schedule(
    base_seed: int,
    strategies: list[str],
    workers_list: list[int],
    per_strategy: int,
) -> list[ChaosCase]:
    """The deterministic case list a seed expands to.

    Every (strategy, workers) pair gets ``per_strategy`` cases; faults
    and counts are drawn from ``random.Random(base_seed)``, so the same
    seed always replays the same schedule (the CI smoke and a failing
    case's repro command depend on this).
    """
    rng = random.Random(base_seed)
    cases: list[ChaosCase] = []
    for strategy in strategies:
        for workers in workers_list:
            if strategy == "ordered" and workers > 1:
                continue  # ordered enumeration is serial by design
            for _ in range(per_strategy):
                fault = rng.choice(_fault_menu(strategy, workers))
                fault = fault.replace(":K", f":{rng.randrange(0, 3)}")
                cases.append(
                    ChaosCase(
                        case_id=len(cases),
                        strategy=strategy,
                        workers=workers,
                        seed=rng.randrange(0, 1_000_000),
                        fault=fault,
                    )
                )
    return cases


class _env:
    """Set environment variables for a block, restoring them after."""

    def __init__(self, **values: Optional[str]) -> None:
        self.values = values
        self.saved: dict[str, Optional[str]] = {}

    def __enter__(self) -> "_env":
        for key, value in self.values.items():
            self.saved[key] = os.environ.get(key)
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        return self

    def __exit__(self, *exc) -> None:
        for key, old in self.saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old


def _run_cli(argv: list[str]) -> tuple[Optional[int], Optional[BaseException]]:
    """One in-process CLI leg; returns ``(exit_code, exception)``.

    Injected faults and ENOSPC deliberately escape ``cli.main`` the way
    a real crash would escape the process; everything else is an exit
    code.  Fault counters and any pending signal state are reset after
    the leg so legs stay independent.
    """
    from .. import cli  # lazy: cli imports this package

    try:
        return cli.main(argv), None
    except (InjectedFault, DiskFullError) as exc:
        return None, exc
    finally:
        faults.reset()
        signals.reset()


def run_case(
    case: ChaosCase,
    checkpoint: str | Path,
    workdir: Path,
    n: Optional[int] = None,
    hang_seconds: float = 0.5,
    task_timeout: float = 2.0,
    golden_cache: Optional[dict] = None,
) -> CaseResult:
    """Execute one chaos case end to end; never raises for a held/failed
    invariant (the verdict lives in the returned :class:`CaseResult`)."""
    result = CaseResult(case)
    n = n if n is not None else DEFAULT_N[case.strategy]
    casedir = workdir / f"case-{case.case_id}"
    casedir.mkdir(parents=True, exist_ok=True)

    common = [
        "generate", "--checkpoint", str(checkpoint), "-n", str(n),
        "--seed", str(case.seed), "--strategy", case.strategy,
        "--workers", str(case.workers),
    ]
    if case.strategy == "dcgen":
        common += ["--threshold", "32"]
    if case.strategy == "ordered":
        common += ["--beam-width", "8", "--max-frontier", "4000", "--snapshot-every", "2"]

    # Leg 1: golden run (cached per campaign shape — the fault draw does
    # not change what the undisturbed output should be).
    golden_key = (case.strategy, case.workers, case.seed, n)
    golden_bytes = (golden_cache or {}).get(golden_key)
    if golden_bytes is None:
        golden_out = casedir / "golden.txt"
        code, exc = _run_cli(common + ["--out", str(golden_out)])
        if exc is not None or code != 0:
            result.failure = f"golden run failed: exit={code} exc={exc!r}"
            return result
        golden_bytes = golden_out.read_bytes()
        if golden_cache is not None:
            golden_cache[golden_key] = golden_bytes

    # Leg 2: the same campaign with one fault armed.
    out = casedir / "out.txt"
    journal = casedir / "run.journal.jsonl"
    state_dir = casedir / "fault-state"
    directive = None if case.fault == "corrupt_tail" else case.fault
    if case.fault == "corrupt_tail":
        # Tear the tail of whatever journal a crash leaves behind: crash
        # first (deterministic site), then corrupt the file.
        site = {"sampled": "free_chunk", "dcgen": "leaf_batch", "ordered": "frontier"}[
            case.strategy
        ]
        directive = f"crash:{site}:1"
    with _env(**{
        FAULT_ENV: directive,
        FAULT_STATE_ENV: str(state_dir),
        HANG_SECONDS_ENV: str(hang_seconds),
        TASK_TIMEOUT_ENV: str(task_timeout),
    }):
        code, exc = _run_cli(
            common + ["--out", str(out), "--journal", str(journal)]
        )
    result.chaos_outcome = f"raise:{type(exc).__name__}" if exc is not None else f"exit:{code}"
    if exc is None and code not in _ACCEPTABLE_CHAOS_EXITS:
        result.failure = f"chaos leg ended with unexpected exit code {code}"
        return result

    completed_clean = exc is None and code == 0  # e.g. a survived hang
    if completed_clean:
        # Nothing to resume; the disturbed run itself must match golden.
        result.resume_exit = 0
        result.identical = out.read_bytes() == golden_bytes
        result.check_ok = True
        if not result.identical:
            result.failure = "survived-fault output differs from golden run"
        return result

    if case.fault == "corrupt_tail" and journal.exists():
        corrupt_file(journal, keep_fraction=0.7)
        result.repair_exit, _ = _run_cli(["verify", str(journal), "--repair"])
        if result.repair_exit == 2:
            # Unrepairable (tear reached the header): the documented
            # operator flow is to discard the journal and rerun.
            journal.unlink()

    # Leg 3: resume with the fault cleared; fresh telemetry dir so the
    # summarize --check accounting covers exactly the resumed process.
    tele = casedir / "tele-resume"
    with _env(**{
        FAULT_ENV: None,
        FAULT_STATE_ENV: None,
        HANG_SECONDS_ENV: None,
        TASK_TIMEOUT_ENV: str(task_timeout),
    }):
        code, exc = _run_cli(
            common
            + ["--out", str(out), "--journal", str(journal), "--resume",
               "--telemetry", str(tele)]
        )
    result.resume_exit = code
    if exc is not None or code != 0:
        result.failure = f"resume leg failed: exit={code} exc={exc!r}"
        return result

    result.identical = out.read_bytes() == golden_bytes
    check_code, _ = _run_cli(["telemetry", "summarize", str(tele), "--check"])
    result.check_ok = check_code == 0
    if not result.identical:
        result.failure = "resumed output differs from golden run"
    elif not result.check_ok:
        result.failure = "telemetry summarize --check failed on the resume leg"
    elif journal.exists():
        result.failure = "spent journal not cleaned up after successful resume"
    return result


def run_chaos(
    checkpoint: str | Path,
    workdir: str | Path,
    base_seed: int = 0,
    strategies: Optional[list[str]] = None,
    workers_list: Optional[list[int]] = None,
    per_strategy: int = 2,
    n: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run a full seeded chaos sweep; returns the per-case report.

    ``per_strategy`` cases are run for every (strategy, workers) shape —
    the acceptance sweep uses ≥ 20, the CI smoke 1-2.  ``n`` overrides
    the per-strategy guess budget (tests use tiny budgets).
    """
    strategies = strategies or ["sampled", "dcgen", "ordered"]
    workers_list = workers_list or [1, 2]
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    cases = build_schedule(base_seed, strategies, workers_list, per_strategy)
    report = ChaosReport()
    golden_cache: dict = {}
    for case in cases:
        if log is not None:
            log(case.describe())
        result = run_case(
            case, checkpoint, workdir, n=n, golden_cache=golden_cache
        )
        report.cases.append(result)
        if log is not None:
            verdict = "ok" if result.ok else f"FAIL ({result.failure})"
            log(f"  -> {result.chaos_outcome}, resume={result.resume_exit}: {verdict}")
    return report


# ----------------------------------------------------------------------
# Server soak: chaos against a live campaign server
# ----------------------------------------------------------------------
#
# The per-campaign chaos cases above prove the *engine* resumes exactly;
# the soak proves the *service* does.  One seeded schedule: concurrent
# clients submit campaigns to a live ``CampaignServer`` (retrying
# through 429/503 backpressure), a worker-crash fault is armed, and a
# SIGTERM drain lands mid-run.  A second server over the same state
# directory must then recover every accepted request and finish it with
# a guess stream byte-identical to an undisturbed reference run — zero
# lost, zero duplicated — with ``telemetry summarize --check`` holding
# on every completed request's per-job session.


@dataclass
class SoakOutcome:
    """Verdict for one accepted request after the full soak."""

    job_id: int
    shape: dict
    state: str = ""
    detail: dict = field(default_factory=dict)
    identical: Optional[bool] = None  # None until the stream is compared
    check_ok: Optional[bool] = None
    failure: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "shape": self.shape,
            "state": self.state,
            "detail": self.detail,
            "identical": self.identical,
            "check_ok": self.check_ok,
            "ok": self.ok,
            "failure": self.failure,
        }


@dataclass
class SoakReport:
    """What ``repro chaos --server`` writes to ``soak-report.json``."""

    outcomes: list = field(default_factory=list)
    #: 429/503 responses the clients retried through (backpressure is
    #: expected under a tiny tenant-queue cap; losing a request is not).
    rejections: int = 0
    drains: list = field(default_factory=list)  # one summary per server life
    harness_failures: list = field(default_factory=list)

    @property
    def failures(self) -> list[str]:
        out = list(self.harness_failures)
        for outcome in self.outcomes:
            if not outcome.ok:
                out.append(f"request {outcome.job_id} ({outcome.shape}): {outcome.failure}")
        return out

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and not self.failures

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "rejections": self.rejections,
            "drains": self.drains,
            "outcomes": [o.to_dict() for o in self.outcomes],
            "failures": self.failures,
        }


class _ServerThread:
    """One server lifetime on a background thread with its own loop."""

    def __init__(self, config) -> None:
        from ..server import CampaignServer  # lazy: server imports runtime

        self.server = CampaignServer(config)
        self.summary: Optional[dict] = None
        self.error: Optional[BaseException] = None
        self.thread = threading.Thread(
            target=self._run, daemon=True, name="soak-server"
        )

    def _run(self) -> None:
        try:
            self.summary = asyncio.run(self.server.serve_forever())
        except BaseException as exc:  # noqa: BLE001 — surfaced by start()/join()
            self.error = exc

    def start(self, timeout: float = 60.0) -> int:
        self.thread.start()
        deadline = time.monotonic() + timeout
        while not self.server.ready.is_set():
            if not self.thread.is_alive():
                raise RuntimeError(f"server died during startup: {self.error!r}")
            if time.monotonic() > deadline:
                raise RuntimeError("server failed to become ready in time")
            time.sleep(0.02)
        return int(self.server.port)

    def join(self, timeout: float = 300.0) -> dict:
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("server did not drain in time")
        if self.error is not None:
            raise self.error
        return self.summary or {}

    def drain(self, timeout: float = 300.0) -> dict:
        self.server.request_drain()
        return self.join(timeout)


def _http_request(port: int, method: str, path: str, payload=None, timeout=30.0):
    """One request against the soak server; returns (status, bytes, retry_after)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        return response.status, data, response.getheader("Retry-After")
    finally:
        conn.close()


def _http_json(port: int, method: str, path: str, payload=None):
    status, data, retry_after = _http_request(port, method, path, payload)
    return status, json.loads(data.decode("utf-8") or "null"), retry_after


def _soak_shapes(rng: random.Random, n_requests: int, n: int) -> list[dict]:
    """Seeded request shapes; shape 0 hosts the worker-crash fault site."""
    shapes = [
        {"strategy": "dcgen", "workers": 2, "threshold": 32,
         "n": n, "seed": rng.randrange(1_000_000)}
    ]
    menu = [("sampled", 1), ("sampled", 2), ("dcgen", 1)]
    while len(shapes) < n_requests:
        strategy, workers = menu[rng.randrange(len(menu))]
        shape = {"strategy": strategy, "workers": workers,
                 "n": n, "seed": rng.randrange(1_000_000)}
        if strategy == "dcgen":
            shape["threshold"] = 32
        shapes.append(shape)
    return shapes


def _soak_reference(checkpoint, workdir: Path, shape: dict, cache: dict) -> bytes:
    """Undisturbed CLI run of one shape: the byte-exact expected stream."""
    key = tuple(sorted(shape.items()))
    if key in cache:
        return cache[key]
    out = workdir / f"reference-{len(cache)}.txt"
    argv = [
        "generate", "--checkpoint", str(checkpoint), "-n", str(shape["n"]),
        "--seed", str(shape["seed"]), "--strategy", shape["strategy"],
        "--workers", str(shape["workers"]), "--out", str(out),
    ]
    if shape["strategy"] == "dcgen":
        argv += ["--threshold", str(shape["threshold"])]
    code, exc = _run_cli(argv)
    if exc is not None or code != 0:
        raise RuntimeError(f"reference run failed for {shape}: exit={code} exc={exc!r}")
    cache[key] = out.read_bytes()
    return cache[key]


def _soak_submit(port, assignments, accepted, rejections, errors, lock) -> None:
    """One client thread: submit its requests, retrying through 429/503."""
    for shape_index, payload in assignments:
        for _attempt in range(50):
            try:
                status, obj, retry_after = _http_json(port, "POST", "/campaigns", payload)
            except OSError as exc:
                with lock:
                    errors.append(f"submit failed for shape {shape_index}: {exc}")
                return
            if status == 202:
                with lock:
                    accepted[int(obj["id"])] = shape_index
                break
            if status in (429, 503):
                with lock:
                    rejections[0] += 1
                # Honour Retry-After, capped so the soak stays CI-sized.
                time.sleep(min(float(retry_after or 1.0), 0.2))
                continue
            with lock:
                errors.append(f"unexpected status {status} for shape {shape_index}: {obj}")
            return
        else:
            with lock:
                errors.append(f"submission retries exhausted for shape {shape_index}")


def run_server_soak(
    checkpoint: str | Path,
    workdir: str | Path,
    base_seed: int = 0,
    n_requests: int = 5,
    clients: int = 2,
    n: int = 250,
    worker_fault: str = "crash:worker:0",
    log: Optional[Callable[[str], None]] = None,
) -> SoakReport:
    """Soak a live campaign server under faults, backpressure, and drain.

    Phase 1 serves with ``worker_fault`` armed (one-shot) and a tiny
    per-tenant queue cap, while ``clients`` threads submit ``n_requests``
    seeded campaign shapes; once the first request completes, a SIGTERM
    stop request drains the server mid-run.  Phase 2 starts a fresh
    server over the same state directory, which must recover and finish
    every accepted request.  Each request must end ``done`` with a
    byte-identical stream and a clean ``summarize --check``, or as a
    typed failure — never lost, never duplicated.
    """
    from ..server import ServerConfig  # lazy: server imports runtime

    def say(message: str) -> None:
        if log is not None:
            log(message)

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    rng = random.Random(base_seed)
    clients = max(1, min(clients, n_requests))
    shapes = _soak_shapes(rng, n_requests, n)
    report = SoakReport()

    say(f"server soak: {n_requests} request(s), {clients} client(s), "
        f"fault {worker_fault}, seed {base_seed}")
    reference_cache: dict = {}
    references = [
        _soak_reference(checkpoint, workdir, shape, reference_cache)
        for shape in shapes
    ]
    say(f"  references: {len(reference_cache)} distinct shape(s)")

    state_dir = workdir / "state"
    config = dict(
        checkpoint=str(checkpoint),
        state_dir=str(state_dir),
        port=0,
        job_telemetry=True,  # forces fleet=1; per-job sessions are audited
        max_tenant_queue=2,  # small on purpose: clients must absorb 429s
        rate=1000.0,
        burst=1000.0,
        poll_interval=0.02,
    )

    # ------------------------------------------------------------- phase 1
    accepted: dict[int, int] = {}  # job id -> shape index
    errors: list[str] = []
    rejections = [0]
    lock = threading.Lock()
    runner = _ServerThread(ServerConfig(**config))
    with _env(**{
        FAULT_ENV: worker_fault,
        FAULT_STATE_ENV: str(workdir / "fault-state"),
        HANG_SECONDS_ENV: "0.5",
        TASK_TIMEOUT_ENV: "2.0",
    }):
        try:
            port = runner.start()
            say(f"  phase 1: serving on port {port}")
            threads = []
            for client in range(clients):
                assignments = [
                    (i, {"tenant": f"tenant-{client}", **shapes[i]})
                    for i in range(client, n_requests, clients)
                ]
                thread = threading.Thread(
                    target=_soak_submit,
                    args=(port, assignments, accepted, rejections, errors, lock),
                    name=f"soak-client-{client}",
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join(60.0)
            # Drain mid-run: wait until the first request reaches a
            # terminal state, then deliver the stop request SIGTERM sets.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                try:
                    _, status_obj, _ = _http_json(port, "GET", "/status")
                except OSError:
                    break
                jobs = status_obj["jobs"]
                if jobs["done"] + jobs["failed"] + jobs["interrupted"] >= 1:
                    break
                time.sleep(0.05)
            signals.request(_stdlib_signal.SIGTERM)
            summary = runner.join()
            report.drains.append(summary)
            say(f"  phase 1: drained ({summary.get('reason')}) "
                f"jobs={summary.get('jobs')}")
        finally:
            faults.reset()
            signals.reset()
    report.rejections = rejections[0]
    report.harness_failures.extend(errors)
    if len(accepted) != n_requests:
        report.harness_failures.append(
            f"accepted {len(accepted)} of {n_requests} submissions"
        )

    # ------------------------------------------------------------- phase 2
    with _env(**{
        FAULT_ENV: None,
        FAULT_STATE_ENV: None,
        HANG_SECONDS_ENV: None,
        TASK_TIMEOUT_ENV: "2.0",
    }):
        runner = _ServerThread(ServerConfig(**config))
        try:
            port = runner.start()
            say(f"  phase 2: recovered server on port {port}")
            deadline = time.monotonic() + 300.0
            settled = False
            while time.monotonic() < deadline:
                _, status_obj, _ = _http_json(port, "GET", "/status")
                jobs = status_obj["jobs"]
                if jobs["queued"] == 0 and jobs["running"] == 0:
                    settled = True
                    break
                time.sleep(0.05)
            if not settled:
                report.harness_failures.append(
                    "phase 2 timed out waiting for recovered jobs to settle"
                )
            # The synchronous scoring path must serve while campaigns do.
            status, score, _ = _http_json(
                port, "POST", "/score",
                {"guesses": ["password", "hunter2"], "test": ["password", "zzz"]},
            )
            if status != 200 or "hit_rate" not in score:
                report.harness_failures.append(
                    f"score request failed: status={status} body={score}"
                )
            # No phantom requests: the server's journal must list exactly
            # the accepted campaign submissions (plus the score job).
            _, listing, _ = _http_json(port, "GET", "/campaigns")
            journaled = sorted(
                entry["id"] for entry in listing["requests"]
                if entry["kind"] == "generate"
            )
            if journaled != sorted(accepted):
                report.harness_failures.append(
                    f"journaled requests {journaled} != accepted {sorted(accepted)}"
                )
            for job_id, shape_index in sorted(accepted.items()):
                outcome = _soak_verdict(
                    port, state_dir, job_id, shapes[shape_index],
                    references[shape_index],
                )
                report.outcomes.append(outcome)
                say(f"  request {job_id}: {outcome.state} "
                    f"{'ok' if outcome.ok else 'FAIL (' + str(outcome.failure) + ')'}")
            summary = runner.drain()
            report.drains.append(summary)
            say(f"  phase 2: drained ({summary.get('reason')})")
        except BaseException as exc:
            report.harness_failures.append(f"phase 2 harness error: {exc!r}")
            try:
                runner.drain(timeout=30.0)
            except BaseException:
                pass
        finally:
            signals.reset()
    return report


def _soak_verdict(port, state_dir: Path, job_id, shape, reference: bytes) -> SoakOutcome:
    """Judge one recovered request against the soak's acceptance bar."""
    outcome = SoakOutcome(job_id, shape)
    _, job, _ = _http_json(port, "GET", f"/campaigns/{job_id}")
    outcome.state = job["state"]
    outcome.detail = job.get("detail", {})
    if job["state"] == "done":
        status, data, _ = _http_request(port, "GET", f"/campaigns/{job_id}/guesses")
        outcome.identical = status == 200 and data == reference
        if not outcome.identical:
            outcome.failure = (
                f"guess stream differs from the reference run "
                f"(status {status}, {len(data)} vs {len(reference)} bytes)"
            )
            return outcome
        tele = state_dir / "jobs" / f"{job_id:06d}" / "tele"
        check_code, check_exc = _run_cli(
            ["telemetry", "summarize", str(tele), "--check"]
        )
        outcome.check_ok = check_exc is None and check_code == 0
        if not outcome.check_ok:
            outcome.failure = "telemetry summarize --check failed for the job session"
    elif job["state"] == "failed" and outcome.detail.get("error"):
        pass  # a typed failure is an acceptable (reported) outcome
    else:
        outcome.failure = (
            f"request ended {job['state']!r} with detail {outcome.detail!r} "
            f"instead of done or a typed failure"
        )
    return outcome
