"""Experiment orchestration: datasets, trained models, and caching.

Every table/figure bench needs the same ingredients — a cleaned split of a
synthetic site and models trained on it.  :class:`ModelLab` builds those
once per configuration and caches GPT checkpoints on disk (training is the
expensive step), so the whole benchmark suite can run within a CPU budget.

Scales
------
``tiny``  — unit/integration tests: minutes of total CPU.
``small`` — default benchmark scale: each GPT trains in a few minutes.
``full``  — larger corpora/budgets for overnight runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..datasets import (
    CleaningReport,
    PasswordCorpus,
    Splits,
    build_corpus,
    clean_leak,
    generate_leak,
    split_dataset,
)
from ..generation import DCGenConfig
from ..models import (
    MarkovModel,
    PagPassGPT,
    PagPassGPTDC,
    PassFlow,
    PassGAN,
    PassGPT,
    PCFGModel,
    RuleBasedModel,
    VAEPass,
)
from ..nn import GPT2Config, load_checkpoint, save_checkpoint
from ..training import TrainConfig


@dataclass(frozen=True)
class LabScale:
    """All scale-dependent knobs in one place."""

    name: str
    site_entries: dict[str, int]
    gpt_dim: int = 64
    gpt_layers: int = 2
    gpt_heads: int = 4
    gpt_epochs: int = 6
    gpt_batch: int = 128
    gpt_lr: float = 1e-3
    gpt_patience: int = 0
    baseline_epochs: int = 10
    guess_budgets: tuple[int, ...] = (1_000, 10_000, 100_000)
    guided_guesses_per_pattern: int = 2_000
    dc_threshold: int = 512
    crosssite_budget: int = 30_000


SCALES: dict[str, LabScale] = {
    "tiny": LabScale(
        name="tiny",
        site_entries={s: 4_000 for s in ("rockyou", "linkedin", "phpbb", "myspace", "yahoo")},
        gpt_dim=48,
        gpt_layers=2,
        gpt_epochs=4,
        gpt_batch=128,
        gpt_lr=2e-3,
        baseline_epochs=4,
        guess_budgets=(500, 2_000),
        guided_guesses_per_pattern=300,
        dc_threshold=16,
        crosssite_budget=2_000,
    ),
    "small": LabScale(
        name="small",
        site_entries={
            "rockyou": 15_000,
            "linkedin": 20_000,
            "phpbb": 6_000,
            "myspace": 4_000,
            "yahoo": 7_000,
        },
        gpt_dim=64,
        gpt_layers=3,
        gpt_epochs=60,
        gpt_batch=128,
        gpt_lr=2e-3,
        gpt_patience=6,
        baseline_epochs=14,
        guess_budgets=(1_000, 10_000, 100_000),
        guided_guesses_per_pattern=2_000,
        dc_threshold=16,
        crosssite_budget=30_000,
    ),
    "full": LabScale(
        name="full",
        site_entries={
            "rockyou": 60_000,
            "linkedin": 90_000,
            "phpbb": 12_000,
            "myspace": 6_000,
            "yahoo": 15_000,
        },
        gpt_dim=96,
        gpt_layers=4,
        gpt_epochs=60,
        gpt_batch=256,
        gpt_lr=1.5e-3,
        gpt_patience=6,
        baseline_epochs=16,
        guess_budgets=(1_000, 10_000, 100_000, 1_000_000),
        guided_guesses_per_pattern=10_000,
        dc_threshold=256,
        crosssite_budget=300_000,
    ),
}


@dataclass
class SiteData:
    """One site's cleaned data, splits and corpora."""

    site: str
    report: CleaningReport
    splits: Splits
    train_corpus: PasswordCorpus
    test_corpus: PasswordCorpus

    @property
    def test_set(self) -> frozenset[str]:
        return self.test_corpus.password_set


class ModelLab:
    """Builds and caches datasets and trained models for experiments."""

    def __init__(
        self,
        scale: str | LabScale = "small",
        cache_dir: Optional[str | Path] = None,
        seed: int = 0,
        log_fn=None,
        workers: int = 1,
    ) -> None:
        self.scale = SCALES[scale] if isinstance(scale, str) else scale
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.seed = seed
        self.log_fn = log_fn
        #: Worker processes for D&C-GEN leaf execution (guess streams are
        #: identical for any count; see repro.generation.parallel).
        self.workers = workers
        self._sites: dict[str, SiteData] = {}
        self._models: dict[tuple, object] = {}

    def _log(self, msg: str) -> None:
        if self.log_fn is not None:
            self.log_fn(msg)

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def site_data(self, site: str) -> SiteData:
        """Cleaned + split data for ``site`` (memoised)."""
        if site not in self._sites:
            raw = generate_leak(site, self.scale.site_entries[site], seed=self.seed)
            cleaned, report = clean_leak(raw)
            splits = split_dataset(cleaned, seed=self.seed)
            self._sites[site] = SiteData(
                site=site,
                report=report,
                splits=splits,
                train_corpus=build_corpus(splits.train, name=f"{site}-train"),
                test_corpus=build_corpus(splits.test, name=f"{site}-test"),
            )
            self._log(
                f"[data] {site}: unique={report.unique} cleaned={report.cleaned} "
                f"train={len(splits.train)} test={len(splits.test)}"
            )
        return self._sites[site]

    def eval_corpus(self, site: str) -> PasswordCorpus:
        """Whole-site corpus for cross-site evaluation (§IV-A2: the three
        small sites are used entirely for evaluation)."""
        data = self.site_data(site)
        return build_corpus(
            data.splits.train + data.splits.val + data.splits.test, name=site
        )

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def _gpt_configs(self, block_size: int, vocab_size: int) -> tuple[GPT2Config, TrainConfig]:
        s = self.scale
        model_cfg = GPT2Config(
            vocab_size=vocab_size,
            block_size=block_size,
            dim=s.gpt_dim,
            n_layers=s.gpt_layers,
            n_heads=s.gpt_heads,
            dropout=0.1,
        )
        train_cfg = TrainConfig(
            epochs=s.gpt_epochs,
            batch_size=s.gpt_batch,
            lr=s.gpt_lr,
            early_stop_patience=s.gpt_patience,
            seed=self.seed,
        )
        return model_cfg, train_cfg

    def _cache_path(self, kind: str, site: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        s = self.scale
        key = json.dumps(
            [kind, site, s.name, s.site_entries[site], s.gpt_dim, s.gpt_layers,
             s.gpt_heads, s.gpt_epochs, s.gpt_batch, s.gpt_lr, s.gpt_patience, self.seed],
            sort_keys=True,
        )
        digest = hashlib.sha256(key.encode()).hexdigest()[:16]
        return self.cache_dir / f"{kind}-{site}-{digest}.npz"

    def pagpassgpt(self, site: str = "rockyou") -> PagPassGPT:
        """A fitted PagPassGPT for ``site`` (disk-cached)."""
        key = ("pagpassgpt", site)
        if key not in self._models:
            data = self.site_data(site)
            model = PagPassGPT(seed=self.seed)
            cfg, tcfg = self._gpt_configs(model.tokenizer.block_size, len(model.tokenizer.vocab))
            model = PagPassGPT(model_config=cfg, train_config=tcfg, seed=self.seed)
            path = self._cache_path("pagpassgpt", site)
            if path is not None and path.exists():
                meta = load_checkpoint(model.model, path)
                model.pattern_probs = meta["pattern_probs"]
                model._fitted = True
                model.model.eval()
                self._log(f"[model] PagPassGPT({site}) loaded from cache")
            else:
                self._log(f"[model] training PagPassGPT({site})...")
                model.fit(data.train_corpus, val_passwords=data.splits.val, log_fn=self.log_fn)
                if path is not None:
                    save_checkpoint(
                        model.model, path, meta={"pattern_probs": model.pattern_probs}
                    )
            self._models[key] = model
        return self._models[key]  # type: ignore[return-value]

    def passgpt(self, site: str = "rockyou") -> PassGPT:
        """A fitted PassGPT for ``site`` (disk-cached)."""
        key = ("passgpt", site)
        if key not in self._models:
            data = self.site_data(site)
            probe = PassGPT(seed=self.seed)
            cfg, tcfg = self._gpt_configs(probe.tokenizer.block_size, len(probe.tokenizer.vocab))
            model = PassGPT(model_config=cfg, train_config=tcfg, seed=self.seed)
            path = self._cache_path("passgpt", site)
            if path is not None and path.exists():
                load_checkpoint(model.model, path)
                model._fitted = True
                model.model.eval()
                self._log(f"[model] PassGPT({site}) loaded from cache")
            else:
                self._log(f"[model] training PassGPT({site})...")
                model.fit(data.train_corpus, val_passwords=data.splits.val, log_fn=self.log_fn)
                if path is not None:
                    save_checkpoint(model.model, path)
            self._models[key] = model
        return self._models[key]  # type: ignore[return-value]

    def pagpassgpt_dc(self, site: str = "rockyou") -> PagPassGPTDC:
        """PagPassGPT-D&C sharing the cached base model."""
        key = ("pagpassgpt_dc", site)
        if key not in self._models:
            base = self.pagpassgpt(site)
            self._models[key] = PagPassGPTDC(
                base,
                DCGenConfig(threshold=self.scale.dc_threshold, workers=self.workers),
            )
        return self._models[key]  # type: ignore[return-value]

    def baseline(self, name: str, site: str = "rockyou"):
        """A fitted non-GPT baseline (retrained per process; they're fast)."""
        key = (name, site)
        if key not in self._models:
            data = self.site_data(site)
            epochs = self.scale.baseline_epochs
            factories = {
                "passgan": lambda: PassGAN(epochs=epochs, seed=self.seed),
                "vaepass": lambda: VAEPass(epochs=epochs, seed=self.seed),
                "passflow": lambda: PassFlow(epochs=epochs, seed=self.seed),
                "pcfg": PCFGModel,
                "markov": MarkovModel,
                "rulebased": RuleBasedModel,
            }
            try:
                model = factories[name]()
            except KeyError:
                raise KeyError(f"unknown baseline {name!r}") from None
            self._log(f"[model] training {model.name}({site})...")
            model.fit(data.train_corpus, log_fn=self.log_fn)
            self._models[key] = model
        return self._models[key]
