"""Core evaluation metrics of the paper (§IV-C, §IV-D).

* hit rate (eqs. 4-5): generated ∩ test / |test|, both sides deduplicated;
* repeat rate: fraction of duplicate guesses in the raw generated stream;
* per-category and per-pattern hit rates (Figs. 8-9);
* word-integrity score — quantifies the Table III truncation artifact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..datasets.corpus import PasswordCorpus
from ..datasets.wordlists import COMMON_WORDS, FIRST_NAMES, KEYBOARD_WALKS
from ..tokenizer.patterns import Pattern


def hit_rate(generated: Iterable[str], test_passwords: Iterable[str]) -> float:
    """Fraction of (unique) test passwords matched by (unique) guesses.

    Matches §IV-D1: both sets are deduplicated before evaluation.
    """
    test_set = set(test_passwords)
    if not test_set:
        raise ValueError("hit_rate needs a non-empty test set")
    return len(set(generated) & test_set) / len(test_set)


def repeat_rate(generated: Sequence[str]) -> float:
    """Fraction of raw guesses that duplicate an earlier guess (§IV-D2)."""
    if not generated:
        raise ValueError("repeat_rate needs a non-empty guess list")
    return 1.0 - len(set(generated)) / len(generated)


def hits(generated: Iterable[str], test_passwords: Iterable[str]) -> int:
    """Absolute number of unique test passwords matched."""
    return len(set(generated) & set(test_passwords))


def category_hit_rate(
    generated: Iterable[str],
    test_corpus: PasswordCorpus,
    n_segments: int,
) -> float:
    """HR_s (eq. 4): hits within one segment-count category.

    The denominator is every test password whose pattern has
    ``n_segments`` segments; the numerator counts those matched by the
    guesses.
    """
    conforming = test_corpus.conforming_by_category(n_segments)
    if not conforming:
        return 0.0
    return len(set(generated) & set(conforming)) / len(conforming)


def pattern_hit_rate(
    generated: Iterable[str],
    test_corpus: PasswordCorpus,
    pattern: Pattern,
) -> float:
    """HR_P (eq. 5): hits among test passwords conforming to one pattern."""
    conforming = test_corpus.conforming(pattern)
    if not conforming:
        return 0.0
    return len(set(generated) & set(conforming)) / len(conforming)


# ----------------------------------------------------------------------
# Word integrity (Table III's qualitative observation, made quantitative)
# ----------------------------------------------------------------------
_LEXICON = {w.lower() for w in COMMON_WORDS} | {n.lower() for n in FIRST_NAMES} | set(
    KEYBOARD_WALKS
)
_PREFIXES = {w[:k] for w in _LEXICON for k in range(3, len(w))}


def word_integrity(passwords: Iterable[str], min_len: int = 4) -> float:
    """Fraction of letter segments that are complete lexicon words.

    A segment counts as *truncated* when it is a proper prefix of a
    lexicon word without being a word itself (e.g. ``polic`` from
    ``police``) — exactly the PassGPT failure mode Table III illustrates.
    Segments that are neither words nor prefixes are ignored (they carry
    no signal about truncation).

    Returns ``intact / (intact + truncated)``; 1.0 when no segment at all
    is lexicon-related.
    """
    intact = truncated = 0
    for pw in passwords:
        for seg in _letter_segments(pw, min_len):
            low = seg.lower()
            if low in _LEXICON:
                intact += 1
            elif low in _PREFIXES:
                truncated += 1
    total = intact + truncated
    return intact / total if total else 1.0


def _letter_segments(password: str, min_len: int) -> list[str]:
    segments: list[str] = []
    current: list[str] = []
    for ch in password:
        if ch.isalpha():
            current.append(ch)
        else:
            if len(current) >= min_len:
                segments.append("".join(current))
            current = []
    if len(current) >= min_len:
        segments.append("".join(current))
    return segments
