"""Distribution distances of §IV-D3 (eqs. 6 and 7).

Both are Euclidean distances between probability vectors: the length
distance over lengths 4..12, and the pattern distance over the test set's
top-``k`` patterns (the paper uses k=150, whose cumulative probability
exceeds 90%).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from ..datasets.corpus import PasswordCorpus
from ..tokenizer.patterns import (
    MAX_PASSWORD_LENGTH,
    MIN_PASSWORD_LENGTH,
    extract_pattern,
)

TOP_PATTERNS_FOR_DISTANCE = 150


def length_distance(generated: Sequence[str], test_corpus: PasswordCorpus) -> float:
    """Eq. 6: Euclidean distance between length distributions (4..12).

    The generated distribution is computed over the raw guess stream
    (duplicates included, as produced by the model); out-of-range lengths
    contribute probability mass to neither side, mirroring the paper's
    fixed 4..12 summation.
    """
    if not generated:
        raise ValueError("length_distance needs generated passwords")
    counts = Counter(len(pw) for pw in generated)
    total = len(generated)
    diffs = []
    for length in range(MIN_PASSWORD_LENGTH, MAX_PASSWORD_LENGTH + 1):
        p_test = test_corpus.length_probs.get(length, 0.0)
        p_model = counts.get(length, 0) / total
        diffs.append(p_test - p_model)
    return float(np.sqrt(np.sum(np.square(diffs))))


def pattern_distance(
    generated: Sequence[str],
    test_corpus: PasswordCorpus,
    top_k: int = TOP_PATTERNS_FOR_DISTANCE,
) -> float:
    """Eq. 7: Euclidean distance over the test set's top-``k`` patterns."""
    if not generated:
        raise ValueError("pattern_distance needs generated passwords")
    top = test_corpus.top_patterns(top_k)
    gen_counts: Counter[str] = Counter()
    for pw in generated:
        if pw:
            try:
                gen_counts[extract_pattern(pw).string] += 1
            except ValueError:
                continue  # characters outside the charset: no pattern
    total = len(generated)
    diffs = [p_test - gen_counts.get(pattern, 0) / total for pattern, p_test in top]
    return float(np.sqrt(np.sum(np.square(diffs))))
