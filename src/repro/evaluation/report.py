"""Plain-text table/series rendering for benches and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (markdown-pipe compatible)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, points: Sequence[tuple[object, object]]) -> str:
    """Render an (x, y) series as one labelled line (figure data)."""
    body = "  ".join(f"{x}:{_fmt(y)}" for x, y in points)
    return f"{name}: {body}"


def render_bar_chart(
    series: dict[str, Sequence[tuple[object, float]]],
    width: int = 40,
    value_format: str = "{:.2%}",
    title: str = "",
) -> str:
    """Render one or more (x, y) series as horizontal ASCII bars.

    Used to give the figure benches a visual artefact without any
    plotting dependency.  All series share one scale (the global max).
    """
    all_values = [y for points in series.values() for _, y in points]
    if not all_values:
        raise ValueError("render_bar_chart needs at least one point")
    peak = max(max(all_values), 1e-12)
    label_width = max(
        len(f"{name} {x}") for name, points in series.items() for x, _ in points
    )
    lines = [title] if title else []
    for name, points in series.items():
        for x, y in points:
            bar = "#" * max(0, round(y / peak * width))
            label = f"{name} {x}".ljust(label_width)
            lines.append(f"{label} |{bar} {value_format.format(y)}")
        lines.append("")
    return "\n".join(lines).rstrip()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}" if abs(value) < 10 else f"{value:.2f}"
    return str(value)


def percent(value: float) -> str:
    """Format a ratio as a percentage string like the paper's tables."""
    return f"{value * 100:.2f}%"
