"""Evaluation: metrics, distances, experiment harness, and report rendering."""

from .distances import TOP_PATTERNS_FOR_DISTANCE, length_distance, pattern_distance
from .experiments import (
    DEFAULT_DISTANCE_MODELS,
    DEFAULT_TRAWLING_MODELS,
    GuidedResult,
    TrawlingResult,
    cross_site_test,
    distance_growth,
    distance_test,
    pattern_guided_test,
    table2_dataset_characteristics,
    table3_guided_samples,
    trawling_test,
)
from .harness import SCALES, LabScale, ModelLab, SiteData
from .metrics import (
    category_hit_rate,
    hit_rate,
    hits,
    pattern_hit_rate,
    repeat_rate,
    word_integrity,
)
from .report import percent, render_bar_chart, render_series, render_table

__all__ = [
    "TOP_PATTERNS_FOR_DISTANCE",
    "length_distance",
    "pattern_distance",
    "DEFAULT_DISTANCE_MODELS",
    "DEFAULT_TRAWLING_MODELS",
    "GuidedResult",
    "TrawlingResult",
    "cross_site_test",
    "distance_growth",
    "distance_test",
    "pattern_guided_test",
    "table2_dataset_characteristics",
    "table3_guided_samples",
    "trawling_test",
    "SCALES",
    "LabScale",
    "ModelLab",
    "SiteData",
    "category_hit_rate",
    "hit_rate",
    "hits",
    "pattern_hit_rate",
    "repeat_rate",
    "word_integrity",
    "percent",
    "render_bar_chart",
    "render_series",
    "render_table",
]
