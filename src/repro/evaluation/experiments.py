"""Per-table / per-figure experiment drivers (DESIGN.md §3).

Each function reproduces one artefact of the paper's evaluation section
and returns plain data structures; ``benchmarks/`` wraps them in
pytest-benchmark targets and prints the rendered rows/series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..models.base import PasswordGuesser, PatternGuidedGuesser
from ..tokenizer.patterns import Pattern
from .distances import length_distance, pattern_distance
from .harness import ModelLab
from .metrics import hit_rate, pattern_hit_rate, repeat_rate, word_integrity

# ----------------------------------------------------------------------
# Table II — dataset characteristics
# ----------------------------------------------------------------------

def table2_dataset_characteristics(lab: ModelLab) -> list[dict]:
    """One row per site: unique, cleaned, retention rate."""
    rows = []
    for site in ("rockyou", "linkedin", "phpbb", "myspace", "yahoo"):
        report = lab.site_data(site).report
        rows.append(
            {
                "name": site,
                "unique": report.unique,
                "cleaned": report.cleaned,
                "retention": report.retention_rate,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figs. 8-9 — pattern guided guessing test (§IV-C)
# ----------------------------------------------------------------------

@dataclass
class GuidedResult:
    """Hit rates of the pattern guided guessing test."""

    #: segment count -> HR_s per model name (Fig. 8)
    category_hr: dict[int, dict[str, float]] = field(default_factory=dict)
    #: segment count -> pattern string -> HR_P per model name (Fig. 9)
    pattern_hr: dict[int, dict[str, dict[str, float]]] = field(default_factory=dict)
    #: patterns targeted per category
    targets: dict[int, list[str]] = field(default_factory=dict)


def pattern_guided_test(
    lab: ModelLab,
    site: str = "rockyou",
    top_per_category: int = 5,
    min_conforming: int = 5,
    max_categories: int = 12,
    guesses_per_pattern: Optional[int] = None,
    seed: int = 0,
) -> GuidedResult:
    """§IV-C protocol, scaled.

    1. group test-set patterns by segment count;
    2. pick the ``top_per_category`` most frequent patterns per category
       (the paper uses 21; the count is scale-dependent);
    3. generate a fixed number of guesses per target pattern with both
       PassGPT (filtered) and PagPassGPT (conditioned);
    4. compute HR_P per pattern and HR_s per category.
    """
    data = lab.site_data(site)
    guesses = guesses_per_pattern or lab.scale.guided_guesses_per_pattern
    models: dict[str, PatternGuidedGuesser] = {
        "PassGPT": lab.passgpt(site),
        "PagPassGPT": lab.pagpassgpt(site),
    }
    groups = data.test_corpus.patterns_by_segments()
    result = GuidedResult()
    for n_segments in sorted(groups):
        if n_segments > max_categories:
            continue
        candidates = [
            (p, prob)
            for p, prob in groups[n_segments]
            if len(data.test_corpus.conforming(Pattern.parse(p))) >= min_conforming
        ][:top_per_category]
        if not candidates:
            continue
        result.targets[n_segments] = [p for p, _ in candidates]
        per_pattern: dict[str, dict[str, float]] = {}
        union_guesses: dict[str, set[str]] = {name: set() for name in models}
        for pattern_str, _ in candidates:
            pattern = Pattern.parse(pattern_str)
            per_pattern[pattern_str] = {}
            for name, model in models.items():
                generated = model.generate_with_pattern(pattern, guesses, seed=seed)
                union_guesses[name].update(generated)
                per_pattern[pattern_str][name] = pattern_hit_rate(
                    generated, data.test_corpus, pattern
                )
        result.pattern_hr[n_segments] = per_pattern
        # HR_s over the targeted patterns' conforming passwords.
        conforming: set[str] = set()
        for pattern_str, _ in candidates:
            conforming.update(data.test_corpus.conforming(Pattern.parse(pattern_str)))
        result.category_hr[n_segments] = {
            name: (len(union_guesses[name] & conforming) / len(conforming))
            for name in models
        }
    return result


# ----------------------------------------------------------------------
# Table III — qualitative guided samples + word integrity
# ----------------------------------------------------------------------

def table3_guided_samples(
    lab: ModelLab,
    site: str = "rockyou",
    patterns: Sequence[str] = ("L5N2", "L5S1N2"),
    n_show: int = 10,
    n_score: int = 500,
    seed: int = 0,
) -> dict:
    """Sample passwords per (model, pattern) plus word-integrity scores."""
    models: dict[str, PatternGuidedGuesser] = {
        "PassGPT": lab.passgpt(site),
        "PagPassGPT": lab.pagpassgpt(site),
    }
    samples: dict[str, dict[str, list[str]]] = {}
    integrity: dict[str, float] = {}
    for name, model in models.items():
        samples[name] = {}
        scored: list[str] = []
        for pattern_str in patterns:
            generated = model.generate_with_pattern(
                Pattern.parse(pattern_str), n_score, seed=seed
            )
            samples[name][pattern_str] = generated[:n_show]
            scored.extend(generated)
        integrity[name] = word_integrity(scored)
    return {"samples": samples, "word_integrity": integrity}


# ----------------------------------------------------------------------
# Table IV + Fig. 10 — trawling attack test (§IV-D)
# ----------------------------------------------------------------------

@dataclass
class TrawlingResult:
    """Hit and repeat rates per model per guess budget."""

    budgets: list[int]
    #: model name -> [hit rate per budget]  (Table IV rows)
    hit_rates: dict[str, list[float]] = field(default_factory=dict)
    #: model name -> [repeat rate per budget]  (Fig. 10 series)
    repeat_rates: dict[str, list[float]] = field(default_factory=dict)


DEFAULT_TRAWLING_MODELS = (
    "PassGAN",
    "VAEPass",
    "PassFlow",
    "PassGPT",
    "PagPassGPT",
    "PagPassGPT-D&C",
)


def trawling_test(
    lab: ModelLab,
    site: str = "rockyou",
    budgets: Optional[Sequence[int]] = None,
    model_names: Sequence[str] = DEFAULT_TRAWLING_MODELS,
    seed: int = 0,
) -> TrawlingResult:
    """§IV-D protocol: every model generates the largest budget once; hit
    and repeat rates are measured on each prefix of the guess stream.

    Measuring prefixes matches how a real attacker consumes a guess
    stream and keeps the per-budget numbers consistent with one another.
    """
    data = lab.site_data(site)
    budgets = list(budgets or lab.scale.guess_budgets)
    top = max(budgets)
    result = TrawlingResult(budgets=budgets)
    for name in model_names:
        model = _model_by_name(lab, name, site)
        if model.budget_sensitive:
            # D&C-GEN takes N as an algorithm input: each budget is a
            # fresh run, exactly as the paper evaluates Table IV.
            streams = [model.generate(budget, seed=seed) for budget in budgets]
        else:
            # Sampling models: a prefix of one long stream is identical in
            # distribution to a fresh shorter run, and far cheaper.
            generated = model.generate(top, seed=seed)
            streams = [generated[:budget] for budget in budgets]
        result.hit_rates[name] = [
            hit_rate(stream, data.test_set) for stream in streams
        ]
        result.repeat_rates[name] = [repeat_rate(stream) for stream in streams]
    return result


def _model_by_name(lab: ModelLab, name: str, site: str) -> PasswordGuesser:
    key = name.lower()
    if key == "pagpassgpt":
        return lab.pagpassgpt(site)
    if key == "passgpt":
        return lab.passgpt(site)
    if key in ("pagpassgpt-d&c", "pagpassgptdc", "pagpassgpt-dc"):
        return lab.pagpassgpt_dc(site)
    return lab.baseline(key, site)


# ----------------------------------------------------------------------
# Table V + Fig. 11 — distribution distances (§IV-D3)
# ----------------------------------------------------------------------

DEFAULT_DISTANCE_MODELS = ("PassGAN", "VAEPass", "PassFlow", "PassGPT", "PagPassGPT")


def distance_test(
    lab: ModelLab,
    site: str = "rockyou",
    budget: Optional[int] = None,
    model_names: Sequence[str] = DEFAULT_DISTANCE_MODELS,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Table V: length/pattern distance of each model's generated set.

    PagPassGPT-D&C is excluded, as in the paper (it consumes patterns as
    input, so its pattern distribution is the input distribution).
    """
    data = lab.site_data(site)
    budget = budget or max(lab.scale.guess_budgets)
    out: dict[str, dict[str, float]] = {}
    for name in model_names:
        generated = _model_by_name(lab, name, site).generate(budget, seed=seed)
        out[name] = {
            "length_distance": length_distance(generated, data.test_corpus),
            "pattern_distance": pattern_distance(generated, data.test_corpus),
        }
    return out


def distance_growth(
    lab: ModelLab,
    site: str = "rockyou",
    budgets: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Fig. 11: PagPassGPT's distances as the generation budget grows."""
    data = lab.site_data(site)
    budgets = list(budgets or lab.scale.guess_budgets)
    generated = lab.pagpassgpt(site).generate(max(budgets), seed=seed)
    return {
        "budgets": budgets,
        "length_distance": [
            length_distance(generated[:b], data.test_corpus) for b in budgets
        ],
        "pattern_distance": [
            pattern_distance(generated[:b], data.test_corpus) for b in budgets
        ],
    }


# ----------------------------------------------------------------------
# Table VI — cross-site attack test (§IV-E)
# ----------------------------------------------------------------------

def cross_site_test(
    lab: ModelLab,
    train_sites: Sequence[str] = ("rockyou", "linkedin"),
    eval_sites: Sequence[str] = ("phpbb", "myspace", "yahoo"),
    budget: Optional[int] = None,
    model_names: Sequence[str] = ("PassGPT", "PagPassGPT", "PagPassGPT-D&C"),
    seed: int = 0,
) -> dict[str, dict[str, dict[str, float]]]:
    """§IV-E: train on each big site, evaluate hit rate on the small sites.

    Returns ``{train_site: {model: {eval_site: hit_rate}}}``.
    """
    budget = budget or lab.scale.crosssite_budget
    results: dict[str, dict[str, dict[str, float]]] = {}
    for train_site in train_sites:
        results[train_site] = {}
        for name in model_names:
            model = _model_by_name(lab, name, train_site)
            generated = set(model.generate(budget, seed=seed))
            results[train_site][name] = {}
            for eval_site in eval_sites:
                target = lab.eval_corpus(eval_site).password_set
                results[train_site][name][eval_site] = len(generated & target) / len(target)
    return results
