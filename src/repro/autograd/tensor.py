"""Reverse-mode automatic differentiation on numpy arrays.

This module is the substrate that replaces PyTorch in the reproduction: a
``Tensor`` wraps a ``numpy.ndarray`` and records the operations applied to
it so that :meth:`Tensor.backward` can propagate gradients through the
recorded graph.  The design follows the classic tape-free "define-by-run"
scheme: every op returns a new ``Tensor`` holding references to its parents
and a closure that, given the output gradient, accumulates gradients into
the parents.

Only the ops needed by the password-guessing models live here; fused or
numerically delicate ops (softmax, layer-norm, cross-entropy) are in
:mod:`repro.autograd.functional`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int]

_DEFAULT_DTYPE = np.float32

# Global switch used by ``no_grad`` to cheaply disable graph recording
# during generation / evaluation, where gradients are never needed.
_grad_enabled = True


class no_grad:
    """Context manager that disables gradient recording.

    Mirrors ``torch.no_grad()``: inside the block every op produces
    constant tensors with no parents, which keeps generation loops from
    retaining the whole computation graph.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether ops currently record the backward graph."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting in the forward pass replicates values; the corresponding
    backward op must therefore *sum* the incoming gradient over every axis
    that was expanded.
    """
    if grad.shape == shape:
        return grad
    # Sum out leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


def as_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no-op if it already is one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=_DEFAULT_DTYPE))


class Tensor:
    """A numpy array plus the machinery for reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array content.  Always stored as ``float32`` unless the caller
        passes an array with another float dtype explicitly.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    parents:
        The tensors this one was computed from (internal).
    backward_fn:
        Closure mapping the output gradient to parent-gradient updates
        (internal).
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: np.ndarray,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        if not isinstance(data, np.ndarray):
            data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        elif data.dtype != _DEFAULT_DTYPE and np.issubdtype(data.dtype, np.floating):
            data = data.astype(_DEFAULT_DTYPE)
        self.data = data
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _grad_enabled
        self._parents: tuple[Tensor, ...] = tuple(parents) if _grad_enabled else ()
        self._backward_fn = backward_fn if _grad_enabled else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    def item(self) -> float:
        """Return the scalar value of a one-element tensor."""
        if self.data.size != 1:
            raise ValueError(f"item() requires a one-element tensor, got shape {self.data.shape}")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if self.grad is None:
            self.grad = grad.astype(_DEFAULT_DTYPE, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (i.e. ``d self / d self``); for the usual
        scalar-loss case no argument is needed.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=_DEFAULT_DTYPE)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward_fn is None:
                # Leaf tensor: stash the gradient.
                node._accumulate(node_grad)
            if node._backward_fn is not None:
                # The op's backward closure returns (parent, grad) pairs.
                # It deliberately does NOT reference the output tensor, so
                # graphs are reference-cycle-free and are reclaimed by
                # refcounting the moment the loss tensor goes out of scope
                # (a cycle here once forced multi-gigabyte gen-2 GC churn
                # in long benchmark processes).
                for parent, pgrad in node._backward_fn(node_grad):
                    key = id(parent)
                    if key in grads:
                        grads[key] += pgrad
                    else:
                        grads[key] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data + other_t.data

        def backward(g: np.ndarray, a=self, b=other_t) -> list:
            pending = []
            if a.requires_grad or a._parents:
                pending.append((a, _unbroadcast(g, a.data.shape)))
            if b.requires_grad or b._parents:
                pending.append((b, _unbroadcast(g, b.data.shape)))
            return pending

        return _op(out_data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray, a=self) -> list:
            return [(a, -g)]

        return _op(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data * other_t.data

        def backward(g: np.ndarray, a=self, b=other_t) -> list:
            pending = []
            if a.requires_grad or a._parents:
                pending.append((a, _unbroadcast(g * b.data, a.data.shape)))
            if b.requires_grad or b._parents:
                pending.append((b, _unbroadcast(g * a.data, b.data.shape)))
            return pending

        return _op(out_data, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data / other_t.data

        def backward(g: np.ndarray, a=self, b=other_t) -> list:
            pending = []
            if a.requires_grad or a._parents:
                pending.append((a, _unbroadcast(g / b.data, a.data.shape)))
            if b.requires_grad or b._parents:
                pending.append(
                    (b, _unbroadcast(-g * a.data / (b.data * b.data), b.data.shape))
                )
            return pending

        return _op(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(g: np.ndarray, a=self, n=exponent) -> list:
            return [(a, g * n * a.data ** (n - 1))]

        return _op(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix multiply with full batched-broadcasting support."""
        other_t = as_tensor(other)
        out_data = self.data @ other_t.data

        def backward(g: np.ndarray, a=self, b=other_t) -> list:
            pending = []
            if a.requires_grad or a._parents:
                ga = g @ np.swapaxes(b.data, -1, -2)
                pending.append((a, _unbroadcast(ga, a.data.shape)))
            if b.requires_grad or b._parents:
                gb = np.swapaxes(a.data, -1, -2) @ g
                pending.append((b, _unbroadcast(gb, b.data.shape)))
            return pending

        return _op(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray, a=self, out=out_data) -> list:
            return [(a, g * out)]

        return _op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray, a=self) -> list:
            return [(a, g / a.data)]

        return _op(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray, a=self, out=out_data) -> list:
            return [(a, g * 0.5 / out)]

        return _op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray, a=self, out=out_data) -> list:
            return [(a, g * (1.0 - out * out))]

        return _op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray, a=self, out=out_data) -> list:
            return [(a, g * out * (1.0 - out))]

        return _op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray, a=self, m=mask) -> list:
            return [(a, g * m)]

        return _op(self.data * mask, (self,), backward)

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, slope * self.data)

        def backward(g: np.ndarray, a=self, m=mask, s=slope) -> list:
            return [(a, g * np.where(m, 1.0, s).astype(_DEFAULT_DTYPE))]

        return _op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(g: np.ndarray, a=self, s=sign) -> list:
            return [(a, g * s)]

        return _op(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray, a=self, ax=axis, kd=keepdims) -> list:
            if ax is None:
                grad = np.broadcast_to(g, a.data.shape)
            else:
                if not kd:
                    g = np.expand_dims(g, ax)
                grad = np.broadcast_to(g, a.data.shape)
            return [(a, np.ascontiguousarray(grad))]

        return _op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[i] for i in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray, a=self, ax=axis, kd=keepdims, out=out_data) -> list:
            if ax is None:
                mask = (a.data == out).astype(_DEFAULT_DTYPE)
                grad = g * mask / mask.sum()
            else:
                out_b = out if kd else np.expand_dims(out, ax)
                g_b = g if kd else np.expand_dims(g, ax)
                mask = (a.data == out_b).astype(_DEFAULT_DTYPE)
                mask /= mask.sum(axis=ax, keepdims=True)
                grad = g_b * mask
            return [(a, grad)]

        return _op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray, a=self) -> list:
            return [(a, g.reshape(a.data.shape))]

        return _op(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(g: np.ndarray, a=self, inv=tuple(inverse)) -> list:
            return [(a, g.transpose(inv))]

        return _op(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(g: np.ndarray, a=self, a1=axis1, a2=axis2) -> list:
            return [(a, np.swapaxes(g, a1, a2))]

        return _op(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g: np.ndarray, a=self, idx=index) -> list:
            grad = np.zeros_like(a.data)
            np.add.at(grad, idx, g)
            return [(a, grad)]

        return _op(out_data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows along the first axis (embedding lookup).

        ``indices`` may have any shape; the result has shape
        ``indices.shape + self.shape[1:]``.
        """
        idx = np.asarray(indices)
        out_data = self.data[idx]

        def backward(g: np.ndarray, a=self, i=idx) -> list:
            grad = np.zeros_like(a.data)
            np.add.at(grad, i.reshape(-1), g.reshape(-1, a.data.shape[-1]))
            return [(a, grad)]

        return _op(out_data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor equal to ``self`` but with ``value`` where ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, np.asarray(value, dtype=_DEFAULT_DTYPE), self.data)

        def backward(g: np.ndarray, a=self, m=mask) -> list:
            return [(a, np.where(m, 0.0, g).astype(_DEFAULT_DTYPE))]

        return _op(out_data, (self,), backward)

    def pad_last(self, before: int, after: int) -> "Tensor":
        """Zero-pad the last axis by ``(before, after)``."""
        pad_width = [(0, 0)] * (self.data.ndim - 1) + [(before, after)]
        out_data = np.pad(self.data, pad_width)

        def backward(g: np.ndarray, a=self, b=before) -> list:
            sl = [slice(None)] * (a.data.ndim - 1) + [slice(b, b + a.data.shape[-1])]
            return [(a, g[tuple(sl)])]

        return _op(out_data, (self,), backward)


def _op(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward: Callable[[np.ndarray], list],
) -> Tensor:
    """Create the output tensor for an op, wiring its backward closure.

    ``backward`` maps the output gradient to a list of
    ``(parent, gradient)`` pairs, which :meth:`Tensor.backward` merges
    into its gradient dictionary.  The closure must not capture the
    output tensor itself: keeping graphs cycle-free lets refcounting
    reclaim them immediately.
    """
    if not _grad_enabled or not any(p.requires_grad or p._parents for p in parents):
        return Tensor(data)

    out = Tensor(data, requires_grad=True, parents=parents)
    out._backward_fn = backward
    return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray, ts=tuple(tensors), offs=offsets, ax=axis) -> list:
        pending = []
        for i, t in enumerate(ts):
            if t.requires_grad or t._parents:
                sl = [slice(None)] * g.ndim
                sl[ax] = slice(int(offs[i]), int(offs[i + 1]))
                pending.append((t, g[tuple(sl)]))
        return pending

    return _op(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray, ts=tuple(tensors), ax=axis) -> list:
        pending = []
        for i, t in enumerate(ts):
            if t.requires_grad or t._parents:
                pending.append((t, np.take(g, i, axis=ax)))
        return pending

    return _op(out_data, tensors, backward)


def zeros(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(tuple(shape), dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(tuple(shape), dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)
