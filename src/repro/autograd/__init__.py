"""Reverse-mode autodiff engine on numpy (the reproduction's PyTorch substitute)."""

from .tensor import Tensor, as_tensor, concat, stack, zeros, ones, no_grad, is_grad_enabled
from .functional import softmax, log_softmax, gelu, layer_norm, cross_entropy, dropout
from .gradcheck import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "zeros",
    "ones",
    "no_grad",
    "is_grad_enabled",
    "softmax",
    "log_softmax",
    "gelu",
    "layer_norm",
    "cross_entropy",
    "dropout",
    "check_gradients",
    "numerical_gradient",
]
