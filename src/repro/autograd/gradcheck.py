"""Finite-difference gradient checking for the autograd engine.

Used by the test suite to validate every op and every fused functional
against central-difference numerical gradients.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-2,
    rtol: float = 1e-2,
    eps: float = 1e-3,
) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; the
    tolerance is loose because tensors are float32.
    """
    for t in inputs:
        t.grad = None
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        expected = numerical_gradient(fn, inputs, wrt=i, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{actual}\nnumeric:\n{expected}"
            )
