"""Fused, numerically stable ops built on :mod:`repro.autograd.tensor`.

These implement the delicate pieces of the GPT-2 forward/backward pass as
single graph nodes with hand-derived gradients, both for numerical
stability (log-sum-exp tricks) and to keep graphs small during training.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, _op, _DEFAULT_DTYPE

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with a fused backward pass."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray, a=x, s=out_data, ax=axis) -> list:
        inner = (g * s).sum(axis=ax, keepdims=True)
        return [(a, s * (g - inner))]

    return _op(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (log-sum-exp stabilised)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp

    def backward(g: np.ndarray, a=x, ls=out_data, ax=axis) -> list:
        softmax_vals = np.exp(ls)
        return [(a, g - softmax_vals * g.sum(axis=ax, keepdims=True))]

    return _op(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """GELU activation (tanh approximation, as in GPT-2).

    Cubes are spelled as repeated multiplication: ``ndarray ** 3`` routes
    through the generic pow loop, which is two orders of magnitude slower
    on this hot path.
    """
    data = x.data
    x2 = data * data
    inner = _SQRT_2_OVER_PI * (data + 0.044715 * (x2 * data))
    tanh_inner = np.tanh(inner)
    out_data = 0.5 * data * (1.0 + tanh_inner)

    def backward(g: np.ndarray, a=x, t=tanh_inner, x2=x2) -> list:
        d_inner = _SQRT_2_OVER_PI * (1.0 + (3 * 0.044715) * x2)
        grad = 0.5 * (1.0 + t) + 0.5 * a.data * (1.0 - t * t) * d_inner
        return [(a, g * grad)]

    return _op(out_data, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis with affine transform.

    Fused node: computes mean/variance once and reuses them in the
    backward pass, which matters because GPT-2 calls this twice per block.
    """
    mu = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = centered * inv_std
    out_data = x_hat * weight.data + bias.data

    def backward(g: np.ndarray, a=x, w=weight, b=bias, xh=x_hat, istd=inv_std) -> list:
        pending = []
        n = a.data.shape[-1]
        g_xhat = g * w.data
        if a.requires_grad or a._parents:
            # Classic fused layer-norm gradient.
            grad_x = (
                g_xhat
                - g_xhat.mean(axis=-1, keepdims=True)
                - xh * (g_xhat * xh).mean(axis=-1, keepdims=True)
            ) * istd
            pending.append((a, grad_x))
        if w.requires_grad:
            axes = tuple(range(g.ndim - 1))
            pending.append((w, (g * xh).sum(axis=axes)))
        if b.requires_grad:
            axes = tuple(range(g.ndim - 1))
            pending.append((b, g.sum(axis=axes)))
        return pending

    return _op(out_data, (x, weight, bias), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean token-level cross-entropy between ``logits`` and ``targets``.

    Parameters
    ----------
    logits:
        Shape ``(..., vocab)``.
    targets:
        Integer array with shape ``logits.shape[:-1]``.
    ignore_index:
        Target value whose positions contribute neither loss nor gradient
        (used to mask ``<PAD>`` tokens).
    """
    targets = np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
    n_valid = int(valid.sum())
    if n_valid == 0:
        raise ValueError("cross_entropy received no valid target positions")

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - logsumexp

    safe_targets = np.where(valid, flat_targets, 0)
    picked = log_probs[np.arange(len(flat_targets)), safe_targets]
    loss = -(picked * valid).sum() / n_valid
    out_data = np.asarray(loss, dtype=_DEFAULT_DTYPE)

    def backward(g: np.ndarray, a=logits, lp=log_probs, tg=safe_targets, v=valid, n=n_valid) -> list:
        probs = np.exp(lp)
        probs[np.arange(len(tg)), tg] -= 1.0
        probs *= (v / n)[:, None]
        return [(a, (g * probs).reshape(a.data.shape))]

    return _op(out_data, (logits,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = (rng.random(x.data.shape) >= p).astype(_DEFAULT_DTYPE) / (1.0 - p)
    out_data = x.data * keep

    def backward(g: np.ndarray, a=x, k=keep) -> list:
        return [(a, g * k)]

    return _op(out_data, (x,), backward)
