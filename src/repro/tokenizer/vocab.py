"""The PagPassGPT vocabulary (§III-B1).

Three token categories:

* 5 special tokens — ``<BOS>``, ``<SEP>``, ``<EOS>``, ``<UNK>``, ``<PAD>``;
* 36 pattern tokens — ``L1..L12``, ``N1..N12``, ``S1..S12``;
* 94 visible-ASCII character tokens (space excluded).

That is 135 tokens; the paper says "totaling 136", but its own breakdown
(94 + 5 + 36) sums to 135 — we implement the breakdown and document the
off-by-one in DESIGN.md §6.
"""

from __future__ import annotations

import numpy as np

from .charset import VISIBLE_ASCII
from .patterns import MAX_SEGMENT_LENGTH

BOS = "<BOS>"
SEP = "<SEP>"
EOS = "<EOS>"
UNK = "<UNK>"
PAD = "<PAD>"
SPECIAL_TOKENS = (BOS, SEP, EOS, UNK, PAD)

PATTERN_TOKENS = tuple(
    f"{cls}{n}" for cls in ("L", "N", "S") for n in range(1, MAX_SEGMENT_LENGTH + 1)
)

CHAR_TOKENS = tuple(VISIBLE_ASCII)


class Vocabulary:
    """Bidirectional token <-> id mapping.

    Id layout: specials first (``<BOS>``=0, ``<SEP>``=1, ``<EOS>``=2,
    ``<UNK>``=3, ``<PAD>``=4), then the pattern tokens (36 in the paper's
    configuration), then the 94 character tokens.

    ``max_segment_length`` extends the pattern-token range for the longer-
    password configurations the paper sketches in §V ("adding new
    characters into the vocabulary of the tokenizer").
    """

    def __init__(self, max_segment_length: int = MAX_SEGMENT_LENGTH) -> None:
        if max_segment_length < 1:
            raise ValueError("max_segment_length must be >= 1")
        self.max_segment_length = max_segment_length
        pattern_tokens = tuple(
            f"{cls}{n}" for cls in ("L", "N", "S") for n in range(1, max_segment_length + 1)
        )
        tokens = SPECIAL_TOKENS + pattern_tokens + CHAR_TOKENS
        self._n_pattern = len(pattern_tokens)
        self._id_of = {tok: i for i, tok in enumerate(tokens)}
        self._tok_of = tokens
        #: Token strings as a numpy array, indexable by id *arrays* —
        #: ``vocab.token_array[id_matrix]`` decodes a whole batch at once
        #: where per-element :meth:`token_of` calls would loop in Python.
        self.token_array = np.array(tokens)
        self.bos_id = self._id_of[BOS]
        self.sep_id = self._id_of[SEP]
        self.eos_id = self._id_of[EOS]
        self.unk_id = self._id_of[UNK]
        self.pad_id = self._id_of[PAD]
        self.pattern_ids = tuple(self._id_of[t] for t in pattern_tokens)
        self.char_ids = tuple(self._id_of[t] for t in CHAR_TOKENS)

    def __len__(self) -> int:
        return len(self._tok_of)

    def id_of(self, token: str) -> int:
        """Token -> id; unknown tokens map to ``<UNK>``."""
        return self._id_of.get(token, self.unk_id)

    def token_of(self, token_id: int) -> str:
        """Id -> token; raises ``IndexError`` for out-of-range ids."""
        if not 0 <= token_id < len(self._tok_of):
            raise IndexError(f"token id {token_id} outside vocabulary of size {len(self)}")
        return self._tok_of[token_id]

    def is_special(self, token_id: int) -> bool:
        return token_id < len(SPECIAL_TOKENS)

    def is_pattern(self, token_id: int) -> bool:
        lo = len(SPECIAL_TOKENS)
        return lo <= token_id < lo + self._n_pattern

    def is_char(self, token_id: int) -> bool:
        return token_id >= len(SPECIAL_TOKENS) + self._n_pattern


#: Shared singleton — the vocabulary is fixed by the paper, so every
#: component can use the same instance.
VOCAB = Vocabulary()
