"""The PagPassGPT tokenizer: preprocessing + encode/decode (§III-B1, Fig. 4-5).

Training preprocessing turns a password into a *rule*::

    <BOS> || pattern tokens || <SEP> || password chars || <EOS>  (+ <PAD>…)

Generation preprocessing turns an input pattern into a *prompt*::

    <BOS> || pattern tokens || <SEP>

The companion :class:`PasswordOnlyTokenizer` implements the PassGPT
baseline's encoding (no pattern prefix): ``<BOS> || password || <EOS>``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .charset import CLASS_MEMBERS
from .patterns import MAX_PASSWORD_LENGTH, Pattern, extract_pattern
from .vocab import VOCAB, Vocabulary


class PasswordTokenizer:
    """Tokenizer with PCFG pattern preprocessing (PagPassGPT)."""

    #: <BOS> + up to 12 pattern tokens + <SEP> + up to 12 chars + <EOS> = 27,
    #: padded to the paper's input window of 32 tokens.  Longer-password
    #: configurations (§V) pass a wider vocabulary plus matching
    #: ``max_password_length`` and ``block_size``.
    def __init__(
        self,
        vocab: Vocabulary = VOCAB,
        block_size: int = 32,
        max_password_length: int = MAX_PASSWORD_LENGTH,
    ) -> None:
        if max_password_length > vocab.max_segment_length:
            raise ValueError(
                "vocabulary cannot express runs as long as max_password_length"
            )
        min_block = 3 + 2 * max_password_length
        if block_size < min_block:
            raise ValueError(f"block_size must be >= {min_block}, got {block_size}")
        self.vocab = vocab
        self.block_size = block_size
        self.max_password_length = max_password_length
        # Per-class candidate char ids for constrained generation:
        # 52 letters / 10 digits / 32 specials (the paper's c values, §III-C1).
        self.class_char_ids = {
            cls: np.array([vocab.id_of(ch) for ch in members], dtype=np.int64)
            for cls, members in CLASS_MEMBERS.items()
        }
        #: class -> length -> pattern token id (e.g. 'L' -> 4 -> id("L4")),
        #: used by grammar-constrained free generation.
        self.pattern_token_id = {
            cls: {
                length: vocab.id_of(f"{cls}{length}")
                for length in range(1, vocab.max_segment_length + 1)
            }
            for cls in CLASS_MEMBERS
        }
        #: pattern token id -> (class, length), the inverse mapping.
        self.pattern_token_info = {
            token_id: (cls, length)
            for cls, by_len in self.pattern_token_id.items()
            for length, token_id in by_len.items()
        }

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def pattern_ids(self, pattern: Pattern) -> list[int]:
        """Ids of the pattern tokens, e.g. L4N3S1 -> [id(L4), id(N3), id(S1)]."""
        return [self.vocab.id_of(seg.token) for seg in pattern]

    def encode_rule(self, password: str, pad: bool = True) -> list[int]:
        """Training encoding: ``<BOS> pattern <SEP> password <EOS> [<PAD>…]``."""
        if self.max_password_length == MAX_PASSWORD_LENGTH:
            pattern = extract_pattern(password)  # cached hot path
        else:
            pattern = Pattern.from_password(password, self.vocab.max_segment_length)
        ids = [self.vocab.bos_id]
        ids.extend(self.pattern_ids(pattern))
        ids.append(self.vocab.sep_id)
        ids.extend(self.vocab.id_of(ch) for ch in password)
        ids.append(self.vocab.eos_id)
        if len(ids) > self.block_size:
            raise ValueError(
                f"encoded rule for {password!r} is {len(ids)} tokens; "
                f"block size is {self.block_size}"
            )
        if pad:
            ids.extend([self.vocab.pad_id] * (self.block_size - len(ids)))
        return ids

    def encode_prompt(self, pattern: Pattern) -> list[int]:
        """Generation encoding: ``<BOS> pattern <SEP>`` (right of Fig. 4)."""
        return [self.vocab.bos_id, *self.pattern_ids(pattern), self.vocab.sep_id]

    def encode_corpus(self, passwords: Iterable[str]) -> np.ndarray:
        """Encode many passwords into a padded ``(n, block_size)`` id matrix."""
        rows = [self.encode_rule(pw) for pw in passwords]
        return np.asarray(rows, dtype=np.int64)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_password(self, ids: Sequence[int]) -> str:
        """Extract the password substring of a full or partial rule.

        Reads the character tokens between ``<SEP>`` and ``<EOS>`` (or the
        end of the sequence); pattern tokens and pads are skipped.
        """
        vocab = self.vocab
        chars: list[str] = []
        seen_sep = False
        for token_id in ids:
            token_id = int(token_id)
            if token_id == vocab.sep_id:
                seen_sep = True
                continue
            if token_id == vocab.eos_id:
                break
            if seen_sep and vocab.is_char(token_id):
                chars.append(vocab.token_of(token_id))
        return "".join(chars)

    def decode_tokens(self, ids: Sequence[int]) -> list[str]:
        """Ids -> token strings (diagnostic / Fig. 5 decode direction)."""
        return [self.vocab.token_of(int(i)) for i in ids]

    # ------------------------------------------------------------------
    # Constraint helpers
    # ------------------------------------------------------------------
    def allowed_ids_at(self, pattern: Pattern, position: int) -> np.ndarray:
        """Candidate token ids for password position ``position`` (0-based).

        Within the password, only characters of the class the pattern
        prescribes are allowed; one past the end, only ``<EOS>``.
        """
        classes = pattern.char_classes()
        if position < len(classes):
            return self.class_char_ids[classes[position]]
        if position == len(classes):
            return np.array([self.vocab.eos_id], dtype=np.int64)
        raise IndexError(f"position {position} beyond pattern length {len(classes)}")


class PasswordOnlyTokenizer:
    """PassGPT-style tokenizer: no pattern prefix (baseline, §I-A1).

    Encoding is ``<BOS> password <EOS> [<PAD>…]`` over the same shared
    vocabulary, so both models can reuse the GPT backbone unchanged.
    """

    def __init__(self, vocab: Vocabulary = VOCAB, block_size: int = 16) -> None:
        if block_size < MAX_PASSWORD_LENGTH + 2:
            raise ValueError(f"block_size must be >= {MAX_PASSWORD_LENGTH + 2}")
        self.vocab = vocab
        self.block_size = block_size
        self.class_char_ids = {
            cls: np.array([vocab.id_of(ch) for ch in members], dtype=np.int64)
            for cls, members in CLASS_MEMBERS.items()
        }

    def encode(self, password: str, pad: bool = True) -> list[int]:
        ids = [self.vocab.bos_id]
        ids.extend(self.vocab.id_of(ch) for ch in password)
        ids.append(self.vocab.eos_id)
        if len(ids) > self.block_size:
            raise ValueError(
                f"password {password!r} encodes to {len(ids)} tokens; "
                f"block size is {self.block_size}"
            )
        if pad:
            ids.extend([self.vocab.pad_id] * (self.block_size - len(ids)))
        return ids

    def encode_corpus(self, passwords: Iterable[str]) -> np.ndarray:
        return np.asarray([self.encode(pw) for pw in passwords], dtype=np.int64)

    def decode(self, ids: Sequence[int]) -> str:
        """Extract the password characters up to ``<EOS>``."""
        chars: list[str] = []
        for token_id in ids:
            token_id = int(token_id)
            if token_id == self.vocab.eos_id:
                break
            if self.vocab.is_char(token_id):
                chars.append(self.vocab.token_of(token_id))
        return "".join(chars)
