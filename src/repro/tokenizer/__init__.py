"""PCFG pattern extraction and the PagPassGPT / PassGPT tokenizers."""

from .charset import (
    CHAR_CLASSES,
    CLASS_DIGIT,
    CLASS_LETTER,
    CLASS_MEMBERS,
    CLASS_SPECIAL,
    DIGITS,
    LETTERS,
    SPECIALS,
    VISIBLE_ASCII,
    char_class,
    is_visible_ascii,
)
from .patterns import (
    MAX_PASSWORD_LENGTH,
    MAX_SEGMENT_LENGTH,
    MIN_PASSWORD_LENGTH,
    Pattern,
    Segment,
    extract_pattern,
    group_by_segments,
)
from .extended import build_extended_tokenizer, extended_gpt2_config
from .vocab import BOS, EOS, PAD, SEP, UNK, VOCAB, Vocabulary
from .tokenizer import PasswordOnlyTokenizer, PasswordTokenizer

__all__ = [
    "CHAR_CLASSES",
    "CLASS_DIGIT",
    "CLASS_LETTER",
    "CLASS_MEMBERS",
    "CLASS_SPECIAL",
    "DIGITS",
    "LETTERS",
    "SPECIALS",
    "VISIBLE_ASCII",
    "char_class",
    "is_visible_ascii",
    "MAX_PASSWORD_LENGTH",
    "MAX_SEGMENT_LENGTH",
    "MIN_PASSWORD_LENGTH",
    "Pattern",
    "Segment",
    "extract_pattern",
    "group_by_segments",
    "build_extended_tokenizer",
    "extended_gpt2_config",
    "BOS",
    "EOS",
    "PAD",
    "SEP",
    "UNK",
    "VOCAB",
    "Vocabulary",
    "PasswordOnlyTokenizer",
    "PasswordTokenizer",
]
