"""Character classes used by PCFG segmentation and the tokenizer vocabulary.

Per §IV-A of the paper, passwords are restricted to the 94 visible ASCII
characters (codes 33-126, i.e. printable ASCII minus the space): 52
letters, 10 digits and 32 special characters.
"""

from __future__ import annotations

import string

LETTERS: str = string.ascii_letters
DIGITS: str = string.digits
SPECIALS: str = "".join(
    chr(c) for c in range(33, 127) if chr(c) not in string.ascii_letters + string.digits
)
VISIBLE_ASCII: str = "".join(chr(c) for c in range(33, 127))

assert len(LETTERS) == 52 and len(DIGITS) == 10 and len(SPECIALS) == 32
assert len(VISIBLE_ASCII) == 94

CLASS_LETTER = "L"
CLASS_DIGIT = "N"
CLASS_SPECIAL = "S"
CHAR_CLASSES = (CLASS_LETTER, CLASS_DIGIT, CLASS_SPECIAL)

_CLASS_OF = {}
for _c in LETTERS:
    _CLASS_OF[_c] = CLASS_LETTER
for _c in DIGITS:
    _CLASS_OF[_c] = CLASS_DIGIT
for _c in SPECIALS:
    _CLASS_OF[_c] = CLASS_SPECIAL

CLASS_MEMBERS = {CLASS_LETTER: LETTERS, CLASS_DIGIT: DIGITS, CLASS_SPECIAL: SPECIALS}


def char_class(ch: str) -> str:
    """Return 'L', 'N' or 'S' for a visible-ASCII character.

    Raises ``ValueError`` for anything outside the supported charset
    (non-ASCII, space, control characters).
    """
    try:
        return _CLASS_OF[ch]
    except KeyError:
        raise ValueError(f"character {ch!r} is outside the visible-ASCII password charset") from None


def is_visible_ascii(text: str) -> bool:
    """True if every character of ``text`` is in the 94-char password set."""
    return all(ch in _CLASS_OF for ch in text)
