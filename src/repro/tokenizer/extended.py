"""Longer-password configurations (§V of the paper).

The paper's model is capped at 12-character passwords by its vocabulary
and position encoding, and §V notes that supporting longer passwords "is
a straightforward process, accomplished by extending the input window"
and the tokenizer vocabulary.  This module does exactly that: it builds a
wider vocabulary (pattern tokens up to ``L<n>``/``N<n>``/``S<n>``) and a
matching tokenizer/GPT-2 configuration.
"""

from __future__ import annotations

from ..nn.transformer import GPT2Config
from .patterns import ABSOLUTE_MAX_SEGMENT_LENGTH, MIN_PASSWORD_LENGTH
from .tokenizer import PasswordTokenizer
from .vocab import Vocabulary


def build_extended_tokenizer(max_password_length: int) -> PasswordTokenizer:
    """A :class:`PasswordTokenizer` for passwords up to the given length.

    The vocabulary grows by ``3 * (max_password_length - 12)`` pattern
    tokens and the block size to ``3 + 2 * max_password_length``
    (worst case: a fully alternating pattern plus framing tokens).
    """
    if not MIN_PASSWORD_LENGTH <= max_password_length <= ABSOLUTE_MAX_SEGMENT_LENGTH:
        raise ValueError(
            f"max_password_length must be in "
            f"[{MIN_PASSWORD_LENGTH}, {ABSOLUTE_MAX_SEGMENT_LENGTH}]"
        )
    vocab = Vocabulary(max_segment_length=max_password_length)
    return PasswordTokenizer(
        vocab=vocab,
        block_size=3 + 2 * max_password_length,
        max_password_length=max_password_length,
    )


def extended_gpt2_config(
    tokenizer: PasswordTokenizer,
    dim: int = 64,
    n_layers: int = 3,
    n_heads: int = 4,
    dropout: float = 0.1,
) -> GPT2Config:
    """A GPT-2 configuration matching an extended tokenizer."""
    return GPT2Config(
        vocab_size=len(tokenizer.vocab),
        block_size=tokenizer.block_size,
        dim=dim,
        n_layers=n_layers,
        n_heads=n_heads,
        dropout=dropout,
    )
