"""PCFG pattern extraction (§II-C) — e.g. ``"Pass123$" -> L4N3S1``.

A *pattern* is the sequence of maximal same-class runs of a password,
written as class letter + run length.  Patterns are both the conditioning
prefix of PagPassGPT and the unit of probability in the classical PCFG
baseline, so this module is shared by the whole model zoo.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, Sequence

from .charset import CHAR_CLASSES, CLASS_MEMBERS, char_class

#: Maximum per-segment run length representable in the paper's vocabulary
#: (pattern tokens L1..L12 / N1..N12 / S1..S12 — 36 tokens, §III-B1).
MAX_SEGMENT_LENGTH = 12

#: Hard ceiling for extended configurations (§V discusses longer
#: passwords as a straightforward retraining; ``repro.tokenizer.extended``
#: builds vocabularies up to this run length).
ABSOLUTE_MAX_SEGMENT_LENGTH = 32

#: Maximum password length after data cleaning (§IV-A1).
MAX_PASSWORD_LENGTH = 12
MIN_PASSWORD_LENGTH = 4

_SEGMENT_RE = re.compile(r"([LNS])(\d+)")


@dataclass(frozen=True)
class Segment:
    """One maximal same-class run: a class in {L, N, S} plus its length."""

    char_class: str
    length: int

    #: Per-instance length cap, excluded from equality/hash so that
    #: extended-configuration segments compare equal to standard ones.
    max_length: int = field(default=MAX_SEGMENT_LENGTH, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.char_class not in CHAR_CLASSES:
            raise ValueError(f"invalid character class {self.char_class!r}")
        if self.max_length > ABSOLUTE_MAX_SEGMENT_LENGTH:
            raise ValueError(
                f"max_length {self.max_length} exceeds the {ABSOLUTE_MAX_SEGMENT_LENGTH} ceiling"
            )
        if not 1 <= self.length <= self.max_length:
            raise ValueError(
                f"segment length {self.length} outside [1, {self.max_length}]"
            )

    @property
    def token(self) -> str:
        """The pattern-token spelling, e.g. ``"L4"``."""
        return f"{self.char_class}{self.length}"

    @property
    def alphabet(self) -> str:
        """The characters a member of this segment may use."""
        return CLASS_MEMBERS[self.char_class]


@dataclass(frozen=True)
class Pattern:
    """An ordered sequence of segments, e.g. ``L4N3S1``."""

    segments: tuple[Segment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("pattern must have at least one segment")
        for prev, cur in zip(self.segments, self.segments[1:]):
            if prev.char_class == cur.char_class:
                raise ValueError(
                    f"adjacent segments share class {cur.char_class!r}; runs must be maximal"
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_password(
        cls, password: str, max_segment_length: int = MAX_SEGMENT_LENGTH
    ) -> "Pattern":
        """Extract the PCFG pattern of a password."""
        if not password:
            raise ValueError("cannot extract a pattern from an empty password")
        segments: list[Segment] = []
        run_class = char_class(password[0])
        run_len = 1
        for ch in password[1:]:
            cls_ch = char_class(ch)
            if cls_ch == run_class:
                run_len += 1
            else:
                segments.append(Segment(run_class, run_len, max_segment_length))
                run_class, run_len = cls_ch, 1
        segments.append(Segment(run_class, run_len, max_segment_length))
        return cls(tuple(segments))

    @classmethod
    def parse(cls, text: str, max_segment_length: int = MAX_SEGMENT_LENGTH) -> "Pattern":
        """Parse a pattern string such as ``"L4N3S1"``."""
        pos = 0
        segments: list[Segment] = []
        for match in _SEGMENT_RE.finditer(text):
            if match.start() != pos:
                raise ValueError(f"invalid pattern string {text!r}")
            segments.append(Segment(match.group(1), int(match.group(2)), max_segment_length))
            pos = match.end()
        if pos != len(text) or not segments:
            raise ValueError(f"invalid pattern string {text!r}")
        return cls(tuple(segments))

    # ------------------------------------------------------------------
    @property
    def string(self) -> str:
        """Canonical spelling, e.g. ``"L4N3S1"``."""
        return "".join(s.token for s in self.segments)

    @property
    def length(self) -> int:
        """Total password length the pattern describes."""
        return sum(s.length for s in self.segments)

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    def char_classes(self) -> list[str]:
        """Per-character class list, e.g. L4N1 -> ['L','L','L','L','N']."""
        out: list[str] = []
        for seg in self.segments:
            out.extend(seg.char_class * seg.length)
        return out

    def matches(self, password: str) -> bool:
        """True iff ``password`` conforms to this pattern exactly."""
        if len(password) != self.length:
            return False
        cap = max(seg.max_length for seg in self.segments)
        try:
            return Pattern.from_password(password, cap) == self
        except ValueError:
            return False

    def search_space(self) -> int:
        """Number of distinct passwords conforming to this pattern.

        Used by the D&C-GEN optimisation that caps a pattern's guess
        budget at its search-space size (§III-C3).
        """
        total = 1
        for seg in self.segments:
            total *= len(seg.alphabet) ** seg.length
        return total

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __str__(self) -> str:
        return self.string


@lru_cache(maxsize=65536)
def extract_pattern(password: str) -> Pattern:
    """Cached pattern extraction — the hot path of training preprocessing."""
    return Pattern.from_password(password)


def group_by_segments(patterns: Sequence[Pattern]) -> dict[int, list[Pattern]]:
    """Group patterns by their segment count (Fig. 8's categories)."""
    groups: dict[int, list[Pattern]] = {}
    for p in patterns:
        groups.setdefault(p.num_segments, []).append(p)
    return groups
