"""D&C-GEN: divide-and-conquer password generation (§III-C, Algorithm 1).

The total guessing budget ``N`` is split across patterns by their training
probability (``N_Pi = N * Pr(P_i)``); any task whose budget exceeds the
threshold ``T`` is recursively divided along the next-token distribution
the model assigns to pattern-conforming candidates, producing
non-overlapping subtasks with longer prefixes.  Duplicates can then only
arise *inside* a leaf task, which is what drives the repeat rate down.

Implemented optimisations from §III-C3:

* a task's budget is capped at the search-space size of its pattern
  (generalised: at every node, the remaining search space of the prefix);
* tasks at the same depth are executed as one batched model call;
* prefixes are carried as integer id arrays end to end (no re-encoding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..tokenizer.patterns import Pattern
from .sampler import GEN_BATCH, constrained_distribution, sample_constrained

if TYPE_CHECKING:  # imported lazily to avoid a models <-> generation cycle
    from ..models.pagpassgpt import PagPassGPT


@dataclass(frozen=True)
class DCGenConfig:
    """D&C-GEN parameters.

    ``threshold`` is the paper's T: the largest leaf-task budget (the
    paper uses 4,000, tied to GPU batch capacity; scale it with your
    budget).  Tasks whose computed budget falls below ``min_count`` (the
    paper uses 1) are deleted.
    """

    threshold: int = 256
    min_count: float = 1.0
    max_patterns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.min_count <= 0:
            raise ValueError("min_count must be positive")


@dataclass
class DCGenStats:
    """Counters describing one D&C-GEN run (used by the ablation bench)."""

    patterns_used: int = 0
    divisions: int = 0
    leaves: int = 0
    deleted_tasks: int = 0
    model_calls: int = 0
    generated: int = 0


@dataclass
class _Task:
    """One subtask: a rule prefix plus its share of the guess budget."""

    prefix: np.ndarray  # ids: <BOS> pattern <SEP> [chars...]
    count: float


def _largest_remainder(weights: np.ndarray, units: int) -> np.ndarray:
    """Allocate ``units`` whole guesses proportionally to ``weights``.

    Classic largest-remainder apportionment: floors first, then hands the
    remaining units to the largest fractional parts.  Used when a task's
    budget is too small to divide fractionally.
    """
    units = max(1, units)
    if weights.sum() <= 0:
        weights = np.ones_like(weights)
    shares = weights / weights.sum() * units
    floors = np.floor(shares).astype(np.int64)
    remainder = units - int(floors.sum())
    if remainder > 0:
        order = np.argsort(-(shares - floors))
        floors[order[:remainder]] += 1
    return floors


def remaining_search_space(pattern: Pattern, done_chars: int) -> float:
    """Distinct completions of a pattern after ``done_chars`` characters.

    Returned as float: for long patterns the exact integer overflows
    nothing here, but the D&C budget arithmetic is float anyway.
    """
    classes = pattern.char_classes()
    space = 1.0
    for cls in classes[done_chars:]:
        space *= {"L": 52, "N": 10, "S": 32}[cls]
    return space


class DCGenerator:
    """Runs Algorithm 1 on a fitted :class:`PagPassGPT`."""

    def __init__(self, model: "PagPassGPT", config: DCGenConfig = DCGenConfig()) -> None:
        self.model = model
        self.config = config
        self.stats = DCGenStats()

    # ------------------------------------------------------------------
    def generate(
        self,
        total: int,
        pattern_probs: Optional[dict[str, float]] = None,
        seed: int = 0,
    ) -> list[str]:
        """Generate ~``total`` guesses; returns the raw (ordered) stream.

        ``pattern_probs`` defaults to the S_p recorded while fitting the
        model.  Patterns are processed in descending probability, so a
        truncated prefix of the output is itself a sensible guess list.
        """
        model = self.model
        if not model.is_fitted:
            raise RuntimeError("PagPassGPT must be fitted before running D&C-GEN")
        probs = pattern_probs if pattern_probs is not None else model.pattern_probs
        if not probs:
            raise ValueError("no pattern distribution available; fit the model first")
        rng = np.random.default_rng(seed)
        self.stats = DCGenStats()

        ranked = sorted(probs.items(), key=lambda item: (-item[1], item[0]))
        if self.config.max_patterns is not None:
            ranked = ranked[: self.config.max_patterns]

        # Patterns whose share would fall below min_count are deleted
        # (Algorithm 1 / Fig. 7); their probability mass is redistributed
        # over the kept patterns so the requested total is actually spent.
        kept = [(p, prob) for p, prob in ranked if total * prob >= self.config.min_count]
        self.stats.deleted_tasks += len(ranked) - len(kept)
        kept_mass = sum(prob for _, prob in kept)
        if not kept or kept_mass <= 0:
            return []

        out: list[str] = []
        for pattern_str, prob in kept:
            pattern = Pattern.parse(pattern_str)
            budget = min(total * prob / kept_mass, remaining_search_space(pattern, 0))
            self.stats.patterns_used += 1
            out.extend(self._run_pattern(pattern, budget, rng))
        self.stats.generated = len(out)
        return out

    # ------------------------------------------------------------------
    def _run_pattern(
        self, pattern: Pattern, budget: float, rng: np.random.Generator
    ) -> list[str]:
        """Divide one pattern's task tree and execute its leaves."""
        tokenizer = self.model.tokenizer
        prompt = np.asarray(tokenizer.encode_prompt(pattern), dtype=np.int64)
        prompt_len = len(prompt)
        threshold = self.config.threshold

        # Level-synchronous division: every task at depth d has the same
        # prefix length, so a whole level is one batched forward pass.
        leaves_by_depth: dict[int, list[_Task]] = {}
        if budget <= threshold:
            leaves_by_depth[0] = [_Task(prompt, budget)]
            frontier: list[_Task] = []
        else:
            frontier = [_Task(prompt, budget)]
        depth = 0
        while frontier:
            next_frontier: list[_Task] = []
            allowed = tokenizer.allowed_ids_at(pattern, depth)
            child_space = remaining_search_space(pattern, depth + 1)
            rows = np.stack([t.prefix for t in frontier])
            probs = self._next_distributions(rows, allowed)
            self.stats.divisions += len(frontier)
            for task, dist in zip(frontier, probs):
                counts = task.count * dist
                keep = np.nonzero(counts >= self.config.min_count)[0]
                self.stats.deleted_tasks += len(counts) - len(keep)
                if len(keep) == 0:
                    # Every child is below min_count (near-flat
                    # distribution): allocate the parent's (small, < c)
                    # budget as whole guesses to the most probable
                    # children by largest remainder — budget is spent and
                    # the subtasks stay non-overlapping and duplicate-free.
                    units = _largest_remainder(counts, int(round(task.count)))
                    keep = np.nonzero(units)[0]
                    counts = units.astype(np.float64)
                else:
                    # Redistribute deleted children's mass over survivors
                    # so the parent's budget is actually spent.
                    counts = counts * (task.count / counts[keep].sum())
                for j in keep:
                    child_count = min(float(counts[j]), child_space)
                    child = _Task(np.append(task.prefix, allowed[j]), child_count)
                    if child_count <= threshold:
                        leaves_by_depth.setdefault(depth + 1, []).append(child)
                    else:
                        next_frontier.append(child)
            frontier = next_frontier
            depth += 1

        # Execute leaves, batching tasks that share a depth.
        out: list[str] = []
        for leaf_depth in sorted(leaves_by_depth):
            tasks = leaves_by_depth[leaf_depth]
            self.stats.leaves += len(tasks)
            out.extend(
                self._execute_leaves(pattern, tasks, leaf_depth, prompt_len, rng)
            )
        return out

    def _next_distributions(self, rows: np.ndarray, allowed: np.ndarray) -> np.ndarray:
        """Renormalised next-token probabilities over ``allowed`` per row."""
        out = np.empty((len(rows), len(allowed)), dtype=np.float64)
        for start in range(0, len(rows), GEN_BATCH):
            chunk = rows[start : start + GEN_BATCH]
            logits, _ = self.model.inference.start(chunk)
            out[start : start + len(chunk)] = constrained_distribution(logits, allowed)
            self.stats.model_calls += 1
        return out

    def _execute_leaves(
        self,
        pattern: Pattern,
        tasks: list[_Task],
        depth: int,
        prompt_len: int,
        rng: np.random.Generator,
    ) -> list[str]:
        """Sample each leaf's completions; leaves at one depth share batches."""
        tokenizer = self.model.tokenizer
        vocab = tokenizer.vocab
        # Fully-specified prefixes need no sampling at all.
        if depth == pattern.length:
            return [tokenizer.decode_password(np.append(t.prefix, vocab.eos_id)) for t in tasks]

        rows_list: list[np.ndarray] = []
        for task in tasks:
            # Ceil rather than round: fractional leaf budgets would
            # otherwise systematically under-spend the requested total
            # (mass already lost to deleted sub-min_count children).
            count = int(np.ceil(task.count))
            rows_list.extend([task.prefix] * count)

        out: list[str] = []
        for start in range(0, len(rows_list), GEN_BATCH):
            chunk = np.stack(rows_list[start : start + GEN_BATCH])
            logits, cache = self.model.inference.start(chunk)
            self.stats.model_calls += 1
            chars = [
                [vocab.token_of(int(i)) for i in row[prompt_len:]] for row in chunk
            ]
            for position in range(depth, pattern.length):
                allowed = tokenizer.allowed_ids_at(pattern, position)
                chosen = sample_constrained(logits, allowed, rng, self.model.sampler)
                for row, token_id in enumerate(chosen):
                    chars[row].append(vocab.token_of(int(token_id)))
                if position + 1 < pattern.length:
                    logits = self.model.inference.step(chosen, cache)
                    self.stats.model_calls += 1
            out.extend("".join(c) for c in chars)
        return out
