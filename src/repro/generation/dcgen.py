"""D&C-GEN: divide-and-conquer password generation (§III-C, Algorithm 1).

The total guessing budget ``N`` is split across patterns by their training
probability (``N_Pi = N * Pr(P_i)``); any task whose budget exceeds the
threshold ``T`` is recursively divided along the next-token distribution
the model assigns to pattern-conforming candidates, producing
non-overlapping subtasks with longer prefixes.  Duplicates can then only
arise *inside* a leaf task, which is what drives the repeat rate down.

Implemented optimisations from §III-C3:

* a task's budget is capped at the search-space size of its pattern
  (generalised: at every node, the remaining search space of the prefix);
* tasks at the same depth are executed as one batched model call;
* prefixes are carried as integer id arrays end to end (no re-encoding).

Execution model
---------------

A run has two phases so leaves can execute anywhere:

* **divide** (serial, model-bound): :meth:`DCGenerator.plan` builds the
  task tree and emits a flat list of :class:`LeafTask` in canonical
  order, each with a stable ``task_id``;
* **execute**: leaves are packed into :class:`LeafBatch` es of at most
  ``gen_batch`` rows (:func:`build_batches`) and run either in-process
  or on a worker pool (:mod:`repro.generation.parallel`).  Every leaf
  draws its randomness from ``(base_seed, task_id)``
  (:func:`leaf_rng`), so the guess stream is byte-identical regardless
  of batch width or worker count.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

import numpy as np

from .. import telemetry
from ..runtime import Budget, RetryPolicy, RunJournal, maybe_fail
from ..tokenizer.patterns import Pattern
from .sampler import (
    GEN_BATCH,
    SamplerConfig,
    choose_constrained,
    constrained_distribution,
)

if TYPE_CHECKING:  # imported lazily to avoid a models <-> generation cycle
    from ..models.pagpassgpt import PagPassGPT


@dataclass(frozen=True)
class DCGenConfig:
    """D&C-GEN parameters.

    ``threshold`` is the paper's T: the largest leaf-task budget (the
    paper uses 4,000, tied to GPU batch capacity; scale it with your
    budget).  Tasks whose computed budget falls below ``min_count`` (the
    paper uses 1) are deleted.  ``gen_batch`` is the model-call batch
    width (rows per forward pass); it affects throughput only, never the
    sampled output.  ``workers > 1`` shards leaf batches across a
    process pool (:mod:`repro.generation.parallel`) with no change to
    the guess stream or stats.  ``max_retries`` / ``task_timeout``
    parameterise the pool supervisor (per-task retry budget and hung-task
    detection; see :class:`repro.runtime.RetryPolicy`).
    """

    threshold: int = 256
    min_count: float = 1.0
    max_patterns: Optional[int] = None
    gen_batch: int = GEN_BATCH
    workers: int = 1
    max_retries: int = 2
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.min_count <= 0:
            raise ValueError("min_count must be positive")
        if self.gen_batch < 1:
            raise ValueError("gen_batch must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive or None")

    def retry_policy(self) -> RetryPolicy:
        """The pool-supervision policy these knobs describe."""
        return RetryPolicy(max_retries=self.max_retries, task_timeout=self.task_timeout)


@dataclass
class DCGenStats:
    """Counters describing one D&C-GEN run (used by the ablation bench)."""

    patterns_used: int = 0
    divisions: int = 0
    leaves: int = 0
    deleted_tasks: int = 0
    model_calls: int = 0
    generated: int = 0


@dataclass
class _Task:
    """One subtask of the division phase: a rule prefix plus its budget."""

    prefix: np.ndarray  # ids: <BOS> pattern <SEP> [chars...]
    count: float


@dataclass(frozen=True)
class LeafTask:
    """One executable leaf of the division tree.

    ``task_id`` is the leaf's position in the canonical enumeration
    (patterns in ranked order, then depth, then insertion order); it is
    stable across runs and seeds the leaf's sampling rng together with
    the run's base seed, which is what makes execution order — and
    therefore worker sharding — irrelevant to the output.
    """

    task_id: int
    pattern: str
    prefix: np.ndarray  # ids: <BOS> pattern <SEP> chars[:done_chars]
    count: float  # budget share (the paper's N_i; may be fractional)
    rows: int  # whole guesses this leaf emits
    done_chars: int
    prompt_len: int


@dataclass(frozen=True)
class LeafBatch:
    """A slice of the leaf list that executes as one model batch.

    ``slices`` holds ``(leaf, row_start, row_stop)`` triples; a leaf
    larger than ``gen_batch`` spans several batches.  All leaves in a
    batch share the pattern and prefix length, so the batch is a single
    KV-cached decode.
    """

    batch_id: int
    slices: tuple[tuple[LeafTask, int, int], ...]

    @property
    def rows(self) -> int:
        return sum(stop - start for _, start, stop in self.slices)


def _largest_remainder(weights: np.ndarray, units: int) -> np.ndarray:
    """Allocate ``units`` whole guesses proportionally to ``weights``.

    Classic largest-remainder apportionment: floors first, then hands the
    remaining units to the largest fractional parts.  Used when a task's
    budget is too small to divide fractionally.
    """
    units = max(1, units)
    if weights.sum() <= 0:
        weights = np.ones_like(weights)
    shares = weights / weights.sum() * units
    floors = np.floor(shares).astype(np.int64)
    remainder = units - int(floors.sum())
    if remainder > 0:
        order = np.argsort(-(shares - floors))
        floors[order[:remainder]] += 1
    return floors


def remaining_search_space(pattern: Pattern, done_chars: int) -> float:
    """Distinct completions of a pattern after ``done_chars`` characters.

    Returned as float: for long patterns the exact integer overflows
    nothing here, but the D&C budget arithmetic is float anyway.
    """
    classes = pattern.char_classes()
    space = 1.0
    for cls in classes[done_chars:]:
        space *= {"L": 52, "N": 10, "S": 32}[cls]
    return space


def plan_digest(leaves: Sequence[LeafTask]) -> str:
    """Content digest of a leaf plan: the run identity a journal pins.

    Two runs with the same digest execute the same leaves with the same
    budgets, so their journaled batch results are interchangeable.
    """
    h = hashlib.sha256()
    for leaf in leaves:
        h.update(f"{leaf.task_id}|{leaf.pattern}|{leaf.rows}|{leaf.done_chars}|".encode())
        h.update(np.asarray(leaf.prefix, dtype=np.int64).tobytes())
        h.update(b";")
    return h.hexdigest()[:16]


def leaf_rng(base_seed: int, task_id: int) -> np.random.Generator:
    """The per-leaf random generator: ``(base_seed, task_id)`` seeded.

    Every leaf's draws come from its own stream, so the output does not
    depend on which batch (or which worker) the leaf lands in.
    """
    return np.random.default_rng((base_seed, task_id))


def build_batches(leaves: Sequence[LeafTask], gen_batch: int) -> list[LeafBatch]:
    """Pack leaves into execution batches of at most ``gen_batch`` rows.

    Batches never mix prefix lengths or patterns (each batch is one
    KV-cached decode), and together they cover every leaf's rows exactly
    once — the unit of work the parallel backend shards.
    """
    batches: list[LeafBatch] = []
    slices: list[tuple[LeafTask, int, int]] = []
    room = gen_batch
    key: Optional[tuple[str, int]] = None

    def flush() -> None:
        nonlocal slices, room
        if slices:
            batches.append(LeafBatch(batch_id=len(batches), slices=tuple(slices)))
        slices = []
        room = gen_batch

    for leaf in leaves:
        leaf_key = (leaf.pattern, leaf.done_chars)
        if key != leaf_key:
            flush()
            key = leaf_key
        start = 0
        while start < leaf.rows:
            take = min(room, leaf.rows - start)
            slices.append((leaf, start, start + take))
            room -= take
            start += take
            if room == 0:
                flush()
    flush()
    return batches


def execute_batch(
    model: "PagPassGPT",
    batch: LeafBatch,
    base_seed: int,
    sampler: SamplerConfig,
) -> tuple[list[str], int]:
    """Run one leaf batch; returns ``(guesses in row order, model calls)``.

    Pure with respect to run state: everything it needs travels in the
    batch, so it executes identically in the serial loop and in a worker
    process.

    Priming is prefix-deduplicated: the shared ``<BOS> pattern <SEP>``
    prompt comes from the model's :class:`~repro.nn.PromptCache` (primed
    once per pattern, usually already warm from the divide phase), the
    leaf characters are extended with one row per *leaf* rather than per
    guess, and the result is fanned out to the full row count with
    :meth:`~repro.nn.KVCache.gather`.  Because batched forward passes
    are per-row bitwise deterministic, the sampled stream is identical
    to priming every row from scratch.

    The returned call count is *logical* (prompt primes are accounted
    once per pattern in :meth:`DCGenerator.plan`), so stats stay
    invariant to worker sharding; physical work is tracked separately by
    :class:`~repro.nn.InferenceCounters`.
    """
    with telemetry.trace(
        "dcgen.execute_batch",
        level="debug",
        batch_id=batch.batch_id,
        pattern=batch.slices[0][0].pattern,
        rows=batch.rows,
    ) as span:
        tokenizer = model.tokenizer
        vocab = tokenizer.vocab
        token_strs = vocab.token_array
        first = batch.slices[0][0]
        pattern = Pattern.parse(first.pattern)
        done = first.done_chars
        prompt_len = first.prompt_len
        n_positions = pattern.length - done

        # One prefix row per *leaf slice*; expand maps them to guess rows.
        counts = np.array([stop - start for _, start, stop in batch.slices])
        expand = np.repeat(np.arange(len(batch.slices)), counts)
        if done:
            leaf_chars = np.stack([leaf.prefix[prompt_len:] for leaf, _, _ in batch.slices])
        else:
            leaf_chars = np.empty((len(batch.slices), 0), dtype=np.int64)

        # Fully-specified prefixes need no sampling at all.
        if n_positions == 0:
            guesses = ["".join(row) for row in token_strs[leaf_chars[expand]].tolist()]
            span.set(guesses=len(guesses), model_calls=0)
            return guesses, 0

        # Each leaf's draw matrix is drawn whole and sliced, so a leaf that
        # spans several batches still samples the same values per row.
        draws = np.concatenate(
            [
                leaf_rng(base_seed, leaf.task_id).random((leaf.rows, n_positions))[start:stop]
                for leaf, start, stop in batch.slices
            ]
        )

        prompt_logits, prompt_kv = model.prompt_cache.lookup(first.prefix[:prompt_len])
        calls = 0
        if done:
            # Extend the shared prompt by each leaf's decided characters
            # (unique rows only), then replicate to the full guess count.
            unique_kv = prompt_kv.gather(np.zeros(len(batch.slices), dtype=np.intp))
            unique_logits = model.inference.extend(leaf_chars, unique_kv)
            calls += 1
            cache = unique_kv.gather(expand)
            logits = unique_logits[expand]
        else:
            cache = prompt_kv.gather(np.zeros(len(expand), dtype=np.intp))
            logits = np.repeat(prompt_logits, len(expand), axis=0)

        chosen_cols = np.empty((len(expand), n_positions), dtype=np.int64)
        for j, position in enumerate(range(done, pattern.length)):
            allowed = tokenizer.allowed_ids_at(pattern, position)
            chosen = choose_constrained(logits, allowed, draws[:, j], sampler)
            chosen_cols[:, j] = chosen
            if position + 1 < pattern.length:
                logits = model.inference.step(chosen, cache)
                calls += 1
        all_chars = np.concatenate([leaf_chars[expand], chosen_cols], axis=1)
        guesses = ["".join(row) for row in token_strs[all_chars].tolist()]
        span.set(guesses=len(guesses), model_calls=calls)
        return guesses, calls


def planned_execute_costs(batches: Sequence[LeafBatch]) -> dict[str, int]:
    """The execute phase's model-call / primed-position budget.

    Assumes every pattern prompt is already warm in the
    :class:`~repro.nn.PromptCache` (``plan`` primes them), so the budget
    counts only per-batch leaf-character extends and decode steps:

    * ``model_calls`` — one extend per batch with decided characters,
      plus ``n_positions - 1`` single-token steps per batch;
    * ``primed_positions`` — unique-leaf rows × decided characters (the
      priming FLOPs proxy);
    * ``prompt_cache_hits`` — shared-prompt lookups the execute phase
      will serve from the warm cache: one per batch that samples at all
      (fully-specified batches return before touching the cache).

    The throughput bench compares these against the physical
    :class:`~repro.nn.InferenceCounters` of a serial run; measured work
    above plan means priming got de-deduplicated.  The telemetry
    summary's :func:`~repro.telemetry.check_summary` holds a clean
    campaign to these numbers exactly.
    """
    calls = 0
    primed = 0
    cache_hits = 0
    for batch in batches:
        first = batch.slices[0][0]
        n_positions = Pattern.parse(first.pattern).length - first.done_chars
        if first.done_chars > 0 and n_positions > 0:
            calls += 1
            primed += len(batch.slices) * first.done_chars
        if n_positions > 0:
            calls += n_positions - 1
            cache_hits += 1
    return {
        "model_calls": calls,
        "primed_positions": primed,
        "prompt_cache_hits": cache_hits,
    }


class DCGenerator:
    """Runs Algorithm 1 on a fitted :class:`PagPassGPT`."""

    def __init__(self, model: "PagPassGPT", config: DCGenConfig = DCGenConfig()) -> None:
        self.model = model
        self.config = config
        self.stats = DCGenStats()
        #: Leaves of the most recent :meth:`plan` / :meth:`generate` call.
        self.leaf_tasks: list[LeafTask] = []

    # ------------------------------------------------------------------
    def generate(
        self,
        total: int,
        pattern_probs: Optional[dict[str, float]] = None,
        seed: int = 0,
        journal: Optional[Union[str, Path, RunJournal]] = None,
        resume: bool = False,
        progress: Optional[Callable[[int, int], None]] = None,
        budget: Optional[Budget] = None,
    ) -> list[str]:
        """Generate ~``total`` guesses; returns the raw (ordered) stream.

        ``pattern_probs`` defaults to the S_p recorded while fitting the
        model.  Patterns are processed in descending probability, so a
        truncated prefix of the output is itself a sensible guess list.
        ``seed`` feeds every leaf's rng via :func:`leaf_rng`; the stream
        is identical for any ``gen_batch`` or ``workers`` setting.

        ``journal`` (a path or an open :class:`RunJournal`) makes the run
        crash-safe: every completed leaf batch is journaled as it lands,
        and a rerun with ``resume=True`` skips journaled batches and
        emits the byte-identical stream an uninterrupted run would have —
        even with a different worker count.  Resuming validates the
        journal's header (seed, total, plan digest) and raises
        :class:`~repro.runtime.JournalError` on mismatch.

        ``progress`` is called as ``progress(done_rows, total_rows)``
        after every completed batch (and once for journal-resumed work);
        the CLI wires a :class:`~repro.telemetry.Heartbeat` here.  With
        an active telemetry session the run also emits a
        ``campaign_plan`` event carrying the full
        :func:`planned_execute_costs` budget, a ``campaign_resume``
        event for journal-reused work, and a ``campaign`` span.

        ``budget`` (a :class:`~repro.runtime.Budget`) is polled after
        every durable batch boundary — and while waiting on workers — so
        a deadline, quota, or delivered SIGTERM raises
        :class:`~repro.runtime.CampaignInterrupted` with the completed
        work already journaled; a ``resume=True`` rerun then continues
        byte-identically.
        """
        with telemetry.trace("campaign", kind="dcgen", requested=int(total)):
            leaves = self.plan(total, pattern_probs)
            batches = build_batches(leaves, self.config.gen_batch)
            costs = planned_execute_costs(batches)
            telemetry.emit(
                "campaign_plan",
                kind="dcgen",
                requested=int(total),
                rows=sum(b.rows for b in batches),
                n_tasks=len(batches),
                plan=plan_digest(leaves),
                threshold=int(self.config.threshold),
                gen_batch=int(self.config.gen_batch),
                workers=int(self.config.workers),
                backend=self.model.inference.backend_name,
                **costs,
            )
            owns_journal = False
            if journal is not None and not isinstance(journal, RunJournal):
                header = {
                    "kind": "dcgen",
                    "seed": int(seed),
                    "total": int(total),
                    "threshold": int(self.config.threshold),
                    "gen_batch": int(self.config.gen_batch),
                    "n_batches": len(batches),
                    "plan": plan_digest(leaves),
                }
                telemetry.pin_trace(header)
                journal = RunJournal.attach(journal, header, resume=resume)
                owns_journal = True
                # A resumed run rejoins the original run's trace so its
                # spans extend the first attempt's tree; fresh runs
                # adopt their own pinned ref (a no-op).
                telemetry.rejoin_trace(journal.header.get(RunJournal.TRACE_HEADER_KEY))
            try:
                results = self._execute(batches, seed, journal, progress, budget)
            finally:
                if owns_journal:
                    journal.close()
            out: list[str] = []
            for guesses, calls in results:
                out.extend(guesses)
                self.stats.model_calls += calls
            self.stats.generated = len(out)
            return out

    # ------------------------------------------------------------------
    # Divide phase
    # ------------------------------------------------------------------
    def plan(
        self,
        total: int,
        pattern_probs: Optional[dict[str, float]] = None,
    ) -> list[LeafTask]:
        """Divide phase only: build and return the canonical leaf list.

        Resets :attr:`stats` and populates the divide-phase counters
        (``patterns_used``, ``divisions``, ``deleted_tasks``, ``leaves``
        and the divide-phase share of ``model_calls``).
        """
        with telemetry.trace("dcgen.plan", total=int(total)) as span:
            leaves = self._plan(total, pattern_probs)
            span.set(
                leaves=len(leaves),
                patterns=self.stats.patterns_used,
                divisions=self.stats.divisions,
            )
            return leaves

    def _plan(
        self,
        total: int,
        pattern_probs: Optional[dict[str, float]] = None,
    ) -> list[LeafTask]:
        model = self.model
        if not model.is_fitted:
            raise RuntimeError("PagPassGPT must be fitted before running D&C-GEN")
        probs = pattern_probs if pattern_probs is not None else model.pattern_probs
        if not probs:
            raise ValueError("no pattern distribution available; fit the model first")
        self.stats = DCGenStats()
        self.leaf_tasks = []

        ranked = sorted(probs.items(), key=lambda item: (-item[1], item[0]))
        if self.config.max_patterns is not None:
            ranked = ranked[: self.config.max_patterns]

        # Patterns whose share would fall below min_count are deleted
        # (Algorithm 1 / Fig. 7); their probability mass is redistributed
        # over the kept patterns so the requested total is actually spent.
        kept = [(p, prob) for p, prob in ranked if total * prob >= self.config.min_count]
        self.stats.deleted_tasks += len(ranked) - len(kept)
        kept_mass = sum(prob for _, prob in kept)
        if not kept or kept_mass <= 0:
            return []

        leaves: list[LeafTask] = []
        for pattern_str, prob in kept:
            pattern = Pattern.parse(pattern_str)
            budget = min(total * prob / kept_mass, remaining_search_space(pattern, 0))
            self.stats.patterns_used += 1
            self._divide_pattern(pattern, budget, leaves)
        self.stats.leaves = len(leaves)
        self.leaf_tasks = leaves
        return leaves

    def _divide_pattern(
        self, pattern: Pattern, budget: float, out: list[LeafTask]
    ) -> None:
        """Divide one pattern's task tree, appending its leaves to ``out``."""
        tokenizer = self.model.tokenizer
        prompt = np.asarray(tokenizer.encode_prompt(pattern), dtype=np.int64)
        prompt_len = len(prompt)
        threshold = self.config.threshold

        # Prime the pattern's shared prompt once; the divide phase, every
        # execute batch, and (via copy-on-write fork) worker processes
        # all reuse this entry instead of re-running the prompt forward.
        # Counted here exactly once so the stats stay invariant to
        # gen_batch packing and worker sharding.
        self.model.prompt_cache.lookup(prompt)
        self.stats.model_calls += 1

        # Level-synchronous division: every task at depth d has the same
        # prefix length, so a whole level is one batched model call.
        leaves_by_depth: dict[int, list[_Task]] = {}
        if budget <= threshold:
            leaves_by_depth[0] = [_Task(prompt, budget)]
            frontier: list[_Task] = []
        else:
            frontier = [_Task(prompt, budget)]
        depth = 0
        while frontier:
            next_frontier: list[_Task] = []
            allowed = tokenizer.allowed_ids_at(pattern, depth)
            child_space = remaining_search_space(pattern, depth + 1)
            rows = np.stack([t.prefix for t in frontier])
            probs = self._next_distributions(rows, allowed, prompt_len)
            self.stats.divisions += len(frontier)
            for task, dist in zip(frontier, probs):
                counts = task.count * dist
                keep = np.nonzero(counts >= self.config.min_count)[0]
                self.stats.deleted_tasks += len(counts) - len(keep)
                if len(keep) == 0:
                    # Every child is below min_count (near-flat
                    # distribution): allocate the parent's (small, < c)
                    # budget as whole guesses to the most probable
                    # children by largest remainder — budget is spent and
                    # the subtasks stay non-overlapping and duplicate-free.
                    units = _largest_remainder(counts, int(round(task.count)))
                    keep = np.nonzero(units)[0]
                    counts = units.astype(np.float64)
                else:
                    # Redistribute deleted children's mass over survivors
                    # so the parent's budget is actually spent.
                    counts = counts * (task.count / counts[keep].sum())
                for j in keep:
                    child_count = min(float(counts[j]), child_space)
                    child = _Task(np.append(task.prefix, allowed[j]), child_count)
                    if child_count <= threshold:
                        leaves_by_depth.setdefault(depth + 1, []).append(child)
                    else:
                        next_frontier.append(child)
            frontier = next_frontier
            depth += 1

        # Emit leaves in canonical order: depth-sorted, insertion order.
        for leaf_depth in sorted(leaves_by_depth):
            for task in leaves_by_depth[leaf_depth]:
                if leaf_depth == pattern.length:
                    rows = 1  # fully specified: one decode, no sampling
                else:
                    # Ceil rather than round: fractional leaf budgets would
                    # otherwise systematically under-spend the requested
                    # total (mass already lost to deleted children).
                    rows = int(np.ceil(task.count))
                out.append(
                    LeafTask(
                        task_id=len(out),
                        pattern=pattern.string,
                        prefix=task.prefix,
                        count=float(task.count),
                        rows=rows,
                        done_chars=leaf_depth,
                        prompt_len=prompt_len,
                    )
                )

    def _next_distributions(
        self, rows: np.ndarray, allowed: np.ndarray, prompt_len: int
    ) -> np.ndarray:
        """Renormalised next-token probabilities over ``allowed`` per row.

        All rows share the pattern prompt ``rows[:, :prompt_len]``, so the
        prompt KV state comes from the warm :class:`~repro.nn.PromptCache`
        and only the characters beyond it are fed through the model.  At
        depth 0 the cached prompt logits are reused outright — no model
        call at all.
        """
        gen_batch = self.config.gen_batch
        out = np.empty((len(rows), len(allowed)), dtype=np.float64)
        prompt_logits, prompt_kv = self.model.prompt_cache.lookup(rows[0, :prompt_len])
        depth = rows.shape[1] - prompt_len
        for start in range(0, len(rows), gen_batch):
            chunk = rows[start : start + gen_batch]
            if depth == 0:
                logits = np.repeat(prompt_logits, len(chunk), axis=0)
            else:
                kv = prompt_kv.gather(np.zeros(len(chunk), dtype=np.intp))
                logits = self.model.inference.extend(chunk[:, prompt_len:], kv)
                self.stats.model_calls += 1
            out[start : start + len(chunk)] = constrained_distribution(logits, allowed)
        return out

    # ------------------------------------------------------------------
    # Execute phase
    # ------------------------------------------------------------------
    def _execute(
        self,
        batches: list[LeafBatch],
        seed: int,
        journal: Optional[RunJournal] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        budget: Optional[Budget] = None,
    ) -> list[tuple[list[str], int]]:
        """Run all batches serially or on a pool, in batch order.

        With a journal, batches already journaled are reused verbatim and
        every fresh completion is journaled the moment it lands — the
        crash window never costs more than the batch in flight.  The
        ``budget`` is polled right after each batch's journal write (a
        durable boundary) and while waiting for worker results.
        """
        results: dict[int, tuple[list[str], int]] = {}
        if journal is not None:
            for batch_id, payload in journal.completed("leaf_batch").items():
                if 0 <= batch_id < len(batches):
                    results[batch_id] = (
                        list(payload["guesses"]),
                        int(payload["model_calls"]),
                    )
        pending = [b for b in batches if b.batch_id not in results]
        total_rows = sum(b.rows for b in batches)
        done_rows = sum(len(guesses) for guesses, _ in results.values())
        done_calls = sum(calls for _, calls in results.values())
        if results:
            telemetry.emit(
                "campaign_resume",
                tasks=len(results),
                guesses=done_rows,
                model_calls=done_calls,
            )
        if progress is not None:
            progress(done_rows, total_rows)

        def current_progress() -> dict:
            return {
                "guesses": done_rows,
                "model_calls": done_calls,
                "tasks": len(results),
                "n_tasks": len(batches),
            }

        def on_result(position: int, value) -> None:
            nonlocal done_rows, done_calls
            batch = pending[position]
            guesses, calls = value
            maybe_fail("leaf_batch")
            if journal is not None:
                journal.record(
                    "leaf_batch",
                    batch.batch_id,
                    {"guesses": list(guesses), "model_calls": int(calls)},
                )
            results[batch.batch_id] = (guesses, calls)
            done_rows += len(guesses)
            done_calls += calls
            if progress is not None:
                progress(done_rows, total_rows)
            if budget is not None:
                budget.poll(**current_progress())

        if budget is not None:
            budget.poll(**current_progress())
        if self.config.workers > 1 and len(pending) > 1:
            from .parallel import execute_batches_parallel

            try:
                execute_batches_parallel(
                    self.model,
                    pending,
                    seed,
                    self.config.workers,
                    policy=self.config.retry_policy(),
                    on_result=on_result,
                    stop=None if budget is None else budget.stopper(current_progress),
                )
            except Exception as exc:
                warnings.warn(
                    f"parallel D&C-GEN execution failed ({exc!r}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
                for position, batch in enumerate(pending):
                    if batch.batch_id in results:
                        continue  # completed (and journaled) before the failure
                    on_result(
                        position,
                        execute_batch(self.model, batch, seed, self.model.sampler),
                    )
        else:
            for position, batch in enumerate(pending):
                on_result(
                    position,
                    execute_batch(self.model, batch, seed, self.model.sampler),
                )
        return [results[batch.batch_id] for batch in batches]
