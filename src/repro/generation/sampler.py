"""Token sampling strategies for autoregressive generation.

All functions operate on raw numpy logits of shape ``(batch, vocab)`` and
return sampled token ids of shape ``(batch,)``.  Constrained variants
restrict the distribution to an allowed id set first (the mechanism both
PassGPT's guided generation and D&C-GEN's pattern filtering use).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

#: Default generation batch width for all autoregressive generators — the
#: paper ties D&C-GEN's threshold to GPU batch capacity (§III-C3); on CPU
#: this is simply the vectorisation width.  D&C-GEN plumbs the effective
#: width through ``DCGenConfig.gen_batch``; this constant is its default.
GEN_BATCH = 512


@dataclass(frozen=True)
class SamplerConfig:
    """Sampling hyper-parameters.

    ``temperature`` rescales logits; ``top_k``/``top_p`` truncate the
    distribution (0 / 1.0 disable truncation).
    """

    temperature: float = 1.0
    top_k: int = 0
    top_p: float = 1.0

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.top_k < 0:
            raise ValueError("top_k must be >= 0")
        if not 0.0 < self.top_p <= 1.0:
            raise ValueError("top_p must be in (0, 1]")


def logits_to_probs(logits: np.ndarray, config: SamplerConfig = SamplerConfig()) -> np.ndarray:
    """Convert ``(batch, vocab)`` logits to probabilities with truncation."""
    scaled = logits / config.temperature
    scaled = scaled - scaled.max(axis=-1, keepdims=True)
    probs = np.exp(scaled)
    probs /= probs.sum(axis=-1, keepdims=True)

    if config.top_k and config.top_k < probs.shape[-1]:
        kth = np.partition(probs, -config.top_k, axis=-1)[:, -config.top_k][:, None]
        probs = np.where(probs < kth, 0.0, probs)
        probs /= probs.sum(axis=-1, keepdims=True)

    if config.top_p < 1.0:
        order = np.argsort(-probs, axis=-1)
        sorted_probs = np.take_along_axis(probs, order, axis=-1)
        cumulative = np.cumsum(sorted_probs, axis=-1)
        # Keep the smallest prefix whose mass reaches top_p (always >= 1 token).
        cutoff = cumulative - sorted_probs >= config.top_p
        sorted_probs[cutoff] = 0.0
        probs = np.zeros_like(probs)
        np.put_along_axis(probs, order, sorted_probs, axis=-1)
        probs /= probs.sum(axis=-1, keepdims=True)

    return probs


def sample(
    logits: np.ndarray,
    rng: np.random.Generator,
    config: SamplerConfig = SamplerConfig(),
) -> np.ndarray:
    """Sample one token id per batch row."""
    probs = logits_to_probs(logits, config)
    return _sample_rows(probs, rng)


def sample_constrained(
    logits: np.ndarray,
    allowed_ids: np.ndarray,
    rng: np.random.Generator,
    config: SamplerConfig = SamplerConfig(),
) -> np.ndarray:
    """Sample with the distribution renormalised over ``allowed_ids``.

    This is PassGPT's guided-generation mechanism (§I-A1): candidate
    tokens outside the pattern's current class are filtered out and the
    remaining mass renormalised.
    """
    return choose_constrained(logits, allowed_ids, rng.random((logits.shape[0], 1)), config)


def choose_constrained(
    logits: np.ndarray,
    allowed_ids: np.ndarray,
    draws: np.ndarray,
    config: SamplerConfig = SamplerConfig(),
) -> np.ndarray:
    """:func:`sample_constrained` with the uniform draws supplied by the caller.

    ``draws`` holds one uniform [0, 1) number per batch row.  D&C-GEN
    pre-draws every leaf task's randomness from a per-leaf generator, so
    the sampled stream is invariant to batch packing and worker sharding;
    this function is the deterministic core both entry points share.
    """
    restricted = logits[:, allowed_ids]
    probs = logits_to_probs(restricted, config)
    cumulative = np.cumsum(probs, axis=-1)
    # Rounding error can leave cumulative[-1] just below 1.0; a draw above
    # it would make every comparison False and argmax silently pick index
    # 0.  Clamping the last entry to 1.0 maps such draws to the last
    # allowed token, as exact arithmetic would.
    cumulative[:, -1] = 1.0
    choices = (np.asarray(draws).reshape(-1, 1) < cumulative).argmax(axis=-1)
    return allowed_ids[choices]


def sample_masked(
    logits: np.ndarray,
    allowed_mask: np.ndarray,
    rng: np.random.Generator,
    config: SamplerConfig = SamplerConfig(),
) -> np.ndarray:
    """Sample with a *per-row* boolean mask of allowed token ids.

    Used by grammar-constrained free generation, where different batch
    rows are in different decode states (pattern phase vs password phase)
    and therefore allow different token sets.  Every row must allow at
    least one token.
    """
    if allowed_mask.shape != logits.shape:
        raise ValueError(
            f"mask shape {allowed_mask.shape} must match logits {logits.shape}"
        )
    if not allowed_mask.any(axis=-1).all():
        raise ValueError("every row must allow at least one token")
    masked = np.where(allowed_mask, logits, -np.inf)
    probs = logits_to_probs(masked, config)
    return _sample_rows(probs, rng)


def constrained_distribution(logits: np.ndarray, allowed_ids: np.ndarray) -> np.ndarray:
    """Renormalised probabilities over ``allowed_ids`` (D&C-GEN's Tokens set).

    Returns shape ``(batch, len(allowed_ids))``; rows sum to 1.
    """
    restricted = logits[:, allowed_ids]
    shifted = restricted - restricted.max(axis=-1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=-1, keepdims=True)
    return probs


def _sample_rows(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Vectorised categorical sampling, one draw per row."""
    cumulative = np.cumsum(probs, axis=-1)
    # See choose_constrained: clamp so a draw above a rounded-down final
    # cumulative sum selects the last token instead of index 0.
    cumulative[:, -1] = 1.0
    draws = rng.random((probs.shape[0], 1))
    return (draws < cumulative).argmax(axis=-1)
