"""Multiprocess execution backend for generation leaf tasks.

D&C-GEN's subtasks are non-overlapping (§III-C2), which makes leaf
execution embarrassingly parallel — the paper runs it across 4 GPUs.
Here the divide phase stays serial in the parent (it is model-bound and
cheap), and the resulting :class:`~repro.generation.dcgen.LeafBatch`
list is sharded across a process pool.  Free (trawling) generation
parallelises the same way, with ``gen_batch``-sized chunks as the unit.

Because every leaf/chunk seeds its own rng from ``(base_seed, task_id)``,
the merged stream is byte-identical to the serial path for any worker
count — the equivalence harness in ``tests/test_generation_parallel.py``
enforces this.

Weight sharing
--------------

* With the ``fork`` start method (Linux default) workers inherit the
  parent's model snapshot copy-on-write: the parent touches
  ``model.inference`` and ``model.prompt_cache`` once before forking so
  no worker rebuilds them — prompts primed in the parent (the D&C-GEN
  divide phase warms every pattern's ``<BOS> pattern <SEP>``) are never
  re-primed by workers.
* Without ``fork`` (e.g. spawn on macOS/Windows) the parent writes the
  weights once to a temporary ``repro.nn.serialization`` checkpoint and
  each worker rebuilds the model from that blob at pool init.

Failure handling
----------------

Tasks run under :func:`repro.runtime.retry.supervised_map`: worker
exceptions are caught *inside* the worker and reported per task, so a
single failed or hung task is retried (with backoff, up to
``RetryPolicy.max_retries`` times, a hung pool being killed and rebuilt)
while every completed result is kept.  Tasks whose retries are exhausted
run serially in the parent as a last resort with a ``RuntimeWarning`` —
the run always completes with the exact serial output.  ``on_result``
callbacks fire in the parent as each task completes, which is where the
run journal (:mod:`repro.runtime.journal`) persists progress.

Fault injection (:mod:`repro.runtime.faults`): every worker task passes
through ``maybe_fail("worker", index)``; the legacy
``REPRO_PARALLEL_TEST_CRASH`` variable still makes every worker raise
before its first task.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from .. import telemetry
from ..runtime import RetryPolicy, maybe_fail, signals, supervised_map
from .dcgen import LeafBatch, execute_batch
from .sampler import GEN_BATCH, SamplerConfig

if TYPE_CHECKING:  # imported lazily to avoid a models <-> generation cycle
    from ..models.pagpassgpt import PagPassGPT

#: Environment variable that makes every worker crash before its first
#: task.  Used by the equivalence harness to test graceful fallback.
CRASH_ENV = "REPRO_PARALLEL_TEST_CRASH"


@dataclass
class _WorkerContext:
    """Read-only state each worker needs: model, task list, seed."""

    model: "PagPassGPT"
    tasks: Sequence
    base_seed: int
    sampler: SamplerConfig


#: Set in the parent before forking (inherited copy-on-write) or rebuilt
#: by :func:`_init_from_checkpoint` under non-fork start methods.
_CTX: Optional[_WorkerContext] = None


def _check_crash_hook() -> None:
    if os.environ.get(CRASH_ENV):
        raise RuntimeError(f"worker crash injected via {CRASH_ENV}")


def _parent_telemetry_args() -> Optional[tuple[str, str, str, Optional[dict]]]:
    """Session init args to ship to workers, or ``None`` (telemetry off).

    The trace ref pins the worker session into the parent's trace: its
    root spans attach under whatever span is open at pool start (the
    campaign span), so the merged streams form one connected tree.
    """
    sess = telemetry.active()
    if sess is None:
        return None
    return (str(sess.dir), sess.run_id, sess.level, sess.trace_ref())


def _init_worker_telemetry(tele: Optional[tuple[str, str, str, Optional[dict]]]) -> None:
    """Open this worker's own ``telemetry-worker-<pid>.jsonl`` stream.

    Replaces any session inherited via fork (the parent's stream must
    only ever be written by the parent) and marks the metrics registry,
    so everything the worker reports is its own delta.  The shipped
    trace ref (works for fork and spawn alike — it rides the initargs)
    makes the worker a remote child of the parent's campaign span.
    """
    if tele is not None:
        directory, run_id, level, trace = tele
        telemetry.start_session(
            directory,
            run_id=run_id,
            worker=os.getpid(),
            level=level,
            context=telemetry.TraceContext.from_dict(trace),
        )


def _init_fork_worker(tele: Optional[tuple[str, str, str, Optional[dict]]]) -> None:
    """Pool initializer for the fork path (model arrives copy-on-write)."""
    signals.ignore_in_worker()
    _init_worker_telemetry(tele)


def _init_from_checkpoint(path, tokenizer, sampler, tasks, base_seed, tele=None) -> None:
    """Pool initializer for non-fork start methods.

    Rebuilds the model once per worker from an explicit weight blob (a
    ``repro.nn.serialization`` npz checkpoint written by the parent).
    """
    global _CTX
    from ..models.pagpassgpt import PagPassGPT

    signals.ignore_in_worker()
    _init_worker_telemetry(tele)
    model = PagPassGPT.load(path)
    model.tokenizer = tokenizer
    model.sampler = sampler
    _CTX = _WorkerContext(model=model, tasks=tasks, base_seed=base_seed, sampler=sampler)


def _run_batch(index: int) -> tuple[list[str], int]:
    """Worker body: execute one D&C-GEN leaf batch by index."""
    _check_crash_hook()
    maybe_fail("worker", index)
    ctx = _CTX
    assert ctx is not None, "worker context not initialised"
    return execute_batch(ctx.model, ctx.tasks[index], ctx.base_seed, ctx.sampler)


def _run_free_chunk(index: int) -> list[str]:
    """Worker body: generate one free-generation chunk by index."""
    _check_crash_hook()
    maybe_fail("worker", index)
    ctx = _CTX
    assert ctx is not None, "worker context not initialised"
    chunk_index, batch = ctx.tasks[index]
    rng = np.random.default_rng((ctx.base_seed, chunk_index))
    return ctx.model._generate_free_batch(batch, rng)


def _guard(runner: Callable[[int], object], index: int) -> tuple[int, bool, object]:
    """Run one task, converting any raise into a per-task failure record.

    Catching ``BaseException`` is deliberate: injected faults derive from
    it, and the supervisor must be able to attribute *any* worker failure
    to its task index rather than lose the whole map.
    """
    try:
        result = (index, True, runner(index))
    except BaseException as exc:  # noqa: BLE001 — see docstring
        return (index, False, f"{type(exc).__name__}: {exc}")
    # Refresh this worker's final metrics snapshot after every completed
    # task: workers die by Pool.terminate(), so there is no shutdown hook
    # — the last snapshot written is the worker's final accounting.
    sess = telemetry.active()
    if sess is not None and sess.worker is not None:
        sess.emit_metrics()
    return result


def _guarded_batch(index: int) -> tuple[int, bool, object]:
    return _guard(_run_batch, index)


def _guarded_free(index: int) -> tuple[int, bool, object]:
    return _guard(_run_free_chunk, index)


def _run_pool(
    model: "PagPassGPT",
    tasks: Sequence,
    base_seed: int,
    workers: int,
    guarded: Callable[[int], tuple[int, bool, object]],
    serial_fn: Callable[[int], object],
    start_method: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
    context: str = "parallel execution",
    stop: Optional[Callable[[], None]] = None,
) -> list:
    """Supervised map of ``guarded`` over task indices; results in task order.

    ``stop`` (e.g. ``Budget.stopper``) is polled while waiting on worker
    results so deadlines and graceful-shutdown signals interrupt the map
    mid-wait; the supervisor terminates and reaps the pool on the way
    out (see :func:`repro.runtime.retry.supervised_map`).
    """
    global _CTX
    if not tasks:
        return []
    policy = policy or RetryPolicy()
    if start_method is None:
        methods = mp.get_all_start_methods()
        start_method = "fork" if "fork" in methods else mp.get_start_method()
    # Build the weight snapshot and prompt-KV cache once, before any
    # fork, so workers inherit them copy-on-write.  Under
    # REPRO_BACKEND=compiled this also renders+compiles (or cache-loads)
    # the fused decode kernels in the parent: forked workers inherit the
    # loaded shared library and bound weight pointers COW and never
    # touch the compiler; spawned workers re-resolve via the on-disk
    # kernel cache instead (the env var travels with them).
    model.inference
    model.prompt_cache
    sampler = model.sampler
    workers = max(1, min(workers, len(tasks)))

    tele = _parent_telemetry_args()

    if start_method == "fork":
        ctx = mp.get_context("fork")
        _CTX = _WorkerContext(
            model=model, tasks=tuple(tasks), base_seed=base_seed, sampler=sampler
        )
        try:
            return supervised_map(
                lambda: ctx.Pool(
                    processes=workers, initializer=_init_fork_worker, initargs=(tele,)
                ),
                guarded,
                len(tasks),
                policy=policy,
                serial_fn=serial_fn,
                on_result=on_result,
                context=context,
                stop=stop,
            )
        finally:
            _CTX = None

    # Non-fork start method: ship an explicit weight blob once per worker.
    # The blob outlives any single pool so a post-timeout rebuild can
    # re-initialise fresh workers from it.
    ctx = mp.get_context(start_method)
    with tempfile.TemporaryDirectory(prefix="repro-parallel-") as tmp:
        path = Path(tmp) / "weights.npz"
        model.save(path)
        factory = lambda: ctx.Pool(  # noqa: E731
            processes=workers,
            initializer=_init_from_checkpoint,
            initargs=(str(path), model.tokenizer, sampler, tuple(tasks), base_seed, tele),
        )
        return supervised_map(
            factory,
            guarded,
            len(tasks),
            policy=policy,
            serial_fn=serial_fn,
            on_result=on_result,
            context=context,
            stop=stop,
        )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------

def execute_batches_parallel(
    model: "PagPassGPT",
    batches: Sequence[LeafBatch],
    base_seed: int,
    workers: int,
    start_method: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
    stop: Optional[Callable[[], None]] = None,
) -> list[tuple[list[str], int]]:
    """Execute D&C-GEN leaf batches on a supervised process pool.

    Returns per-batch ``(guesses, model_calls)`` in batch order — the
    same list the serial loop produces.  An empty ``batches`` returns
    ``[]`` without spinning up a pool.  Individual task failures are
    retried per :class:`~repro.runtime.retry.RetryPolicy` and fall back
    to in-parent serial execution as a last resort; ``on_result(index,
    result)`` fires once per batch as it completes (unordered).
    """
    return _run_pool(
        model,
        batches,
        base_seed,
        workers,
        _guarded_batch,
        lambda i: execute_batch(model, batches[i], base_seed, model.sampler),
        start_method,
        policy=policy,
        on_result=on_result,
        context="parallel D&C-GEN execution",
        stop=stop,
    )


def free_chunks(n: int, gen_batch: int = GEN_BATCH) -> list[tuple[int, int]]:
    """``(chunk_index, rows)`` pairs covering ``n`` free-generation rows."""
    return [
        (i, min(gen_batch, n - start))
        for i, start in enumerate(range(0, n, gen_batch))
    ]


def execute_free_chunks_parallel(
    model: "PagPassGPT",
    chunks: Sequence[tuple[int, int]],
    base_seed: int,
    workers: int,
    start_method: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
    stop: Optional[Callable[[], None]] = None,
) -> list[list[str]]:
    """Run ``(chunk_index, rows)`` free-generation chunks on a pool.

    Returns per-chunk guess lists in the order of ``chunks`` (which may
    be a resumed run's pending subset).  Empty input returns ``[]``
    without a pool.
    """
    def serial(i: int) -> list[str]:
        chunk_index, rows = chunks[i]
        return model._generate_free_batch(
            rows, np.random.default_rng((base_seed, chunk_index))
        )

    return _run_pool(
        model,
        chunks,
        base_seed,
        workers,
        _guarded_free,
        serial,
        start_method,
        policy=policy,
        on_result=on_result,
        context="parallel free generation",
        stop=stop,
    )


def generate_free_parallel(
    model: "PagPassGPT",
    n: int,
    base_seed: int,
    workers: int,
    start_method: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
) -> list[str]:
    """Free (trawling) generation with chunks sharded across a pool.

    ``n <= 0`` returns ``[]`` without spinning up a pool.
    """
    chunks = free_chunks(n) if n > 0 else []
    results = execute_free_chunks_parallel(
        model, chunks, base_seed, workers, start_method, policy=policy
    )
    return [pw for chunk in results for pw in chunk]
