"""Multiprocess execution backend for generation leaf tasks.

D&C-GEN's subtasks are non-overlapping (§III-C2), which makes leaf
execution embarrassingly parallel — the paper runs it across 4 GPUs.
Here the divide phase stays serial in the parent (it is model-bound and
cheap), and the resulting :class:`~repro.generation.dcgen.LeafBatch`
list is sharded across a process pool.  Free (trawling) generation
parallelises the same way, with ``gen_batch``-sized chunks as the unit.

Because every leaf/chunk seeds its own rng from ``(base_seed, task_id)``,
the merged stream is byte-identical to the serial path for any worker
count — the equivalence harness in ``tests/test_generation_parallel.py``
enforces this.

Weight sharing
--------------

* With the ``fork`` start method (Linux default) workers inherit the
  parent's model snapshot copy-on-write: the parent touches
  ``model.inference`` once before forking so no worker rebuilds it.
* Without ``fork`` (e.g. spawn on macOS/Windows) the parent writes the
  weights once to a temporary ``repro.nn.serialization`` checkpoint and
  each worker rebuilds the model from that blob at pool init.

Failure handling
----------------

Worker exceptions propagate out of :func:`execute_batches_parallel` /
:func:`generate_free_parallel`; callers catch them and fall back to the
serial path with a :class:`RuntimeWarning`.  Setting the
``REPRO_PARALLEL_TEST_CRASH`` environment variable makes every worker
raise before its first task — the hook the fallback tests use.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from .dcgen import LeafBatch, execute_batch
from .sampler import GEN_BATCH, SamplerConfig

if TYPE_CHECKING:  # imported lazily to avoid a models <-> generation cycle
    from ..models.pagpassgpt import PagPassGPT

#: Environment variable that makes every worker crash before its first
#: task.  Used by the equivalence harness to test graceful fallback.
CRASH_ENV = "REPRO_PARALLEL_TEST_CRASH"


@dataclass
class _WorkerContext:
    """Read-only state each worker needs: model, task list, seed."""

    model: "PagPassGPT"
    tasks: Sequence
    base_seed: int
    sampler: SamplerConfig


#: Set in the parent before forking (inherited copy-on-write) or rebuilt
#: by :func:`_init_from_checkpoint` under non-fork start methods.
_CTX: Optional[_WorkerContext] = None


def _check_crash_hook() -> None:
    if os.environ.get(CRASH_ENV):
        raise RuntimeError(f"worker crash injected via {CRASH_ENV}")


def _init_from_checkpoint(path, tokenizer, sampler, tasks, base_seed) -> None:
    """Pool initializer for non-fork start methods.

    Rebuilds the model once per worker from an explicit weight blob (a
    ``repro.nn.serialization`` npz checkpoint written by the parent).
    """
    global _CTX
    from ..models.pagpassgpt import PagPassGPT

    model = PagPassGPT.load(path)
    model.tokenizer = tokenizer
    model.sampler = sampler
    _CTX = _WorkerContext(model=model, tasks=tasks, base_seed=base_seed, sampler=sampler)


def _run_batch(index: int) -> tuple[list[str], int]:
    """Worker body: execute one D&C-GEN leaf batch by index."""
    _check_crash_hook()
    ctx = _CTX
    assert ctx is not None, "worker context not initialised"
    return execute_batch(ctx.model, ctx.tasks[index], ctx.base_seed, ctx.sampler)


def _run_free_chunk(index: int) -> list[str]:
    """Worker body: generate one free-generation chunk by index."""
    _check_crash_hook()
    ctx = _CTX
    assert ctx is not None, "worker context not initialised"
    chunk_index, batch = ctx.tasks[index]
    rng = np.random.default_rng((ctx.base_seed, chunk_index))
    return ctx.model._generate_free_batch(batch, rng)


def _run_pool(
    model: "PagPassGPT",
    tasks: Sequence,
    base_seed: int,
    workers: int,
    runner: Callable[[int], object],
    start_method: Optional[str] = None,
) -> list:
    """Map ``runner`` over task indices on a pool; results in task order."""
    global _CTX
    if start_method is None:
        methods = mp.get_all_start_methods()
        start_method = "fork" if "fork" in methods else mp.get_start_method()
    model.inference  # build the weight snapshot once, before any fork
    sampler = model.sampler
    workers = max(1, min(workers, len(tasks)))

    if start_method == "fork":
        ctx = mp.get_context("fork")
        _CTX = _WorkerContext(
            model=model, tasks=tuple(tasks), base_seed=base_seed, sampler=sampler
        )
        try:
            with ctx.Pool(processes=workers) as pool:
                return pool.map(runner, range(len(tasks)))
        finally:
            _CTX = None

    # Non-fork start method: ship an explicit weight blob once per worker.
    ctx = mp.get_context(start_method)
    with tempfile.TemporaryDirectory(prefix="repro-parallel-") as tmp:
        path = Path(tmp) / "weights.npz"
        model.save(path)
        with ctx.Pool(
            processes=workers,
            initializer=_init_from_checkpoint,
            initargs=(str(path), model.tokenizer, sampler, tuple(tasks), base_seed),
        ) as pool:
            return pool.map(runner, range(len(tasks)))


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------

def execute_batches_parallel(
    model: "PagPassGPT",
    batches: Sequence[LeafBatch],
    base_seed: int,
    workers: int,
    start_method: Optional[str] = None,
) -> list[tuple[list[str], int]]:
    """Execute D&C-GEN leaf batches on a process pool.

    Returns per-batch ``(guesses, model_calls)`` in batch order — the
    same list the serial loop produces.  Worker failures propagate as
    exceptions; :class:`~repro.generation.dcgen.DCGenerator` catches
    them and falls back to serial execution with a warning.
    """
    return _run_pool(model, batches, base_seed, workers, _run_batch, start_method)


def free_chunks(n: int, gen_batch: int = GEN_BATCH) -> list[tuple[int, int]]:
    """``(chunk_index, rows)`` pairs covering ``n`` free-generation rows."""
    return [
        (i, min(gen_batch, n - start))
        for i, start in enumerate(range(0, n, gen_batch))
    ]


def generate_free_parallel(
    model: "PagPassGPT",
    n: int,
    base_seed: int,
    workers: int,
    start_method: Optional[str] = None,
) -> list[str]:
    """Free (trawling) generation with chunks sharded across a pool."""
    chunks = free_chunks(n)
    results = _run_pool(model, chunks, base_seed, workers, _run_free_chunk, start_method)
    return [pw for chunk in results for pw in chunk]
