"""Ordered generation (SOPG): emit guesses in descending model probability.

Search-based Ordered Password Generation (arXiv 2403.09954) observes
that an autoregressive password model cracks more per guess when the
guesses come out *sorted* by model probability instead of sampled:
at small budgets every emitted string is the most probable one the model
has not tried yet.  This module implements that strategy as a second
generation backend next to D&C-GEN.

Algorithm
---------

A node is a password prefix with its cumulative negative log-probability
under the *constrained, renormalised* next-token distribution — the same
distribution :mod:`repro.generation.sampler` draws from, so the ordered
and sampled strategies enumerate the identical probability space.  A
min-heap frontier holds ``(neg_logprob, seq, prompt_index, chars,
complete)`` tuples; each round pops up to ``beam_width`` of the most
probable incomplete nodes, computes their next-token distributions in
one batched model call, and pushes every child back.  Because a child's
negative log-probability is never below its parent's, a complete node
popped while nothing else is pending is provably the most probable
unemitted password — the emitted stream is non-increasing in
probability and duplicate-free (distinct nodes are distinct strings).

Two prompt modes share the machinery:

* **pattern-conditioned** (PagPassGPT) — one root per pattern, weighted
  by its S_p prior; position ``i`` allows only the pattern's class
  (:meth:`~repro.tokenizer.tokenizer.PasswordTokenizer.allowed_ids_at`),
  and a node completes when the pattern is filled;
* **unconditional** (PassGPT) — a single ``<BOS>`` root; every position
  allows ``<EOS>`` plus all character tokens, and choosing ``<EOS>``
  completes the node.

Inference fast path
-------------------

A frontier is a set of shared prefixes, which is exactly the shape the
PR-3 machinery optimises: each prompt is primed once through the
model's :class:`~repro.nn.PromptCache`, expansion batches gather the
trimmed prompt KV state to the group width (:meth:`~repro.nn.KVCache.
gather`) and feed only the decided characters through
:meth:`~repro.nn.GPT2Inference.extend`.  Depth-0 expansions reuse the
cached prompt logits outright — zero model calls.

Fault tolerance
---------------

Ordered campaigns are first-class citizens of the journaled runtime:
every ``snapshot_every`` rounds the full enumeration state (heap,
emitted delta, counters) is recorded as a digest-guarded ``frontier``
record.  Resuming replays the journaled snapshots and continues from
the last one; because enumeration is deterministic, the merged stream
is byte-identical to an uninterrupted run for any snapshot interval.
``maybe_fail("frontier")`` guards the snapshot site for fault-injection
tests (``REPRO_FAULT=crash:frontier:K``).

Memory is bounded by ``max_frontier``: when the heap outgrows it the
*least* probable nodes are pruned.  Pruning never reorders the emitted
stream but can drop reachable strings, so it is accounted, never
silent: :attr:`OrderedStats.truncated_nodes` / ``truncated_mass`` and a
``frontier_truncated`` telemetry event report exactly what was given up.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

import numpy as np

from .. import telemetry
from ..runtime import Budget, RunJournal, maybe_fail
from ..tokenizer.patterns import Pattern
from .sampler import constrained_distribution

if TYPE_CHECKING:  # imported lazily to avoid a models <-> generation cycle
    from ..models.pagpassgpt import PagPassGPT


@dataclass(frozen=True)
class OrderedConfig:
    """Knobs of the best-first enumerator.

    ``beam_width`` is the number of frontier nodes expanded per batched
    model call — a throughput knob that also sets how many equal-score
    candidates can be in flight (the emitted *order* is probability-
    sorted regardless).  ``max_frontier`` caps heap memory; overflow
    prunes the least probable nodes with full accounting.
    ``snapshot_every`` is the journaling cadence in rounds (resume is
    byte-identical for any value).  ``max_patterns`` truncates the S_p
    prior like :class:`~repro.generation.dcgen.DCGenConfig`;
    ``max_chars`` caps unconditional password length (default: the
    tokenizer's limit).
    """

    beam_width: int = 64
    max_frontier: int = 50_000
    snapshot_every: int = 4
    max_patterns: Optional[int] = None
    max_chars: Optional[int] = None

    def __post_init__(self) -> None:
        if self.beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        if self.max_frontier < self.beam_width:
            raise ValueError("max_frontier must be >= beam_width")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if self.max_patterns is not None and self.max_patterns < 1:
            raise ValueError("max_patterns must be >= 1 or None")
        if self.max_chars is not None and self.max_chars < 1:
            raise ValueError("max_chars must be >= 1 or None")


@dataclass
class OrderedStats:
    """Counters describing one ordered run (journaled with snapshots)."""

    rounds: int = 0
    pops: int = 0
    expansions: int = 0  # nodes fed through the model (rows)
    model_calls: int = 0
    emitted: int = 0
    truncated_nodes: int = 0
    truncated_mass: float = 0.0  # probability mass of pruned nodes
    snapshots: int = 0
    exhausted: bool = False  # frontier emptied before the budget was met

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "OrderedStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class OrderedPrompt:
    """One enumeration root: a primed prompt plus its prior.

    ``pattern`` selects the mode: a :class:`Pattern` constrains every
    position to its class and completes at the pattern length; ``None``
    means unconditional — characters until ``<EOS>``.
    """

    prompt_ids: np.ndarray
    prior_neg_logprob: float
    pattern: Optional[Pattern]
    label: str


def prompts_digest(prompts: Sequence[OrderedPrompt]) -> str:
    """Content digest of the enumeration roots — the run identity a
    journal pins (two runs with equal digests enumerate the same space
    with the same priors)."""
    h = hashlib.sha256()
    for prompt in prompts:
        h.update(prompt.label.encode())
        h.update(b"|")
        h.update(repr(float(prompt.prior_neg_logprob)).encode())
        h.update(b"|")
        h.update(np.asarray(prompt.prompt_ids, dtype=np.int64).tobytes())
        h.update(b";")
    return h.hexdigest()[:16]


class OrderedGenerator:
    """Best-first enumeration over a fitted GPT password model.

    Construct via :meth:`for_patterns` (PagPassGPT: pattern-conditioned
    mixture weighted by S_p) or :meth:`unconditional` (PassGPT: bare
    ``<BOS>``).  The model object must expose ``tokenizer``,
    ``inference`` and ``prompt_cache`` — both GPT model classes do.
    """

    def __init__(
        self,
        model: "PagPassGPT",
        prompts: Sequence[OrderedPrompt],
        config: OrderedConfig = OrderedConfig(),
    ) -> None:
        if not prompts:
            raise ValueError("ordered generation needs at least one prompt root")
        self.model = model
        self.prompts = list(prompts)
        self.config = config
        self.stats = OrderedStats()
        vocab = model.tokenizer.vocab
        self._eos_id = int(vocab.eos_id)
        # Unconditional candidate set: <EOS> first, then every character.
        self._uncond_allowed = np.concatenate(
            [
                np.array([vocab.eos_id], dtype=np.int64),
                np.array(vocab.char_ids, dtype=np.int64),
            ]
        )
        self._eos_only = np.array([vocab.eos_id], dtype=np.int64)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_patterns(
        cls,
        model: "PagPassGPT",
        pattern_probs: Optional[dict[str, float]] = None,
        config: OrderedConfig = OrderedConfig(),
    ) -> "OrderedGenerator":
        """Pattern-conditioned mixture: one root per pattern, S_p prior.

        ``pattern_probs`` defaults to the S_p recorded while fitting the
        model; probabilities are renormalised over the (possibly
        ``max_patterns``-truncated) ranked set so priors sum to 1.
        """
        probs = pattern_probs if pattern_probs is not None else model.pattern_probs
        if not probs:
            raise ValueError("no pattern distribution available; fit the model first")
        ranked = sorted(probs.items(), key=lambda item: (-item[1], item[0]))
        if config.max_patterns is not None:
            ranked = ranked[: config.max_patterns]
        ranked = [(p, prob) for p, prob in ranked if prob > 0]
        mass = sum(prob for _, prob in ranked)
        if not ranked or mass <= 0:
            raise ValueError("pattern distribution has no positive mass")
        tokenizer = model.tokenizer
        prompts = [
            OrderedPrompt(
                prompt_ids=np.asarray(
                    tokenizer.encode_prompt(Pattern.parse(p)), dtype=np.int64
                ),
                prior_neg_logprob=-math.log(prob / mass),
                pattern=Pattern.parse(p),
                label=p,
            )
            for p, prob in ranked
        ]
        return cls(model, prompts, config)

    @classmethod
    def unconditional(
        cls, model, config: OrderedConfig = OrderedConfig()
    ) -> "OrderedGenerator":
        """Single ``<BOS>`` root; passwords end at ``<EOS>`` (PassGPT)."""
        vocab = model.tokenizer.vocab
        prompt = OrderedPrompt(
            prompt_ids=np.array([vocab.bos_id], dtype=np.int64),
            prior_neg_logprob=0.0,
            pattern=None,
            label="<free>",
        )
        return cls(model, [prompt], config)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(
        self,
        n: int,
        journal: Optional[Union[str, Path, RunJournal]] = None,
        resume: bool = False,
        progress: Optional[Callable[[int, int], None]] = None,
        budget: Optional[Budget] = None,
    ) -> list[str]:
        """The ``n`` most probable unemitted passwords, most probable first.

        Fully deterministic — no sampling, no rng, no worker dependence;
        the only approximation is ``max_frontier`` pruning, which is
        reported in :attr:`stats`.  ``journal`` / ``resume`` give the
        same crash-safety contract as D&C-GEN: frontier snapshots are
        journaled every ``snapshot_every`` rounds and a resumed run
        emits the byte-identical stream of an uninterrupted one.
        ``progress(emitted, n)`` fires once per round.  ``budget`` (a
        :class:`~repro.runtime.Budget`) is polled at every round
        boundary; on a trip the un-snapshotted delta is flushed to the
        journal first, so the graceful stop loses nothing.
        """
        return [
            pw for pw, _ in self.generate_scored(n, journal, resume, progress, budget)
        ]

    def generate_scored(
        self,
        n: int,
        journal: Optional[Union[str, Path, RunJournal]] = None,
        resume: bool = False,
        progress: Optional[Callable[[int, int], None]] = None,
        budget: Optional[Budget] = None,
    ) -> list[tuple[str, float]]:
        """:meth:`generate` with each password's log-probability attached.

        The scores are cumulative log-probabilities under the
        constrained renormalised next-token distribution (plus the
        pattern prior in pattern mode) and are non-increasing along the
        returned list — the property the test harness asserts.
        """
        if n <= 0:
            return []
        with telemetry.trace("campaign", kind="ordered", requested=int(n)):
            telemetry.emit(
                "campaign_plan",
                kind="ordered",
                requested=int(n),
                rows=int(n),
                beam_width=int(self.config.beam_width),
                max_frontier=int(self.config.max_frontier),
                prompts=len(self.prompts),
                backend=self.model.inference.backend_name,
            )
            owns_journal = False
            if journal is not None and not isinstance(journal, RunJournal):
                header = {
                    "kind": "ordered",
                    "n": int(n),
                    "beam_width": int(self.config.beam_width),
                    "max_frontier": int(self.config.max_frontier),
                    "prompts": prompts_digest(self.prompts),
                }
                telemetry.pin_trace(header)
                journal = RunJournal.attach(journal, header, resume=resume)
                owns_journal = True
                telemetry.rejoin_trace(journal.header.get(RunJournal.TRACE_HEADER_KEY))
            try:
                return self._run(n, journal, progress, budget)
            finally:
                if owns_journal:
                    journal.close()

    # ------------------------------------------------------------------
    # Enumeration core
    # ------------------------------------------------------------------
    def _run(
        self,
        n: int,
        journal: Optional[RunJournal],
        progress: Optional[Callable[[int, int], None]],
        budget: Optional[Budget] = None,
    ) -> list[tuple[str, float]]:
        self.stats = OrderedStats()
        stats = self.stats
        registry = telemetry.get_registry()
        heap: list[tuple] = []
        seq = 0
        emitted: list[tuple[str, float]] = []
        delta: list[list] = []  # [password, neg_logprob] since last snapshot
        snapshot_id = 0

        restored = journal.completed("frontier") if journal is not None else {}
        if restored:
            for sid in sorted(restored):
                emitted.extend(
                    (pw, -float(neg)) for pw, neg in restored[sid]["emitted"]
                )
            last = restored[max(restored)]
            heap = [
                (float(neg), int(s), int(p), tuple(chars), bool(complete))
                for neg, s, p, chars, complete in last["heap"]
            ]
            heapq.heapify(heap)
            seq = int(last["seq"])
            self.stats = stats = OrderedStats.from_dict(last["stats"])
            snapshot_id = max(restored) + 1
            telemetry.emit(
                "campaign_resume",
                tasks=len(restored),
                guesses=len(emitted),
                model_calls=int(stats.model_calls),
            )
        else:
            for index, prompt in enumerate(self.prompts):
                if math.isfinite(prompt.prior_neg_logprob):
                    heap.append((float(prompt.prior_neg_logprob), seq, index, (), False))
                    seq += 1
            heapq.heapify(heap)

        if progress is not None:
            progress(len(emitted), n)

        while len(emitted) < n and heap:
            with telemetry.trace(
                "ordered.round", level="debug", round=int(stats.rounds)
            ) as span:
                pops0, calls0, emit0 = stats.pops, stats.model_calls, len(emitted)
                batch: list[tuple] = []
                held: list[tuple] = []
                while heap and len(batch) < self.config.beam_width and len(emitted) < n:
                    node = heapq.heappop(heap)
                    stats.pops += 1
                    if node[4]:  # complete
                        if batch:
                            # An expansion is pending whose children may
                            # score better — defer to a later round.
                            held.append(node)
                        else:
                            password = self._password(node)
                            emitted.append((password, -node[0]))
                            delta.append([password, node[0]])
                    else:
                        batch.append(node)
                if len(emitted) >= n:
                    # Budget met mid-collection: everything popped but not
                    # emitted goes back so snapshots stay exact.
                    for node in batch:
                        heapq.heappush(heap, node)
                    batch = []
                if batch:
                    seq = self._expand(batch, heap, seq)
                for node in held:
                    heapq.heappush(heap, node)
                self._prune(heap, registry, stats)
                stats.rounds += 1
                stats.emitted = len(emitted)
                registry.counter("ordered.pops").inc(stats.pops - pops0)
                span.set(
                    pops=stats.pops - pops0,
                    guesses=len(emitted) - emit0,
                    model_calls=stats.model_calls - calls0,
                )
            if progress is not None:
                progress(len(emitted), n)
            if journal is not None and stats.rounds % self.config.snapshot_every == 0:
                snapshot_id = self._snapshot(journal, snapshot_id, heap, seq, delta)
                delta = []
            if budget is not None and budget.exceeded(
                guesses=len(emitted), model_calls=stats.model_calls
            ):
                # Graceful stop at a round boundary: flush the pending
                # delta as an extra snapshot first, so the interrupted
                # round's guesses are durable before the raise — resume
                # picks up exactly here.
                if journal is not None and delta:
                    snapshot_id = self._snapshot(journal, snapshot_id, heap, seq, delta)
                    delta = []
                budget.poll(
                    guesses=len(emitted),
                    model_calls=stats.model_calls,
                    rounds=stats.rounds,
                )

        if len(emitted) < n:
            stats.exhausted = True
            telemetry.emit(
                "frontier_exhausted", emitted=len(emitted), requested=int(n)
            )
        stats.emitted = len(emitted)
        if journal is not None and delta:
            self._snapshot(journal, snapshot_id, heap, seq, delta)
        return emitted[:n]

    def _expand(self, batch: list[tuple], heap: list[tuple], seq: int) -> int:
        """Batched child generation; returns the advanced ``seq`` counter.

        Nodes are grouped by ``(prompt, depth)`` so each group is one
        KV-cached forward: the shared prompt comes from the warm
        :class:`~repro.nn.PromptCache`, the decided characters ride one
        :meth:`~repro.nn.GPT2Inference.extend` call.  Group iteration
        order is sorted, so child insertion — and therefore the ``seq``
        tie-break — is deterministic.
        """
        stats = self.stats
        groups: dict[tuple[int, int], list[tuple]] = {}
        for node in batch:
            groups.setdefault((node[2], len(node[3])), []).append(node)
        for (prompt_index, depth), nodes in sorted(groups.items()):
            prompt = self.prompts[prompt_index]
            prompt_logits, prompt_kv = self.model.prompt_cache.lookup(prompt.prompt_ids)
            if depth == 0:
                logits = np.repeat(prompt_logits, len(nodes), axis=0)
            else:
                kv = prompt_kv.gather(np.zeros(len(nodes), dtype=np.intp))
                chars = np.array([node[3] for node in nodes], dtype=np.int64)
                logits = self.model.inference.extend(chars, kv)
                stats.model_calls += 1
            allowed = self._allowed(prompt, depth)
            # log of the renormalised constrained distribution, float64
            # so cumulative scores do not lose precision along the path.
            with np.errstate(divide="ignore"):
                log_probs = np.log(
                    constrained_distribution(logits, allowed).astype(np.float64)
                )
            stats.expansions += len(nodes)
            pattern_len = prompt.pattern.length if prompt.pattern is not None else None
            for row, node in enumerate(nodes):
                parent_neg, _, _, parent_chars, _ = node
                for column, token_id in enumerate(allowed.tolist()):
                    lp = log_probs[row, column]
                    if not np.isfinite(lp):
                        continue  # zero-probability child: unreachable
                    child_neg = parent_neg - float(lp)
                    if pattern_len is not None:
                        child_chars = parent_chars + (token_id,)
                        complete = depth + 1 == pattern_len
                    elif token_id == self._eos_id:
                        child_chars = parent_chars
                        complete = True
                    else:
                        child_chars = parent_chars + (token_id,)
                        complete = False
                    heapq.heappush(
                        heap, (child_neg, seq, node[2], child_chars, complete)
                    )
                    seq += 1
        return seq

    def _allowed(self, prompt: OrderedPrompt, depth: int) -> np.ndarray:
        """Candidate token ids for the next position of a node."""
        if prompt.pattern is not None:
            return self.model.tokenizer.allowed_ids_at(prompt.pattern, depth)
        if depth >= self._max_chars():
            return self._eos_only
        return self._uncond_allowed

    def _max_chars(self) -> int:
        if self.config.max_chars is not None:
            return self.config.max_chars
        tokenizer = self.model.tokenizer
        return getattr(tokenizer, "max_password_length", tokenizer.block_size - 2)

    def _password(self, node: tuple) -> str:
        token_strs = self.model.tokenizer.vocab.token_array
        return "".join(token_strs[list(node[3])]) if node[3] else ""

    def _prune(self, heap: list[tuple], registry, stats: OrderedStats) -> None:
        """Cap the heap at ``max_frontier``, accounting for what's dropped."""
        if len(heap) <= self.config.max_frontier:
            return
        heap.sort()  # a sorted list is a valid heap
        dropped = heap[self.config.max_frontier :]
        del heap[self.config.max_frontier :]
        mass = float(sum(math.exp(-node[0]) for node in dropped))
        stats.truncated_nodes += len(dropped)
        stats.truncated_mass += mass
        registry.counter("ordered.truncated").inc(len(dropped))
        telemetry.emit(
            "frontier_truncated",
            level="debug",
            dropped=len(dropped),
            mass=mass,
            frontier=len(heap),
        )

    def _snapshot(
        self,
        journal: RunJournal,
        snapshot_id: int,
        heap: list[tuple],
        seq: int,
        delta: list[list],
    ) -> int:
        """Journal the full enumeration state; returns the next ordinal.

        ``maybe_fail("frontier")`` sits before the write so the fault
        harness can kill the run at an exact snapshot boundary
        (``REPRO_FAULT=crash:frontier:K`` crashes before snapshot K+1,
        leaving K durable snapshots behind).
        """
        maybe_fail("frontier")
        journal.record(
            "frontier",
            snapshot_id,
            {
                "round": int(self.stats.rounds),
                "emitted": delta,
                "heap": [
                    [neg, s, p, list(chars), complete]
                    for neg, s, p, chars, complete in heap
                ],
                "seq": int(seq),
                "stats": self.stats.as_dict(),
            },
        )
        self.stats.snapshots += 1
        return snapshot_id + 1
