"""Generation machinery: samplers, D&C-GEN, ordered search, parallel backend."""

from .dcgen import (
    DCGenConfig,
    DCGenStats,
    DCGenerator,
    LeafBatch,
    LeafTask,
    build_batches,
    execute_batch,
    leaf_rng,
    plan_digest,
    planned_execute_costs,
    remaining_search_space,
)
from .ordered import (
    OrderedConfig,
    OrderedGenerator,
    OrderedPrompt,
    OrderedStats,
    prompts_digest,
)
from .parallel import (
    execute_batches_parallel,
    execute_free_chunks_parallel,
    free_chunks,
    generate_free_parallel,
)
from .sampler import (
    SamplerConfig,
    choose_constrained,
    constrained_distribution,
    logits_to_probs,
    sample,
    sample_constrained,
)

__all__ = [
    "DCGenConfig",
    "DCGenStats",
    "DCGenerator",
    "LeafBatch",
    "LeafTask",
    "build_batches",
    "execute_batch",
    "leaf_rng",
    "plan_digest",
    "planned_execute_costs",
    "remaining_search_space",
    "OrderedConfig",
    "OrderedGenerator",
    "OrderedPrompt",
    "OrderedStats",
    "prompts_digest",
    "execute_batches_parallel",
    "execute_free_chunks_parallel",
    "free_chunks",
    "generate_free_parallel",
    "SamplerConfig",
    "choose_constrained",
    "constrained_distribution",
    "logits_to_probs",
    "sample",
    "sample_constrained",
]
