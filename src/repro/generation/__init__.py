"""Generation machinery: samplers and the D&C-GEN algorithm."""

from .dcgen import DCGenConfig, DCGenStats, DCGenerator, remaining_search_space
from .sampler import (
    SamplerConfig,
    constrained_distribution,
    logits_to_probs,
    sample,
    sample_constrained,
)

__all__ = [
    "DCGenConfig",
    "DCGenStats",
    "DCGenerator",
    "remaining_search_space",
    "SamplerConfig",
    "constrained_distribution",
    "logits_to_probs",
    "sample",
    "sample_constrained",
]
