"""Mini-batch iteration over encoded password matrices."""

from __future__ import annotations

from typing import Iterator

import numpy as np


class BatchLoader:
    """Shuffling mini-batch loader over a ``(n, seq)`` id matrix.

    The final short batch is kept (training on every example matters for
    the small corpora used in tests).
    """

    def __init__(
        self,
        ids: np.ndarray,
        batch_size: int,
        seed: int = 0,
        shuffle: bool = True,
    ) -> None:
        ids = np.asarray(ids)
        if ids.ndim != 2:
            raise ValueError(f"ids must be 2-D, got shape {ids.shape}")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.ids = ids
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        """Number of batches per epoch."""
        return (len(self.ids) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[np.ndarray]:
        order = (
            self._rng.permutation(len(self.ids))
            if self.shuffle
            else np.arange(len(self.ids))
        )
        for start in range(0, len(order), self.batch_size):
            yield self.ids[order[start : start + self.batch_size]]
