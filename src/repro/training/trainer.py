"""Causal-LM training loop used by PagPassGPT and PassGPT.

Implements the paper's §IV-B1 recipe — AdamW, configurable batch size and
epochs — plus validation, gradient clipping, LR scheduling and early
stopping, scaled to CPU-sized models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..autograd import no_grad
from ..nn import GPT2Model, AdamW, WarmupLinear, clip_grad_norm
from .dataloader import BatchLoader


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run.

    Paper values: ``batch_size=512``, ``epochs=30``, ``lr=5e-5``; the
    reproduction default is sized for CPU corpora of 10^4 passwords.
    """

    epochs: int = 8
    batch_size: int = 64
    lr: float = 3e-4
    weight_decay: float = 0.01
    warmup_fraction: float = 0.05
    grad_clip: float = 1.0
    early_stop_patience: int = 0  # 0 disables early stopping
    seed: int = 0
    log_every: int = 0  # batches between log callbacks; 0 = per epoch only


@dataclass
class TrainHistory:
    """Per-epoch loss curves plus the best validation point."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_loss: float = float("inf")
    stopped_early: bool = False


class Trainer:
    """Trains a :class:`GPT2Model` on encoded rule/password matrices."""

    def __init__(
        self,
        model: GPT2Model,
        pad_id: int,
        config: Optional[TrainConfig] = None,
        log_fn: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.model = model
        self.pad_id = pad_id
        self.config = config or TrainConfig()
        self.log_fn = log_fn

    def _log(self, message: str) -> None:
        if self.log_fn is not None:
            self.log_fn(message)

    def evaluate(self, ids: np.ndarray, batch_size: Optional[int] = None) -> float:
        """Mean validation loss over ``ids`` (no dropout, no gradients)."""
        if len(ids) == 0:
            raise ValueError("evaluate received an empty id matrix")
        self.model.eval()
        loader = BatchLoader(ids, batch_size or self.config.batch_size, shuffle=False)
        total, count = 0.0, 0
        with no_grad():
            for batch in loader:
                loss = self.model.loss(batch, pad_token_id=self.pad_id)
                total += loss.item() * len(batch)
                count += len(batch)
        self.model.train()
        return total / count

    def fit(self, train_ids: np.ndarray, val_ids: Optional[np.ndarray] = None) -> TrainHistory:
        """Run the full training loop; returns loss history.

        Early stopping (if enabled) restores nothing — it simply stops;
        callers wanting the best snapshot should checkpoint per epoch via
        ``log_fn`` or keep ``early_stop_patience=0``.
        """
        cfg = self.config
        params = self.model.parameters()
        no_decay = [
            p
            for name, p in self.model.named_parameters()
            if name.endswith(".bias") or ".ln" in name or name.endswith("pos_emb.weight")
        ]
        optimizer = AdamW(params, lr=cfg.lr, weight_decay=cfg.weight_decay, no_decay=no_decay)
        loader = BatchLoader(train_ids, cfg.batch_size, seed=cfg.seed, shuffle=True)
        total_steps = max(1, len(loader) * cfg.epochs)
        schedule = WarmupLinear(
            optimizer, cfg.lr, warmup_steps=int(total_steps * cfg.warmup_fraction),
            total_steps=total_steps,
        )

        history = TrainHistory()
        bad_epochs = 0
        self.model.train()
        for epoch in range(cfg.epochs):
            epoch_loss, seen = 0.0, 0
            for step, batch in enumerate(loader):
                schedule.step()
                optimizer.zero_grad()
                loss = self.model.loss(batch, pad_token_id=self.pad_id)
                loss.backward()
                if cfg.grad_clip:
                    clip_grad_norm(params, cfg.grad_clip)
                optimizer.step()
                epoch_loss += loss.item() * len(batch)
                seen += len(batch)
                if cfg.log_every and step % cfg.log_every == 0:
                    self._log(f"epoch {epoch} step {step}/{len(loader)} loss {loss.item():.4f}")
            history.train_loss.append(epoch_loss / seen)

            if val_ids is not None and len(val_ids):
                val = self.evaluate(val_ids)
                history.val_loss.append(val)
                if val < history.best_val_loss:
                    history.best_val_loss = val
                    history.best_epoch = epoch
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                self._log(
                    f"epoch {epoch}: train {history.train_loss[-1]:.4f} val {val:.4f}"
                )
                if cfg.early_stop_patience and bad_epochs >= cfg.early_stop_patience:
                    history.stopped_early = True
                    self._log(f"early stop at epoch {epoch}")
                    break
            else:
                self._log(f"epoch {epoch}: train {history.train_loss[-1]:.4f}")
        self.model.eval()
        return history
