"""Causal-LM training loop used by PagPassGPT and PassGPT.

Implements the paper's §IV-B1 recipe — AdamW, configurable batch size and
epochs — plus validation, gradient clipping, LR scheduling and early
stopping, scaled to CPU-sized models.

Fault tolerance
---------------

``Trainer.fit(checkpoint_path=...)`` writes a *training state* checkpoint
after every epoch: model weights, AdamW moments, LR-schedule step, the
loader's and dropout's rng states, the loss history, and (when early
stopping is armed) the best-weights snapshot.  Writes are atomic
(:mod:`repro.runtime.atomic`), so a crash mid-save leaves the previous
epoch's state intact.  ``fit(resume_from=...)`` restores all of it and
continues from the next epoch — the resumed run is bit-identical to an
uninterrupted one, because every source of randomness is part of the
state.  Damaged or mismatched state files raise
:class:`repro.nn.CheckpointError`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

import numpy as np

from .. import telemetry
from ..autograd import no_grad
from ..nn import AdamW, GPT2Model, WarmupLinear, clip_grad_norm
from ..nn.serialization import CheckpointError, _load_npz
from ..runtime import (
    Budget,
    RunJournal,
    atomic_write,
    file_digest,
    maybe_corrupt,
    maybe_fail,
)
from .dataloader import BatchLoader

_META_KEY = "__meta_json__"


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run.

    Paper values: ``batch_size=512``, ``epochs=30``, ``lr=5e-5``; the
    reproduction default is sized for CPU corpora of 10^4 passwords.
    """

    epochs: int = 8
    batch_size: int = 64
    lr: float = 3e-4
    weight_decay: float = 0.01
    warmup_fraction: float = 0.05
    grad_clip: float = 1.0
    early_stop_patience: int = 0  # 0 disables early stopping
    seed: int = 0
    log_every: int = 0  # batches between log callbacks; 0 = per epoch only


@dataclass
class TrainHistory:
    """Per-epoch loss curves plus the best validation point."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_loss: float = float("inf")
    stopped_early: bool = False
    restored_best: bool = False


def save_training_state(
    path: Union[str, Path],
    *,
    model: GPT2Model,
    optimizer: AdamW,
    schedule: WarmupLinear,
    loader: BatchLoader,
    history: TrainHistory,
    epoch: int,
    bad_epochs: int,
    best_state: Optional[dict[str, np.ndarray]] = None,
    dropout_rng: Optional[np.random.Generator] = None,
) -> None:
    """Atomically write the full resumable training state after ``epoch``.

    ``epoch`` is the number of *completed* epochs — resume starts there.
    All rng states (loader shuffle, dropout) ride along so the resumed
    run replays the exact same batches and dropout masks.
    """
    payload: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        payload[f"model/{name}"] = value
    for i, m in enumerate(optimizer._m):
        payload[f"optim/m/{i}"] = m
    for i, v in enumerate(optimizer._v):
        payload[f"optim/v/{i}"] = v
    if best_state:
        for name, value in best_state.items():
            payload[f"best/{name}"] = value
    meta: dict[str, Any] = {
        "kind": "train_state",
        "epoch": int(epoch),
        "bad_epochs": int(bad_epochs),
        "optimizer_t": int(optimizer.t),
        "schedule_step": int(schedule.step_count),
        "total_steps": int(schedule.total_steps),
        "loader_rng": loader._rng.bit_generator.state,
        "dropout_rng": dropout_rng.bit_generator.state if dropout_rng is not None else None,
        "history": asdict(history),
        "has_best": bool(best_state),
    }
    payload[_META_KEY] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    with atomic_write(Path(path)) as fh:
        np.savez_compressed(fh, **payload)
    maybe_corrupt("train_state", path)  # fault-injection hook (tests only)


def load_training_state(
    path: Union[str, Path],
) -> tuple[dict[str, dict[str, np.ndarray]], dict[str, Any]]:
    """Read a :func:`save_training_state` file.

    Returns ``(arrays, meta)`` where ``arrays`` has keys ``"model"``,
    ``"optim_m"``, ``"optim_v"`` and ``"best"`` (the last possibly
    empty).  Raises :class:`repro.nn.CheckpointError` for missing,
    truncated, or corrupt files, or files that are not training states.
    """
    flat, meta = _load_npz(Path(path))
    if meta.get("kind") != "train_state":
        raise CheckpointError(
            f"{path} is not a training state (kind={meta.get('kind')!r})"
        )
    arrays: dict[str, dict[str, np.ndarray]] = {"model": {}, "optim_m": {}, "optim_v": {}, "best": {}}
    for key, value in flat.items():
        if key.startswith("model/"):
            arrays["model"][key[len("model/"):]] = value
        elif key.startswith("optim/m/"):
            arrays["optim_m"][key[len("optim/m/"):]] = value
        elif key.startswith("optim/v/"):
            arrays["optim_v"][key[len("optim/v/"):]] = value
        elif key.startswith("best/"):
            arrays["best"][key[len("best/"):]] = value
    return arrays, meta


class Trainer:
    """Trains a :class:`GPT2Model` on encoded rule/password matrices."""

    def __init__(
        self,
        model: GPT2Model,
        pad_id: int,
        config: Optional[TrainConfig] = None,
        log_fn: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.model = model
        self.pad_id = pad_id
        self.config = config or TrainConfig()
        self.log_fn = log_fn

    def _log(self, message: str) -> None:
        if self.log_fn is not None:
            self.log_fn(message)

    def evaluate(self, ids: np.ndarray, batch_size: Optional[int] = None) -> float:
        """Mean validation loss over ``ids`` (no dropout, no gradients)."""
        if len(ids) == 0:
            raise ValueError("evaluate received an empty id matrix")
        self.model.eval()
        loader = BatchLoader(ids, batch_size or self.config.batch_size, shuffle=False)
        total, count = 0.0, 0
        with no_grad():
            for batch in loader:
                loss = self.model.loss(batch, pad_token_id=self.pad_id)
                total += loss.item() * len(batch)
                count += len(batch)
        self.model.train()
        return total / count

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _restore(
        self,
        path: Union[str, Path],
        optimizer: AdamW,
        schedule: WarmupLinear,
        loader: BatchLoader,
        dropout_rng: Optional[np.random.Generator],
    ) -> tuple[int, int, Optional[dict[str, np.ndarray]], TrainHistory]:
        """Load a training state into the live objects; returns loop state."""
        arrays, meta = load_training_state(path)
        if meta["total_steps"] != schedule.total_steps:
            raise CheckpointError(
                f"training state {path} was written for total_steps="
                f"{meta['total_steps']}, current run has {schedule.total_steps} "
                "(epochs/batch_size/corpus changed?)"
            )
        try:
            self.model.load_state_dict(arrays["model"])
        except (KeyError, ValueError) as exc:
            raise CheckpointError(f"training state {path} does not match the model: {exc}") from exc
        if len(arrays["optim_m"]) != len(optimizer._m):
            raise CheckpointError(
                f"training state {path} has {len(arrays['optim_m'])} optimizer "
                f"moments, model has {len(optimizer._m)} parameters"
            )
        for i, m in enumerate(optimizer._m):
            saved = arrays["optim_m"][str(i)]
            if saved.shape != m.shape:
                raise CheckpointError(
                    f"training state {path}: optimizer moment {i} shape "
                    f"{saved.shape} != parameter shape {m.shape}"
                )
            m[...] = saved
            optimizer._v[i][...] = arrays["optim_v"][str(i)]
        optimizer.t = meta["optimizer_t"]
        schedule.step_count = meta["schedule_step"]
        loader._rng.bit_generator.state = meta["loader_rng"]
        if dropout_rng is not None and meta.get("dropout_rng") is not None:
            dropout_rng.bit_generator.state = meta["dropout_rng"]
        history = TrainHistory(**meta["history"])
        best_state = arrays["best"] if meta.get("has_best") else None
        self._log(f"resumed training state from {path} at epoch {meta['epoch']}")
        return meta["epoch"], meta["bad_epochs"], best_state, history

    def fit(
        self,
        train_ids: np.ndarray,
        val_ids: Optional[np.ndarray] = None,
        *,
        checkpoint_path: Optional[Union[str, Path]] = None,
        resume_from: Optional[Union[str, Path]] = None,
        journal: Optional[RunJournal] = None,
        budget: Optional[Budget] = None,
    ) -> TrainHistory:
        """Run the full training loop; returns loss history.

        ``checkpoint_path`` writes a resumable training state atomically
        after each epoch; ``resume_from`` restores one and continues from
        the next epoch, bit-identically to the uninterrupted run.  When
        early stopping is enabled the best-validation weights are
        snapshotted and restored into the model if the run stops early
        (``history.restored_best``).  ``journal`` (an open
        :class:`~repro.runtime.journal.RunJournal`) records one entry per
        completed epoch with the checkpoint's content digest.

        ``budget`` (a :class:`~repro.runtime.Budget`) is polled at every
        epoch boundary, *after* the epoch's training state and journal
        record are durable: a tripped deadline or delivered SIGTERM
        raises :class:`~repro.runtime.CampaignInterrupted`, and a rerun
        with ``resume_from`` continues from the next epoch
        bit-identically.
        """
        cfg = self.config
        params = self.model.parameters()
        no_decay = [
            p
            for name, p in self.model.named_parameters()
            if name.endswith(".bias") or ".ln" in name or name.endswith("pos_emb.weight")
        ]
        optimizer = AdamW(params, lr=cfg.lr, weight_decay=cfg.weight_decay, no_decay=no_decay)
        loader = BatchLoader(train_ids, cfg.batch_size, seed=cfg.seed, shuffle=True)
        total_steps = max(1, len(loader) * cfg.epochs)
        schedule = WarmupLinear(
            optimizer, cfg.lr, warmup_steps=int(total_steps * cfg.warmup_fraction),
            total_steps=total_steps,
        )
        dropout_rng = getattr(getattr(self.model, "drop", None), "_rng", None)

        history = TrainHistory()
        bad_epochs = 0
        start_epoch = 0
        best_state: Optional[dict[str, np.ndarray]] = None
        if resume_from is not None:
            start_epoch, bad_epochs, best_state, history = self._restore(
                resume_from, optimizer, schedule, loader, dropout_rng
            )
        track_best = bool(cfg.early_stop_patience)
        self.model.train()
        registry = telemetry.get_registry()
        with telemetry.trace(
            "train.fit", epochs=int(cfg.epochs), start_epoch=int(start_epoch)
        ) as fit_span:
            for epoch in range(start_epoch, cfg.epochs):
                with telemetry.trace("train.epoch", epoch=int(epoch)) as epoch_span:
                    epoch_loss, seen = 0.0, 0
                    for step, batch in enumerate(loader):
                        schedule.step()
                        optimizer.zero_grad()
                        loss = self.model.loss(batch, pad_token_id=self.pad_id)
                        loss.backward()
                        if cfg.grad_clip:
                            clip_grad_norm(params, cfg.grad_clip)
                        optimizer.step()
                        registry.counter("train.steps").inc()
                        epoch_loss += loss.item() * len(batch)
                        seen += len(batch)
                        if cfg.log_every and step % cfg.log_every == 0:
                            self._log(f"epoch {epoch} step {step}/{len(loader)} loss {loss.item():.4f}")
                    history.train_loss.append(epoch_loss / seen)
                    epoch_span.set(train_loss=round(history.train_loss[-1], 6))

                    stop = False
                    if val_ids is not None and len(val_ids):
                        val = self.evaluate(val_ids)
                        history.val_loss.append(val)
                        epoch_span.set(val_loss=round(val, 6))
                        if val < history.best_val_loss:
                            history.best_val_loss = val
                            history.best_epoch = epoch
                            bad_epochs = 0
                            if track_best:
                                best_state = {
                                    name: value.copy()
                                    for name, value in self.model.state_dict().items()
                                }
                        else:
                            bad_epochs += 1
                        self._log(
                            f"epoch {epoch}: train {history.train_loss[-1]:.4f} val {val:.4f}"
                        )
                        if cfg.early_stop_patience and bad_epochs >= cfg.early_stop_patience:
                            stop = True
                    else:
                        self._log(f"epoch {epoch}: train {history.train_loss[-1]:.4f}")

                    # Fault-injection point: a crash here loses only this epoch —
                    # the previous epoch's state file is untouched (atomic write).
                    maybe_fail("epoch")
                    if checkpoint_path is not None:
                        save_training_state(
                            checkpoint_path,
                            model=self.model,
                            optimizer=optimizer,
                            schedule=schedule,
                            loader=loader,
                            history=history,
                            epoch=epoch + 1,
                            bad_epochs=bad_epochs,
                            best_state=best_state,
                            dropout_rng=dropout_rng,
                        )
                    if journal is not None:
                        journal.record(
                            "epoch",
                            epoch,
                            {
                                "train_loss": history.train_loss[-1],
                                "val_loss": history.val_loss[-1] if history.val_loss else None,
                                "checkpoint_digest": (
                                    file_digest(checkpoint_path) if checkpoint_path is not None else None
                                ),
                            },
                        )
                if budget is not None:
                    # The epoch just became durable (state + journal
                    # record written): a trip here loses nothing.
                    budget.poll(
                        epochs=epoch + 1,
                        steps=int(registry.counter("train.steps").value),
                    )
                if stop:
                    history.stopped_early = True
                    self._log(f"early stop at epoch {epoch}")
                    break
            fit_span.set(
                epochs_run=len(history.train_loss) - start_epoch,
                stopped_early=history.stopped_early,
            )

        if history.stopped_early and best_state is not None:
            self.model.load_state_dict(best_state)
            history.restored_best = True
            self._log(f"restored best epoch {history.best_epoch} weights")
        self.model.eval()
        return history
