"""Training infrastructure (dataloader + LM trainer)."""

from .dataloader import BatchLoader
from .trainer import TrainConfig, TrainHistory, Trainer

__all__ = ["BatchLoader", "TrainConfig", "TrainHistory", "Trainer"]
