"""Training infrastructure (dataloader + LM trainer)."""

from .dataloader import BatchLoader
from .trainer import (
    TrainConfig,
    TrainHistory,
    Trainer,
    load_training_state,
    save_training_state,
)

__all__ = [
    "BatchLoader",
    "TrainConfig",
    "TrainHistory",
    "Trainer",
    "load_training_state",
    "save_training_state",
]
